//! ARIMA(p,d,q) with optional seasonal differencing — the MADlib
//! `arima_train` / `arima_forecast` stand-in.
//!
//! Fitting uses the Hannan–Rissanen two-stage procedure: a long
//! autoregression estimates innovations, then the ARMA coefficients are
//! obtained by least squares on lagged values and lagged innovations.
//! This is closed-form (no iterative optimizer) and entirely adequate for
//! the occupancy-forecast experiment of §8.2.

use crate::linalg::least_squares;

/// Model orders: non-seasonal (p, d, q) plus optional seasonal
/// differencing `(1 − B^season)^seasonal_d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArimaSpec {
    /// Autoregressive order.
    pub p: usize,
    /// Regular differencing order.
    pub d: usize,
    /// Moving-average order.
    pub q: usize,
    /// Seasonal differencing order (0 or 1 supported).
    pub seasonal_d: usize,
    /// Season length in samples (e.g. 48 for daily seasonality at 30-min
    /// sampling).
    pub season: usize,
}

impl Default for ArimaSpec {
    /// MADlib's default non-seasonal orders (1, 1, 1).
    fn default() -> Self {
        ArimaSpec {
            p: 1,
            d: 1,
            q: 1,
            seasonal_d: 0,
            season: 0,
        }
    }
}

impl ArimaSpec {
    /// Parse `"p,d,q"` or `"p,d,q,D,season"`.
    pub fn parse(s: &str) -> Option<ArimaSpec> {
        let parts: Vec<usize> = s
            .split(',')
            .map(|p| p.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .ok()?;
        match parts.as_slice() {
            [p, d, q] => Some(ArimaSpec {
                p: *p,
                d: *d,
                q: *q,
                seasonal_d: 0,
                season: 0,
            }),
            [p, d, q, sd, season] => Some(ArimaSpec {
                p: *p,
                d: *d,
                q: *q,
                seasonal_d: *sd,
                season: *season,
            }),
            _ => None,
        }
    }
}

/// A fitted ARIMA model. Keeps the full training series so forecasts can
/// be integrated back through the differencing operators.
#[derive(Debug, Clone, PartialEq)]
pub struct Arima {
    /// Model orders.
    pub spec: ArimaSpec,
    /// AR coefficients (length `p`).
    pub phi: Vec<f64>,
    /// MA coefficients (length `q`).
    pub theta: Vec<f64>,
    /// Mean of the differenced series.
    pub mean: f64,
    /// Residual standard deviation on the training data.
    pub sigma: f64,
    /// Original training series.
    pub series: Vec<f64>,
    /// In-sample innovations of the differenced series.
    pub residuals: Vec<f64>,
}

fn difference(series: &[f64], lag: usize) -> Vec<f64> {
    series
        .iter()
        .skip(lag)
        .zip(series)
        .map(|(a, b)| a - b)
        .collect()
}

impl Arima {
    /// Fit the model; `None` when the series is too short or degenerate.
    pub fn fit(series: &[f64], spec: ArimaSpec) -> Option<Arima> {
        if spec.seasonal_d > 1 || (spec.seasonal_d == 1 && spec.season < 2) {
            return None;
        }
        // Regular differencing beyond first order is rarely useful for the
        // workloads here and complicates integration; reject it explicitly.
        if spec.d > 1 {
            return None;
        }
        // Differencing pipeline: seasonal first, then regular.
        let mut z = series.to_vec();
        if spec.seasonal_d == 1 {
            z = difference(&z, spec.season);
        }
        for _ in 0..spec.d {
            z = difference(&z, 1);
        }
        let min_len = 3 * (spec.p + spec.q + 1) + 5;
        if z.len() < min_len {
            return None;
        }
        let mean = z.iter().sum::<f64>() / z.len() as f64;
        let zc: Vec<f64> = z.iter().map(|v| v - mean).collect();

        // Stage 1: long AR for innovation estimates.
        let long_order = (spec.p + spec.q + 5).min(zc.len() / 3);
        let innovations = if spec.q > 0 {
            let mut rows = Vec::new();
            let mut ys = Vec::new();
            for t in long_order..zc.len() {
                rows.push((1..=long_order).map(|k| zc[t - k]).collect::<Vec<f64>>());
                ys.push(zc[t]);
            }
            let coefs = least_squares(&rows, &ys)?;
            let mut e = vec![0.0; zc.len()];
            for t in long_order..zc.len() {
                let pred: f64 = (1..=long_order).map(|k| coefs[k - 1] * zc[t - k]).sum();
                e[t] = zc[t] - pred;
            }
            e
        } else {
            vec![0.0; zc.len()]
        };

        // Stage 2: regress z_t on p lags of z and q lagged innovations.
        let start = long_order.max(spec.p).max(spec.q);
        let dim = spec.p + spec.q;
        let (phi, theta) = if dim == 0 {
            (Vec::new(), Vec::new())
        } else {
            let mut rows = Vec::new();
            let mut ys = Vec::new();
            for t in start..zc.len() {
                let mut row = Vec::with_capacity(dim);
                for k in 1..=spec.p {
                    row.push(zc[t - k]);
                }
                for k in 1..=spec.q {
                    row.push(innovations[t - k]);
                }
                rows.push(row);
                ys.push(zc[t]);
            }
            let w = least_squares(&rows, &ys)?;
            (w[..spec.p].to_vec(), w[spec.p..].to_vec())
        };

        // Final in-sample innovations under the fitted model.
        let mut residuals = vec![0.0; zc.len()];
        for t in 0..zc.len() {
            let mut pred = 0.0;
            for (k, ph) in phi.iter().enumerate() {
                if t > k {
                    pred += ph * zc[t - k - 1];
                }
            }
            for (k, th) in theta.iter().enumerate() {
                if t > k {
                    pred += th * residuals[t - k - 1];
                }
            }
            residuals[t] = zc[t] - pred;
        }
        let n_eff = (zc.len() - start).max(1);
        let sigma = (residuals[start..].iter().map(|e| e * e).sum::<f64>() / n_eff as f64).sqrt();

        Some(Arima {
            spec,
            phi,
            theta,
            mean,
            sigma,
            series: series.to_vec(),
            residuals,
        })
    }

    /// Forecast `h` steps beyond the end of the training series.
    pub fn forecast(&self, h: usize) -> Vec<f64> {
        let spec = self.spec;
        // Reconstruct the differenced (centred) series.
        let mut z = self.series.clone();
        if spec.seasonal_d == 1 {
            z = difference(&z, spec.season);
        }
        for _ in 0..spec.d {
            z = difference(&z, 1);
        }
        let mut zc: Vec<f64> = z.iter().map(|v| v - self.mean).collect();
        let mut e = self.residuals.clone();

        // Iterate the ARMA recursion with future innovations at zero.
        for _ in 0..h {
            let t = zc.len();
            let mut pred = 0.0;
            for (k, ph) in self.phi.iter().enumerate() {
                if t > k {
                    pred += ph * zc[t - k - 1];
                }
            }
            for (k, th) in self.theta.iter().enumerate() {
                if t > k {
                    pred += th * e[t - k - 1];
                }
            }
            zc.push(pred);
            e.push(0.0);
        }

        // Undo centring and differencing.
        let mut w: Vec<f64> = zc.iter().map(|v| v + self.mean).collect();
        for _ in 0..spec.d {
            // w currently holds Δ-series; integrate using the pre-diff tail.
            let mut base = self.series.to_vec();
            if spec.seasonal_d == 1 {
                base = difference(&base, spec.season);
            }
            // base after (d-1) diffs is what we integrate onto; handle the
            // common d=1 case directly.
            let mut integrated = Vec::with_capacity(w.len() + 1);
            integrated.push(base[0]);
            for (i, dv) in w.iter().enumerate() {
                let prev = integrated[i];
                integrated.push(prev + dv);
            }
            w = integrated;
        }
        if spec.seasonal_d == 1 {
            let s = spec.season;
            let mut full = self.series[..s].to_vec();
            for (i, dv) in w.iter().enumerate() {
                let prev = full[i];
                full.push(prev + dv);
            }
            w = full;
        }
        // The reconstructed series now extends the original by h samples.
        w[w.len() - h..].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing() {
        assert_eq!(
            ArimaSpec::parse("1,1,1"),
            Some(ArimaSpec {
                p: 1,
                d: 1,
                q: 1,
                seasonal_d: 0,
                season: 0
            })
        );
        assert_eq!(
            ArimaSpec::parse("2, 0, 1, 1, 48"),
            Some(ArimaSpec {
                p: 2,
                d: 0,
                q: 1,
                seasonal_d: 1,
                season: 48
            })
        );
        assert_eq!(ArimaSpec::parse("1,2"), None);
        assert_eq!(ArimaSpec::parse("x,y,z"), None);
    }

    #[test]
    fn ar1_recovers_coefficient() {
        // z_t = 0.7 z_{t-1} + deterministic pseudo-noise
        let mut z = vec![0.0f64];
        let mut noise_state = 0.123f64;
        for _ in 0..800 {
            noise_state = (noise_state * 997.0 + 0.1).fract();
            let eps = noise_state - 0.5;
            let prev = *z.last().unwrap();
            z.push(0.7 * prev + eps);
        }
        let m = Arima::fit(
            &z,
            ArimaSpec {
                p: 1,
                d: 0,
                q: 0,
                seasonal_d: 0,
                season: 0,
            },
        )
        .unwrap();
        assert!((m.phi[0] - 0.7).abs() < 0.08, "phi {:?}", m.phi);
    }

    #[test]
    fn random_walk_forecast_is_flat_at_last_value() {
        // ARIMA(0,1,0): forecast = last observation.
        let series: Vec<f64> = (0..120)
            .map(|i| (i as f64 * 0.7).sin() * 3.0 + 10.0)
            .collect();
        let m = Arima::fit(
            &series,
            ArimaSpec {
                p: 0,
                d: 1,
                q: 0,
                seasonal_d: 0,
                season: 0,
            },
        )
        .unwrap();
        let f = m.forecast(5);
        let last = *series.last().unwrap();
        // Drift equals the mean first difference; near zero for a sinusoid.
        for v in f {
            assert!((v - last).abs() < 0.6, "{v} vs {last}");
        }
    }

    #[test]
    fn seasonal_differencing_learns_daily_schedule() {
        // A strict daily (period 8) schedule repeated for 30 days.
        let day = [0.0, 0.0, 20.0, 25.0, 25.0, 18.0, 5.0, 0.0];
        let series: Vec<f64> = (0..240).map(|i| day[i % 8]).collect();
        let m = Arima::fit(
            &series,
            ArimaSpec {
                p: 1,
                d: 0,
                q: 0,
                seasonal_d: 1,
                season: 8,
            },
        )
        .unwrap();
        let f = m.forecast(16);
        for (i, v) in f.iter().enumerate() {
            assert!(
                (v - day[(240 + i) % 8]).abs() < 1.0,
                "step {i}: {v} vs {}",
                day[(240 + i) % 8]
            );
        }
    }

    #[test]
    fn too_short_series_fails_gracefully() {
        assert!(Arima::fit(&[1.0, 2.0, 3.0], ArimaSpec::default()).is_none());
    }

    #[test]
    fn arma11_fits_and_forecasts_finite() {
        let mut z = vec![0.0f64];
        let mut prev_eps = 0.0;
        let mut state = 0.7f64;
        for _ in 0..500 {
            state = (state * 887.0 + 0.31).fract();
            let eps = state - 0.5;
            let prev = *z.last().unwrap();
            z.push(0.5 * prev + eps + 0.3 * prev_eps);
            prev_eps = eps;
        }
        let m = Arima::fit(&z, ArimaSpec::default()).unwrap();
        assert!(m.sigma.is_finite() && m.sigma > 0.0);
        let f = m.forecast(10);
        assert_eq!(f.len(), 10);
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
