//! # pgfmu-analytics — MADlib-like in-DBMS analytics
//!
//! The paper's §8.2 combines pgFMU with MADlib: an ARIMA model forecasts
//! classroom occupancy that then feeds `fmu_simulate`, and a logistic
//! regression classifies the ventilation damper position with and without
//! pgFMU-simulated temperatures in the feature vector. This crate is the
//! MADlib stand-in: linear regression, ARIMA(p,d,q) with optional seasonal
//! differencing, and logistic regression (IRLS), each exposed both as a
//! typed Rust API and as SQL UDFs:
//!
//! * `arima_train(source_table, output_table, time_col, value_col
//!   [, orders])` — orders like `'1,1,1'` or `'1,0,0,1,48'`, i.e.
//!   `p,d,q[,D,season]`;
//! * `arima_forecast(output_table, steps)` — set-returning
//!   `(time, value)`;
//! * `logregr_train(source_table, output_table, dep_col, indep_cols)`;
//! * `logregr_prob(output_table, feature...)` — scalar probability.

// Indexed loops in the linear-algebra kernels mirror the textbook formulas.
#![allow(clippy::needless_range_loop)]

pub mod arima;
pub mod linalg;
pub mod linreg;
pub mod logistic;
pub mod udfs;

pub use arima::{Arima, ArimaSpec};
pub use linreg::LinearRegression;
pub use logistic::LogisticRegression;
pub use udfs::register_udfs;
