//! Small dense linear algebra: Gaussian elimination with partial pivoting
//! and a ridge-stabilized normal-equations solver.

/// Solve `A x = b` in place for a square system; returns `None` when the
/// matrix is (numerically) singular.
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    assert!(a.len() == n && a.iter().all(|r| r.len() == n));
    for col in 0..n {
        // Partial pivoting.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Least squares `min ‖X w − y‖²` via ridge-stabilized normal equations
/// (`λ = 1e-9` on the diagonal). `X` rows are observations.
pub fn least_squares(x: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
    let n = x.len();
    if n == 0 || n != y.len() {
        return None;
    }
    let dim = x[0].len();
    if dim == 0 || x.iter().any(|r| r.len() != dim) {
        return None;
    }
    let mut xtx = vec![vec![0.0; dim]; dim];
    let mut xty = vec![0.0; dim];
    for (row, &yi) in x.iter().zip(y) {
        for i in 0..dim {
            xty[i] += row[i] * yi;
            for j in i..dim {
                xtx[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..dim {
        for j in 0..i {
            xtx[i][j] = xtx[j][i];
        }
        xtx[i][i] += 1e-9;
    }
    solve(xtx, xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // x + 2y = 5 ; 3x - y = 1  ->  x = 1, y = 2
        let x = solve(vec![vec![1.0, 2.0], vec![3.0, -1.0]], vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_system_returns_none() {
        let res = solve(vec![vec![1.0, 2.0], vec![2.0, 4.0]], vec![1.0, 2.0]);
        assert!(res.is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let x = solve(vec![vec![0.0, 1.0], vec![1.0, 0.0]], vec![3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn least_squares_recovers_line() {
        // y = 2 + 3t with exact data.
        let xs: Vec<Vec<f64>> = (0..10).map(|t| vec![1.0, t as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|t| 2.0 + 3.0 * t as f64).collect();
        let w = least_squares(&xs, &ys).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-6);
        assert!((w[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn least_squares_rejects_bad_shapes() {
        assert!(least_squares(&[], &[]).is_none());
        assert!(least_squares(&[vec![1.0]], &[1.0, 2.0]).is_none());
        assert!(least_squares(&[vec![1.0], vec![]], &[1.0, 2.0]).is_none());
    }
}
