//! Ordinary least squares linear regression (with intercept).

use crate::linalg::least_squares;

/// A fitted linear model `y ≈ b0 + Σ bi·xi`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    /// Coefficients: intercept first, then one per feature.
    pub coefficients: Vec<f64>,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
}

impl LinearRegression {
    /// Fit on feature rows `x` (without intercept column) and targets `y`.
    pub fn fit(x: &[Vec<f64>], y: &[f64]) -> Option<Self> {
        let design: Vec<Vec<f64>> = x
            .iter()
            .map(|row| {
                let mut r = Vec::with_capacity(row.len() + 1);
                r.push(1.0);
                r.extend_from_slice(row);
                r
            })
            .collect();
        let coefficients = least_squares(&design, y)?;
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let ss_tot: f64 = y.iter().map(|v| (v - mean) * (v - mean)).sum();
        let ss_res: f64 = design
            .iter()
            .zip(y)
            .map(|(row, &yi)| {
                let pred: f64 = row.iter().zip(&coefficients).map(|(a, b)| a * b).sum();
                (yi - pred) * (yi - pred)
            })
            .sum();
        let r_squared = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };
        Some(LinearRegression {
            coefficients,
            r_squared,
        })
    }

    /// Predict for one feature row.
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.coefficients[0]
            + features
                .iter()
                .zip(&self.coefficients[1..])
                .map(|(a, b)| a * b)
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_plane_exactly() {
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i) as f64 % 7.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 1.5 - 2.0 * r[0] + 0.5 * r[1]).collect();
        let m = LinearRegression::fit(&x, &y).unwrap();
        assert!((m.coefficients[0] - 1.5).abs() < 1e-6);
        assert!((m.coefficients[1] + 2.0).abs() < 1e-6);
        assert!((m.coefficients[2] - 0.5).abs() < 1e-6);
        assert!(m.r_squared > 0.999999);
        assert!((m.predict(&[3.0, 2.0]) - (1.5 - 6.0 + 1.0)).abs() < 1e-6);
    }

    #[test]
    fn r_squared_reflects_noise() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        // Alternating residual of +-10 around the line.
        let y: Vec<f64> = (0..100)
            .map(|i| i as f64 + if i % 2 == 0 { 10.0 } else { -10.0 })
            .collect();
        let m = LinearRegression::fit(&x, &y).unwrap();
        assert!(m.r_squared < 0.95);
        assert!(m.r_squared > 0.5);
    }
}
