//! Logistic regression fitted by iteratively reweighted least squares
//! (Newton–Raphson) — the MADlib `logregr_train` stand-in.

use crate::linalg::solve;

/// A fitted binary logistic model `P(y=1) = σ(b0 + Σ bi·xi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    /// Coefficients: intercept first, then one per feature.
    pub coefficients: Vec<f64>,
    /// Newton iterations used.
    pub iterations: usize,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Fit on feature rows `x` and 0/1 labels `y`.
    pub fn fit(x: &[Vec<f64>], y: &[f64]) -> Option<Self> {
        let n = x.len();
        if n == 0 || n != y.len() {
            return None;
        }
        if y.iter().any(|v| *v != 0.0 && *v != 1.0) {
            return None;
        }
        let dim = x[0].len() + 1;
        let design: Vec<Vec<f64>> = x
            .iter()
            .map(|row| {
                let mut r = Vec::with_capacity(dim);
                r.push(1.0);
                r.extend_from_slice(row);
                r
            })
            .collect();
        if design.iter().any(|r| r.len() != dim) {
            return None;
        }

        let mut beta = vec![0.0; dim];
        let mut iterations = 0;
        for _ in 0..50 {
            iterations += 1;
            // Gradient and Hessian of the log-likelihood (with a small
            // ridge term for separable data).
            let mut grad = vec![0.0; dim];
            let mut hess = vec![vec![0.0; dim]; dim];
            for (row, &yi) in design.iter().zip(y) {
                let eta: f64 = row.iter().zip(&beta).map(|(a, b)| a * b).sum();
                let p = sigmoid(eta);
                let w = (p * (1.0 - p)).max(1e-9);
                for i in 0..dim {
                    grad[i] += (yi - p) * row[i];
                    for j in i..dim {
                        hess[i][j] += w * row[i] * row[j];
                    }
                }
            }
            for i in 0..dim {
                grad[i] -= 1e-6 * beta[i];
                for j in 0..i {
                    hess[i][j] = hess[j][i];
                }
                hess[i][i] += 1e-6;
            }
            let step = solve(hess, grad)?;
            let mut max_step = 0.0f64;
            for i in 0..dim {
                beta[i] += step[i];
                max_step = max_step.max(step[i].abs());
            }
            if max_step < 1e-8 {
                break;
            }
        }
        Some(LogisticRegression {
            coefficients: beta,
            iterations,
        })
    }

    /// Probability of the positive class for one feature row.
    pub fn predict_prob(&self, features: &[f64]) -> f64 {
        let eta = self.coefficients[0]
            + features
                .iter()
                .zip(&self.coefficients[1..])
                .map(|(a, b)| a * b)
                .sum::<f64>();
        sigmoid(eta)
    }

    /// Hard 0/1 classification at the 0.5 threshold.
    pub fn predict(&self, features: &[f64]) -> f64 {
        if self.predict_prob(features) >= 0.5 {
            1.0
        } else {
            0.0
        }
    }

    /// Classification accuracy over a labelled set.
    pub fn accuracy(&self, x: &[Vec<f64>], y: &[f64]) -> f64 {
        if x.is_empty() {
            return 0.0;
        }
        let correct = x
            .iter()
            .zip(y)
            .filter(|(row, &yi)| self.predict(row) == yi)
            .count();
        correct as f64 / x.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream in [0,1).
    fn stream(seed: f64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = (state * 997.0 + 0.123).fract();
            state
        }
    }

    #[test]
    fn separates_a_threshold_rule() {
        // y = 1 iff x > 2.
        let mut rnd = stream(0.4);
        let x: Vec<Vec<f64>> = (0..400).map(|_| vec![rnd() * 4.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| f64::from(r[0] > 2.0)).collect();
        let m = LogisticRegression::fit(&x, &y).unwrap();
        assert!(m.accuracy(&x, &y) > 0.97);
        assert!(m.predict_prob(&[3.5]) > 0.9);
        assert!(m.predict_prob(&[0.5]) < 0.1);
    }

    #[test]
    fn extra_informative_feature_improves_accuracy() {
        // Label depends on x1 + x2; a model seeing only x1 does worse.
        let mut rnd = stream(0.7);
        let features: Vec<(f64, f64)> = (0..600).map(|_| (rnd() * 2.0, rnd() * 2.0)).collect();
        let y: Vec<f64> = features
            .iter()
            .map(|(a, b)| f64::from(a + b > 2.0))
            .collect();
        let x_full: Vec<Vec<f64>> = features.iter().map(|(a, b)| vec![*a, *b]).collect();
        let x_partial: Vec<Vec<f64>> = features.iter().map(|(a, _)| vec![*a]).collect();
        let m_full = LogisticRegression::fit(&x_full, &y).unwrap();
        let m_partial = LogisticRegression::fit(&x_partial, &y).unwrap();
        assert!(
            m_full.accuracy(&x_full, &y) > m_partial.accuracy(&x_partial, &y) + 0.1,
            "full {} vs partial {}",
            m_full.accuracy(&x_full, &y),
            m_partial.accuracy(&x_partial, &y)
        );
    }

    #[test]
    fn rejects_non_binary_labels() {
        assert!(LogisticRegression::fit(&[vec![1.0]], &[0.5]).is_none());
        assert!(LogisticRegression::fit(&[], &[]).is_none());
    }

    #[test]
    fn balanced_coin_has_half_probability() {
        let x: Vec<Vec<f64>> = (0..100).map(|_| vec![1.0]).collect();
        let y: Vec<f64> = (0..100).map(|i| f64::from(i % 2 == 0)).collect();
        let m = LogisticRegression::fit(&x, &y).unwrap();
        assert!((m.predict_prob(&[1.0]) - 0.5).abs() < 0.05);
    }
}
