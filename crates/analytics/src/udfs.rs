//! SQL UDF surface of the analytics crate (MADlib-style calls).
//!
//! Models are persisted *in the database*: `arima_train` and
//! `logregr_train` write their fitted state into an output table, and the
//! prediction functions reconstruct the model from that table — keeping
//! the whole workflow inside the DBMS, as the paper's combined experiment
//! requires.

use pgfmu_sqlmini::{ArgKind, Database, QueryResult, SqlError, Value};

use crate::arima::{Arima, ArimaSpec};
use crate::logistic::LogisticRegression;

type SqlResult<T> = std::result::Result<T, SqlError>;

fn ident_ok(s: &str) -> SqlResult<()> {
    if s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !s.is_empty() {
        Ok(())
    } else {
        Err(SqlError::Type(format!("invalid identifier '{s}'")))
    }
}

/// Register `arima_train`, `arima_forecast`, `logregr_train` and
/// `logregr_prob` on a database. All four are declared through the typed
/// UDF builder, so argument coercion and arity errors are centralized.
pub fn register_udfs(db: &Database) {
    db.udf("arima_train")
        .arg("source_table", ArgKind::Text)
        .arg("output_table", ArgKind::Text)
        .arg("time_col", ArgKind::Text)
        .arg("value_col", ArgKind::Text)
        .opt_arg("orders", ArgKind::Text)
        .scalar(|db, args| {
            let source = args.text(0).to_string();
            let output = args.text(1).to_string();
            let time_col = args.text(2).to_string();
            let value_col = args.text(3).to_string();
            for ident in [&source, &output, &time_col, &value_col] {
                ident_ok(ident)?;
            }
            let spec = if let Some(raw) = args.opt_text(4) {
                ArimaSpec::parse(raw).ok_or_else(|| {
                    SqlError::Type(format!(
                        "arima_train: bad orders '{raw}' (expected 'p,d,q' or 'p,d,q,D,season')"
                    ))
                })?
            } else {
                ArimaSpec::default()
            };

            // Stream the training series row by row, decoding columns by
            // name — the intermediate result set is never materialized.
            let data = db
                .query_rows(
                    &format!("SELECT {time_col}, {value_col} FROM {source} ORDER BY {time_col}"),
                    &[],
                )?
                .into_named();
            let mut epochs: Vec<i64> = Vec::new();
            let mut values: Vec<f64> = Vec::new();
            for row in data {
                let row = row?;
                epochs.push(match row.raw(&time_col)? {
                    Value::Timestamp(t) => *t,
                    Value::Text(s) => pgfmu_sqlmini::parse_timestamp(s)?,
                    other => {
                        return Err(SqlError::Type(format!(
                            "column \"{time_col}\": {other} is not a timestamp"
                        )))
                    }
                });
                values.push(row.get::<f64>(&value_col)?);
            }
            if epochs.len() < 2 {
                return Err(SqlError::Execution(
                    "arima_train: need at least two samples".into(),
                ));
            }
            let step = epochs[1] - epochs[0];
            let model = Arima::fit(&values, spec).ok_or_else(|| {
                SqlError::Execution(
                    "arima_train: series too short or degenerate for the requested orders".into(),
                )
            })?;

            db.execute(&format!("DROP TABLE IF EXISTS {output}"))?;
            db.execute(&format!(
                "CREATE TABLE {output} (kind text, idx int, value float)"
            ))?;
            let mut rows: Vec<Vec<Value>> = Vec::new();
            let mut push = |kind: &str, idx: i64, value: f64| {
                rows.push(vec![
                    Value::Text(kind.into()),
                    Value::Int(idx),
                    Value::Float(value),
                ]);
            };
            for (k, v) in model.phi.iter().enumerate() {
                push("phi", k as i64, *v);
            }
            for (k, v) in model.theta.iter().enumerate() {
                push("theta", k as i64, *v);
            }
            for (k, v) in [
                spec.p as f64,
                spec.d as f64,
                spec.q as f64,
                spec.seasonal_d as f64,
                spec.season as f64,
                model.mean,
                model.sigma,
                *epochs.last().unwrap() as f64,
                step as f64,
            ]
            .iter()
            .enumerate()
            {
                push("meta", k as i64, *v);
            }
            for (k, v) in model.series.iter().enumerate() {
                push("series", k as i64, *v);
            }
            for (k, v) in model.residuals.iter().enumerate() {
                push("residual", k as i64, *v);
            }
            db.insert_rows(&output, rows)?;
            Ok(Value::Text(output))
        });

    db.udf("arima_forecast")
        .arg("output_table", ArgKind::Text)
        .arg("steps", ArgKind::Int)
        .table(|db, args| {
            let table = args.text(0).to_string();
            ident_ok(&table)?;
            let steps = args.i64(1);
            if steps <= 0 || steps > 1_000_000 {
                return Err(SqlError::Type("arima_forecast: steps out of range".into()));
            }
            let model_rows = db.execute(&format!(
                "SELECT kind, idx, value FROM {table} ORDER BY kind, idx"
            ))?;
            let mut phi = Vec::new();
            let mut theta = Vec::new();
            let mut meta = Vec::new();
            let mut series = Vec::new();
            let mut residuals = Vec::new();
            for row in &model_rows.rows {
                let kind = row[0].as_str()?;
                let value = row[2].as_f64()?;
                match kind {
                    "phi" => phi.push(value),
                    "theta" => theta.push(value),
                    "meta" => meta.push(value),
                    "series" => series.push(value),
                    "residual" => residuals.push(value),
                    other => {
                        return Err(SqlError::Execution(format!(
                            "arima_forecast: unknown model row kind '{other}'"
                        )))
                    }
                }
            }
            if meta.len() < 9 {
                return Err(SqlError::Execution(format!(
                    "arima_forecast: '{table}' is not an arima_train output table"
                )));
            }
            let spec = ArimaSpec {
                p: meta[0] as usize,
                d: meta[1] as usize,
                q: meta[2] as usize,
                seasonal_d: meta[3] as usize,
                season: meta[4] as usize,
            };
            let model = Arima {
                spec,
                phi,
                theta,
                mean: meta[5],
                sigma: meta[6],
                series,
                residuals,
            };
            let last_epoch = meta[7] as i64;
            let step = meta[8] as i64;
            let forecast = model.forecast(steps as usize);
            let mut q = QueryResult::new(vec!["time".into(), "value".into()]);
            for (i, v) in forecast.into_iter().enumerate() {
                q.rows.push(vec![
                    Value::Timestamp(last_epoch + (i as i64 + 1) * step),
                    Value::Float(v),
                ]);
            }
            Ok(q)
        });

    db.udf("logregr_train")
        .arg("source_table", ArgKind::Text)
        .arg("output_table", ArgKind::Text)
        .arg("dep_col", ArgKind::Text)
        .arg("indep_cols", ArgKind::Text)
        .scalar(|db, args| {
            let source = args.text(0).to_string();
            let output = args.text(1).to_string();
            let dep = args.text(2).to_string();
            let indep_raw = args.text(3).to_string();
            ident_ok(&source)?;
            ident_ok(&output)?;
            ident_ok(&dep)?;
            let indep: Vec<String> = indep_raw
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if indep.is_empty() {
                return Err(SqlError::Type(
                    "logregr_train: no independent columns given".into(),
                ));
            }
            for c in &indep {
                ident_ok(c)?;
            }
            // Stream the design matrix row by row, reading the dependent
            // and independent columns by name.
            let data = db
                .query_rows(
                    &format!("SELECT {dep}, {} FROM {source}", indep.join(", ")),
                    &[],
                )?
                .into_named();
            let mut labels: Vec<f64> = Vec::new();
            let mut x: Vec<Vec<f64>> = Vec::new();
            for row in data {
                let row = row?;
                labels.push(f64::from(row.get::<f64>(&dep)? > 0.5));
                let features: Vec<f64> = indep
                    .iter()
                    .map(|c| row.get::<f64>(c))
                    .collect::<SqlResult<_>>()?;
                x.push(features);
            }
            let model = LogisticRegression::fit(&x, &labels).ok_or_else(|| {
                SqlError::Execution("logregr_train: fitting failed (degenerate data)".into())
            })?;
            db.execute(&format!("DROP TABLE IF EXISTS {output}"))?;
            db.execute(&format!("CREATE TABLE {output} (idx int, coef float)"))?;
            let rows: Vec<Vec<Value>> = model
                .coefficients
                .iter()
                .enumerate()
                .map(|(i, c)| vec![Value::Int(i as i64), Value::Float(*c)])
                .collect();
            db.insert_rows(&output, rows)?;
            Ok(Value::Text(output))
        });

    db.udf("logregr_prob")
        .arg("output_table", ArgKind::Text)
        .variadic(ArgKind::Float)
        .scalar(|db, args| {
            let table = args.text(0).to_string();
            ident_ok(&table)?;
            let coefficients: Vec<f64> =
                db.query_as(&format!("SELECT coef FROM {table} ORDER BY idx"), &[])?;
            let features: Vec<f64> = args
                .rest(1)
                .iter()
                .map(|v| v.as_f64())
                .collect::<SqlResult<_>>()?;
            if coefficients.is_empty() {
                return Err(SqlError::Type(format!(
                    "logregr_prob: model '{table}' has no coefficients"
                )));
            }
            if coefficients.len() != features.len() + 1 {
                return Err(SqlError::Type(format!(
                    "logregr_prob: model '{table}' expects {} features, got {}",
                    coefficients.len() - 1,
                    features.len()
                )));
            }
            let model = LogisticRegression {
                coefficients,
                iterations: 0,
            };
            Ok(Value::Float(model.predict_prob(&features)))
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_series() -> Database {
        let db = Database::new();
        register_udfs(&db);
        db.execute("CREATE TABLE occupants (time timestamp, value float)")
            .unwrap();
        // Period-4 "daily" schedule over 40 days, 1 hour sampling.
        let day = [0.0, 22.0, 25.0, 3.0];
        let mut rows = String::new();
        for i in 0..160 {
            if i > 0 {
                rows.push_str(", ");
            }
            let epoch_h = i;
            rows.push_str(&format!(
                "('2018-04-04 00:00'::timestamp + interval '{epoch_h} hours', {})",
                day[i % 4]
            ));
        }
        db.execute(&format!("INSERT INTO occupants VALUES {rows}"))
            .unwrap();
        db
    }

    #[test]
    fn arima_train_and_forecast_via_sql() {
        let db = db_with_series();
        let out = db
            .execute(
                "SELECT arima_train('occupants', 'occupants_output', 'time', 'value', \
                 '1,0,0,1,4')",
            )
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Text("occupants_output".into()));
        // The output table is inspectable SQL state.
        let n = db.execute("SELECT count(*) FROM occupants_output").unwrap();
        assert!(n.rows[0][0].as_i64().unwrap() > 100);
        let f = db
            .execute("SELECT * FROM arima_forecast('occupants_output', 8)")
            .unwrap();
        assert_eq!(f.len(), 8);
        let day = [0.0, 22.0, 25.0, 3.0];
        for (i, row) in f.rows.iter().enumerate() {
            let v = row[1].as_f64().unwrap();
            let want = day[(160 + i) % 4];
            assert!((v - want).abs() < 1.5, "step {i}: {v} vs {want}");
        }
        // Forecast timestamps continue the hourly grid.
        let t0 = &f.rows[0][0];
        assert_eq!(
            t0.to_string(),
            "2018-04-10 16:00:00",
            "forecast must start one step after the last training sample"
        );
    }

    #[test]
    fn arima_error_paths() {
        let db = db_with_series();
        assert!(db
            .execute("SELECT arima_train('occupants', 'o2', 'time', 'value', 'bad')")
            .is_err());
        assert!(db
            .execute("SELECT arima_train('missing', 'o2', 'time', 'value')")
            .is_err());
        assert!(db
            .execute("SELECT * FROM arima_forecast('occupants', 5)")
            .is_err());
        db.execute("SELECT arima_train('occupants', 'om', 'time', 'value', '1,0,0,1,4')")
            .unwrap();
        assert!(db.execute("SELECT * FROM arima_forecast('om', 0)").is_err());
    }

    #[test]
    fn logistic_train_and_prob_via_sql() {
        let db = Database::new();
        register_udfs(&db);
        db.execute("CREATE TABLE d (label float, a float, b float)")
            .unwrap();
        let mut rows = String::new();
        let mut state = 0.37f64;
        for i in 0..300 {
            state = (state * 997.0 + 0.123).fract();
            let a = state * 4.0;
            state = (state * 997.0 + 0.123).fract();
            let b = state * 4.0;
            let label = f64::from(a + b > 4.0);
            if i > 0 {
                rows.push_str(", ");
            }
            rows.push_str(&format!("({label}, {a}, {b})"));
        }
        db.execute(&format!("INSERT INTO d VALUES {rows}")).unwrap();
        db.execute("SELECT logregr_train('d', 'd_model', 'label', 'a,b')")
            .unwrap();
        let hi = db
            .execute("SELECT logregr_prob('d_model', 3.5, 3.5)")
            .unwrap();
        let lo = db
            .execute("SELECT logregr_prob('d_model', 0.2, 0.2)")
            .unwrap();
        assert!(hi.rows[0][0].as_f64().unwrap() > 0.9);
        assert!(lo.rows[0][0].as_f64().unwrap() < 0.1);
        // In-SQL scoring of a whole table.
        let scored = db
            .execute(
                "SELECT count(*) FROM d WHERE \
                 (logregr_prob('d_model', a, b) >= 0.5) = (label = 1.0)",
            )
            .unwrap();
        let correct = scored.rows[0][0].as_i64().unwrap();
        assert!(correct > 290, "accuracy too low: {correct}/300");
    }

    #[test]
    fn logregr_error_paths() {
        let db = Database::new();
        register_udfs(&db);
        db.execute("CREATE TABLE d (label float, a float)").unwrap();
        db.execute("INSERT INTO d VALUES (1.0, 2.0)").unwrap();
        assert!(db
            .execute("SELECT logregr_train('d', 'm', 'label', '')")
            .is_err());
        assert!(db
            .execute("SELECT logregr_train('d; DROP TABLE d', 'm', 'label', 'a')")
            .is_err());
    }
}
