//! # pgfmu-baseline — the traditional "Python-stack" FMU workflow
//!
//! The paper's baseline configuration ("Python", §8.1) performs the
//! Figure-1 workflow with a pile of loosely coupled tools: PyFMI loads the
//! FMU from disk, psycopg2+pandas shuttle measurements between the DBMS
//! and text files, ModestPy calibrates, user scripts validate, and
//! predictions are exported back through files. This crate reproduces that
//! *workflow structure* faithfully:
//!
//! * the FMU file is loaded **from disk for every instance** — there is no
//!   shared in-memory model (pgFMU's optimization, §5);
//! * measurements are **exported to a CSV file and re-imported** before
//!   calibration, and predictions travel back to the database through
//!   another CSV file (Figure 1 steps 2 and 6);
//! * calibration uses the *same* estimation engine and configuration as
//!   pgFMU, so model quality is identical (paper Table 7) and only the
//!   workflow overheads and the missing MI optimization differ;
//! * multi-instance runs are a plain loop of single-instance workflows —
//!   no warm-start reuse.
//!
//! Per-step wall-clock timings are recorded with labels matching paper
//! Table 8 so the benchmark harness can print the comparison directly.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pgfmu_datagen::csvio::{read_csv, write_csv};
use pgfmu_datagen::Dataset;
use pgfmu_estimation::{estimate_si, EstimationConfig, MeasurementData, SimulationObjective};
use pgfmu_fmi::{archive, InputSeries, InputSet, Interpolation, SimulationOptions, Variability};
use pgfmu_sqlmini::{Database, Value};

/// Errors from the baseline workflow.
#[derive(Debug)]
pub enum BaselineError {
    /// I/O failure in the file hand-offs.
    Io(std::io::Error),
    /// FMI substrate failure.
    Fmi(pgfmu_fmi::FmiError),
    /// SQL failure.
    Sql(pgfmu_sqlmini::SqlError),
    /// Invalid workflow arguments.
    Usage(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Io(e) => write!(f, "I/O error: {e}"),
            BaselineError::Fmi(e) => write!(f, "{e}"),
            BaselineError::Sql(e) => write!(f, "{e}"),
            BaselineError::Usage(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<std::io::Error> for BaselineError {
    fn from(e: std::io::Error) -> Self {
        BaselineError::Io(e)
    }
}
impl From<pgfmu_fmi::FmiError> for BaselineError {
    fn from(e: pgfmu_fmi::FmiError) -> Self {
        BaselineError::Fmi(e)
    }
}
impl From<pgfmu_sqlmini::SqlError> for BaselineError {
    fn from(e: pgfmu_sqlmini::SqlError) -> Self {
        BaselineError::Sql(e)
    }
}

/// Convenient alias.
pub type Result<T> = std::result::Result<T, BaselineError>;

/// Wall-clock timings per Figure-1 step (paper Table 8 rows).
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTimings {
    /// 1 — Load/build the FMU model.
    pub load_fmu: Duration,
    /// 2 — Read historical measurements & control inputs.
    pub read_measurements: Duration,
    /// 3 — (Re)calibrate the model.
    pub calibrate: Duration,
    /// 4 — Validate and update the FMU model.
    pub validate: Duration,
    /// 5 — Simulate the FMU model.
    pub simulate: Duration,
    /// 6 — Export predicted values to a DBMS.
    pub export: Duration,
}

impl StepTimings {
    /// Total workflow time.
    pub fn total(&self) -> Duration {
        self.load_fmu
            + self.read_measurements
            + self.calibrate
            + self.validate
            + self.simulate
            + self.export
    }
}

/// Result of one single-instance workflow run.
#[derive(Debug, Clone)]
pub struct WorkflowOutcome {
    /// Estimated parameter names.
    pub pars: Vec<String>,
    /// Estimated parameter values.
    pub params: Vec<f64>,
    /// RMSE on the training window.
    pub estimation_rmse: f64,
    /// RMSE on the held-out validation window.
    pub validation_rmse: f64,
    /// Per-step timings.
    pub timings: StepTimings,
}

/// The traditional workflow driver.
pub struct TraditionalWorkflow {
    work_dir: PathBuf,
    config: EstimationConfig,
}

impl TraditionalWorkflow {
    /// Create a workflow rooted at a working directory (the ModestPy-style
    /// scratch space the user must manage by hand).
    pub fn new(work_dir: impl Into<PathBuf>, config: EstimationConfig) -> Result<Self> {
        let work_dir = work_dir.into();
        std::fs::create_dir_all(&work_dir)?;
        Ok(TraditionalWorkflow { work_dir, config })
    }

    /// Create a workflow in a unique temporary directory.
    pub fn in_temp_dir(config: EstimationConfig) -> Result<Self> {
        let dir = std::env::temp_dir().join(format!(
            "pgfmu-baseline-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos())
                .unwrap_or(0)
        ));
        Self::new(dir, config)
    }

    /// The scratch directory.
    pub fn work_dir(&self) -> &Path {
        &self.work_dir
    }

    /// Run the full Figure-1 workflow for one instance.
    ///
    /// * `db` — the DBMS holding `measurements_table` (timestamps +
    ///   measured/input columns);
    /// * `fmu_path` — path to the `.fmu` file (loaded from disk *here*,
    ///   every call);
    /// * `pars` — parameters to estimate;
    /// * `train_fraction` — leading fraction of the data used for
    ///   calibration; the rest validates (paper: Feb 1–21 vs Feb 22–28).
    pub fn run_si(
        &self,
        db: &Database,
        measurements_table: &str,
        fmu_path: &Path,
        pars: &[String],
        train_fraction: f64,
        instance_tag: &str,
    ) -> Result<WorkflowOutcome> {
        if !(0.0..=1.0).contains(&train_fraction) {
            return Err(BaselineError::Usage(format!(
                "train fraction {train_fraction} out of range"
            )));
        }
        let mut timings = StepTimings::default();

        // -- Step 1: load the FMU from disk (no cache). ---------------------
        let t = Instant::now();
        let fmu = Arc::new(archive::read_from_path(fmu_path)?);
        timings.load_fmu = t.elapsed();

        // -- Step 2: export measurements from the DB to a text file and
        //    read them back (the psycopg2 → pandas → ModestPy hand-off). ---
        let t = Instant::now();
        let q = db.execute(&format!("SELECT * FROM {measurements_table}"))?;
        let dataset = query_to_dataset(&q)?;
        let csv_path = self.work_dir.join(format!("{instance_tag}-meas.csv"));
        write_csv(&dataset, &csv_path)?;
        let dataset = read_csv(&csv_path)?;
        timings.read_measurements = t.elapsed();

        let n = dataset.len();
        let n_train = ((n as f64) * train_fraction).round() as usize;
        let n_train = n_train.clamp(2, n);
        let train = dataset.slice(0, n_train);
        let train_data = dataset_to_measurement(&train)?;

        // -- Step 3: recalibrate (same engine/config as pgFMU). -------------
        let t = Instant::now();
        let inst = fmu.instantiate();
        let objective = SimulationObjective::new(
            Arc::clone(&fmu),
            inst.param_values(),
            inst.start_state(),
            pars,
            &train_data,
        )?;
        let outcome = estimate_si(&objective, &self.config);
        timings.calibrate = t.elapsed();

        // -- Step 4: validate on the held-out window & update the model. ----
        let t = Instant::now();
        let validation_rmse = if n_train < n {
            let validation = dataset.slice(n_train.saturating_sub(1), n);
            let vdata = dataset_to_measurement(&validation)?;
            let vobjective = SimulationObjective::new(
                Arc::clone(&fmu),
                inst.param_values(),
                inst.start_state(),
                pars,
                &vdata,
            )?;
            vobjective.rmse_at(&outcome.params)
        } else {
            outcome.rmse
        };
        let mut calibrated = fmu.instantiate();
        for (name, value) in pars.iter().zip(&outcome.params) {
            calibrated.set(name, *value)?;
        }
        timings.validate = t.elapsed();

        // -- Step 5: simulate the calibrated model over the full window. ----
        let t = Instant::now();
        let times_hours = dataset.times_hours();
        let mut series = Vec::new();
        for input in fmu.input_names() {
            let col = dataset.column(input).ok_or_else(|| {
                BaselineError::Usage(format!("measurements lack input column '{input}'"))
            })?;
            let var = fmu.description.variable(input)?;
            let interp = match var.variability {
                Variability::Discrete => Interpolation::Hold,
                _ => Interpolation::Linear,
            };
            series.push(InputSeries::new(
                input.clone(),
                times_hours.clone(),
                col.to_vec(),
                interp,
            )?);
        }
        let names: Vec<&str> = fmu.input_names().iter().map(|s| s.as_str()).collect();
        let inputs = InputSet::bind(&names, series)?;
        // Predict from the measured initial state.
        for (i, sname) in fmu.state_names().iter().enumerate() {
            if let Some(col) = dataset.column(sname) {
                calibrated.set(&fmu.state_names()[i], col[0])?;
            } else {
                let _ = sname;
            }
        }
        let step = times_hours.get(1).copied().unwrap_or(1.0) - times_hours[0];
        let sim = calibrated.simulate(
            &inputs,
            &SimulationOptions {
                start: Some(times_hours[0]),
                stop: Some(*times_hours.last().unwrap()),
                output_step: Some(step),
                ..Default::default()
            },
        )?;
        timings.simulate = t.elapsed();

        // -- Step 6: export predictions via CSV and import into the DB. -----
        let t = Instant::now();
        let pred_cols: Vec<(String, Vec<f64>)> = sim
            .names()
            .iter()
            .map(|name| (name.clone(), sim.series(name).unwrap().to_vec()))
            .collect();
        let predictions = Dataset::new("ts", dataset.timestamps.clone(), pred_cols);
        let pred_path = self.work_dir.join(format!("{instance_tag}-pred.csv"));
        write_csv(&predictions, &pred_path)?;
        let imported = read_csv(&pred_path)?;
        let table = format!("predictions_{instance_tag}");
        db.execute(&format!("DROP TABLE IF EXISTS {table}"))?;
        imported.load_into(db, &table)?;
        timings.export = t.elapsed();

        Ok(WorkflowOutcome {
            pars: pars.to_vec(),
            params: outcome.params,
            estimation_rmse: outcome.rmse,
            validation_rmse,
            timings,
        })
    }

    /// Run the multi-instance scenario: a plain loop over single-instance
    /// workflows, one measurement table per instance. No FMU-file reuse,
    /// no warm-started estimation — the paper's "Python" MI behaviour.
    pub fn run_mi(
        &self,
        db: &Database,
        measurement_tables: &[String],
        fmu_path: &Path,
        pars: &[String],
        train_fraction: f64,
    ) -> Result<Vec<WorkflowOutcome>> {
        measurement_tables
            .iter()
            .enumerate()
            .map(|(i, table)| {
                self.run_si(db, table, fmu_path, pars, train_fraction, &format!("mi{i}"))
            })
            .collect()
    }
}

/// Convert a SQL result (timestamp first column) into a dataset.
fn query_to_dataset(q: &pgfmu_sqlmini::QueryResult) -> Result<Dataset> {
    if q.rows.is_empty() {
        return Err(BaselineError::Usage("measurement table is empty".into()));
    }
    let mut timestamps = Vec::with_capacity(q.rows.len());
    for row in &q.rows {
        match &row[0] {
            Value::Timestamp(t) => timestamps.push(*t),
            other => {
                return Err(BaselineError::Usage(format!(
                    "first column must be a timestamp, found {other}"
                )))
            }
        }
    }
    let mut columns = Vec::new();
    for (i, name) in q.columns.iter().enumerate().skip(1) {
        let col: std::result::Result<Vec<f64>, _> = q.rows.iter().map(|r| r[i].as_f64()).collect();
        if let Ok(col) = col {
            columns.push((name.clone(), col));
        }
    }
    Ok(Dataset::new(q.columns[0].clone(), timestamps, columns))
}

/// Convert a dataset into the estimation crate's measurement container.
fn dataset_to_measurement(d: &Dataset) -> Result<MeasurementData> {
    MeasurementData::new(d.times_hours(), d.columns.clone()).map_err(BaselineError::Fmi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgfmu_datagen::hp::hp1_dataset;
    use pgfmu_fmi::builtin;

    fn setup() -> (Database, PathBuf, TraditionalWorkflow) {
        let db = Database::new();
        hp1_dataset(1)
            .slice(0, 96)
            .load_into(&db, "measurements")
            .unwrap();
        let wf = TraditionalWorkflow::in_temp_dir(EstimationConfig::fast()).unwrap();
        let fmu_path = wf.work_dir().join("hp1.fmu");
        archive::write_to_path(&builtin::hp1(), &fmu_path).unwrap();
        (db, fmu_path, wf)
    }

    #[test]
    fn full_workflow_runs_and_recovers_parameters() {
        let (db, fmu_path, wf) = setup();
        let out = wf
            .run_si(
                &db,
                "measurements",
                &fmu_path,
                &["Cp".into(), "R".into()],
                0.75,
                "t1",
            )
            .unwrap();
        assert!((out.params[0] - 1.5).abs() < 0.4, "Cp {:?}", out.params);
        assert!((out.params[1] - 1.5).abs() < 0.4, "R {:?}", out.params);
        assert!(out.estimation_rmse < 1.0);
        assert!(out.validation_rmse < 1.5);
        // Predictions were imported back into the DBMS.
        let q = db.execute("SELECT count(*) FROM predictions_t1").unwrap();
        assert_eq!(q.rows[0][0], Value::Int(96));
        // Calibration dominates the runtime (paper Table 8: > 99%).
        let t = out.timings;
        assert!(
            t.calibrate.as_secs_f64() / t.total().as_secs_f64() > 0.8,
            "calibration share too small"
        );
    }

    #[test]
    fn workflow_leaves_csv_artifacts() {
        // The file hand-offs are real, inspectable artifacts — the very
        // overhead pgFMU eliminates.
        let (db, fmu_path, wf) = setup();
        wf.run_si(&db, "measurements", &fmu_path, &["Cp".into()], 0.8, "t2")
            .unwrap();
        assert!(wf.work_dir().join("t2-meas.csv").exists());
        assert!(wf.work_dir().join("t2-pred.csv").exists());
    }

    #[test]
    fn mi_is_a_plain_loop() {
        let (db, fmu_path, wf) = setup();
        let scaled = pgfmu_datagen::scale_dataset(&hp1_dataset(1).slice(0, 96), 1.05);
        scaled.load_into(&db, "measurements2").unwrap();
        let outs = wf
            .run_mi(
                &db,
                &["measurements".into(), "measurements2".into()],
                &fmu_path,
                &["Cp".into(), "R".into()],
                0.75,
            )
            .unwrap();
        assert_eq!(outs.len(), 2);
        // Both instances paid the full calibration cost (no LO reuse).
        for o in &outs {
            assert!(o.timings.calibrate > Duration::from_millis(1));
        }
    }

    #[test]
    fn error_paths() {
        let (db, fmu_path, wf) = setup();
        assert!(wf
            .run_si(&db, "missing_table", &fmu_path, &["Cp".into()], 0.8, "x")
            .is_err());
        assert!(wf
            .run_si(
                &db,
                "measurements",
                Path::new("/nonexistent.fmu"),
                &["Cp".into()],
                0.8,
                "x"
            )
            .is_err());
        assert!(wf
            .run_si(&db, "measurements", &fmu_path, &["Cp".into()], 7.0, "x")
            .is_err());
    }
}
