//! Criterion bench for Figure 6: the cost of G+LaG vs LO at one similar
//! (10%) dissimilarity point — the ratio that makes the MI optimization
//! worthwhile.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use pgfmu_bench::Profile;
use pgfmu_estimation::{estimate_lo, estimate_si, MeasurementData, SimulationObjective};
use pgfmu_fmi::builtin;

fn objective(data: &MeasurementData) -> SimulationObjective {
    let fmu = Arc::new(builtin::hp1());
    let inst = fmu.instantiate();
    SimulationObjective::new(
        Arc::clone(&fmu),
        inst.param_values(),
        inst.start_state(),
        &["Cp".into(), "R".into()],
        data,
    )
    .unwrap()
}

fn bench(c: &mut Criterion) {
    let profile = Profile::test();
    let base = pgfmu_datagen::hp::hp1_dataset(profile.seed).slice(0, profile.hp_samples);
    let scaled = pgfmu_datagen::scale_dataset(&base, 1.10);
    let mk = |d: &pgfmu_datagen::Dataset| {
        MeasurementData::new(
            d.times_hours(),
            vec![
                ("x".into(), d.column("x").unwrap().to_vec()),
                ("u".into(), d.column("u").unwrap().to_vec()),
            ],
        )
        .unwrap()
    };
    let base_data = mk(&base);
    let scaled_data = mk(&scaled);
    let anchor = estimate_si(&objective(&base_data), &profile.config);

    c.bench_function("fig6_full_g_lag", |b| {
        b.iter(|| {
            let out = estimate_si(&objective(&scaled_data), &profile.config);
            black_box(out.rmse)
        })
    });
    c.bench_function("fig6_lo_warm_start", |b| {
        b.iter(|| {
            let out = estimate_lo(&objective(&scaled_data), &anchor.params, &profile.config);
            black_box(out.rmse)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(6));
    targets = bench
}
criterion_main!(benches);
