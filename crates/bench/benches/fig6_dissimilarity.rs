//! Criterion bench for Figure 6: the cost of G+LaG vs LO at one similar
//! (10%) dissimilarity point — the ratio that makes the MI optimization
//! worthwhile — plus the SQL side of the same workload, contrasting
//! string-interpolated statements against prepared `$n` binds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use pgfmu_bench::Profile;
use pgfmu_estimation::{estimate_lo, estimate_si, MeasurementData, SimulationObjective};
use pgfmu_fmi::builtin;
use pgfmu_sqlmini::{format_timestamp, params, Database, Value};

fn objective(data: &MeasurementData) -> SimulationObjective {
    let fmu = Arc::new(builtin::hp1());
    let inst = fmu.instantiate();
    SimulationObjective::new(
        Arc::clone(&fmu),
        inst.param_values(),
        inst.start_state(),
        &["Cp".into(), "R".into()],
        data,
    )
    .unwrap()
}

fn bench(c: &mut Criterion) {
    let profile = Profile::test();
    let base = pgfmu_datagen::hp::hp1_dataset(profile.seed).slice(0, profile.hp_samples);
    let scaled = pgfmu_datagen::scale_dataset(&base, 1.10);
    let mk = |d: &pgfmu_datagen::Dataset| {
        MeasurementData::new(
            d.times_hours(),
            vec![
                ("x".into(), d.column("x").unwrap().to_vec()),
                ("u".into(), d.column("u").unwrap().to_vec()),
            ],
        )
        .unwrap()
    };
    let base_data = mk(&base);
    let scaled_data = mk(&scaled);
    let anchor = estimate_si(&objective(&base_data), &profile.config);

    c.bench_function("fig6_full_g_lag", |b| {
        b.iter(|| {
            let out = estimate_si(&objective(&scaled_data), &profile.config);
            black_box(out.rmse)
        })
    });
    c.bench_function("fig6_lo_warm_start", |b| {
        b.iter(|| {
            let out = estimate_lo(&objective(&scaled_data), &anchor.params, &profile.config);
            black_box(out.rmse)
        })
    });

    // --- The SQL side of the same workload: feeding a sweep point's
    // dataset into the engine and reading it back. Interpolated statements
    // build a distinct text per row; at fleet scale those overflow any
    // bounded cache, so the cache is capped below the row count here to
    // measure the steady-state re-parse regime. The bound path prepares
    // one plan and varies only the `$n` values.
    let db = Database::new();
    db.execute("CREATE TABLE m (ts timestamp, x float, u float)")
        .unwrap();
    db.set_stmt_cache_capacity(32);
    let ts = &scaled.timestamps;
    let xs = scaled.column("x").unwrap();
    let us = scaled.column("u").unwrap();
    assert!(ts.len() > 32, "feed bench must overflow the capped cache");

    c.bench_function("fig6_feed_interpolated", |b| {
        b.iter(|| {
            for i in 0..ts.len() {
                db.execute(&format!(
                    "INSERT INTO m VALUES ('{}', {}, {})",
                    format_timestamp(ts[i]),
                    xs[i],
                    us[i]
                ))
                .unwrap();
            }
            black_box(db.execute("DELETE FROM m").unwrap().len())
        })
    });

    let feed = db.prepare("INSERT INTO m VALUES ($1, $2, $3)").unwrap();
    c.bench_function("fig6_feed_bound", |b| {
        b.iter(|| {
            for i in 0..ts.len() {
                feed.query(params![Value::Timestamp(ts[i]), xs[i], us[i]])
                    .unwrap();
            }
            black_box(db.execute("DELETE FROM m").unwrap().len())
        })
    });

    // Read-back: a repeated identical text (the statement cache's best
    // case, so restore the default capacity) against the same plan with a
    // bound cutoff.
    db.set_stmt_cache_capacity(pgfmu_sqlmini::DEFAULT_STMT_CACHE_CAPACITY);
    for i in 0..ts.len() {
        feed.query(params![Value::Timestamp(ts[i]), xs[i], us[i]])
            .unwrap();
    }
    let cutoff = ts[ts.len() / 2];
    let interpolated = format!(
        "SELECT count(*), avg(x), avg(u) FROM m WHERE ts >= timestamp '{}'",
        format_timestamp(cutoff)
    );
    c.bench_function("fig6_query_interpolated_cached", |b| {
        b.iter(|| black_box(db.execute(&interpolated).unwrap().len()))
    });
    let bound = db
        .prepare("SELECT count(*), avg(x), avg(u) FROM m WHERE ts >= $1")
        .unwrap();
    c.bench_function("fig6_query_bound", |b| {
        b.iter(|| {
            black_box(
                bound
                    .query(params![Value::Timestamp(cutoff)])
                    .unwrap()
                    .len(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(6));
    targets = bench
}
criterion_main!(benches);
