//! Criterion bench for Figure 7: the full multi-instance workflow (HP1,
//! test-scale fleet) under pgFMU+ — the headline speed-up path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pgfmu_bench::fig7;
use pgfmu_bench::setup::ModelKind;
use pgfmu_bench::Profile;

fn bench(c: &mut Criterion) {
    let profile = Profile::test();
    c.bench_function("fig7_mi_workflow_hp1", |b| {
        b.iter(|| {
            let r = fig7::run_model(ModelKind::Hp1, &profile);
            black_box(r.speedup())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(10));
    targets = bench
}
criterion_main!(benches);
