//! Criterion bench for Figure 8: the seeded usability cohort simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("fig8_usability_cohort", |b| {
        b.iter(|| {
            let u = pgfmu_bench::fig8::run(42, 30);
            black_box(u.speedup)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
