//! Criterion bench: the per-day energy rollup over simulated output, run
//! as one grouped SQL statement vs. the pre-GROUP-BY client-side fold.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pgfmu_bench::grouped::{per_day_energy, per_day_energy_client_side, simulated_session};
use pgfmu_bench::Profile;

fn bench(c: &mut Criterion) {
    let session = simulated_session(&Profile::quick());
    c.bench_function("rollup_sql_group_by", |b| {
        b.iter(|| black_box(per_day_energy(&session, 0.0)))
    });
    c.bench_function("rollup_client_side_fold", |b| {
        b.iter(|| black_box(per_day_energy_client_side(&session, 0.0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(5));
    targets = bench
}
criterion_main!(benches);
