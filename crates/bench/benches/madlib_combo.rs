//! Criterion bench for the §8.2 combined experiment (logistic-regression
//! variant; the ARIMA variant runs in `repro madlib`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("madlib_logistic_combo", |b| {
        b.iter(|| {
            let r = pgfmu_bench::madlib::run_logistic(42, 336);
            black_box(r.gain_points())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(8));
    targets = bench
}
criterion_main!(benches);
