//! Substrate microbenchmarks: the building blocks whose costs the paper's
//! architecture reasons about — SQL execution (with/without the statement
//! cache), FMU simulation, and archive (de)serialization.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use pgfmu_fmi::{archive, builtin, InputSeries, InputSet, Interpolation, SimulationOptions};
use pgfmu_sqlmini::{params, parse_timestamp, Database, Value};

fn bench(c: &mut Criterion) {
    // --- SQL: prepared (cached) vs uncached execution. ---------------------
    let db = Database::new();
    db.execute("CREATE TABLE m (ts timestamp, x float, u float)")
        .unwrap();
    let t0 = parse_timestamp("2015-02-01 00:00").unwrap();
    let insert = db.prepare("INSERT INTO m VALUES ($1, $2, $3)").unwrap();
    for i in 0..500i64 {
        insert
            .query(params![
                Value::Timestamp(t0 + i * 3600),
                20.0 + (i % 7) as f64,
                (i % 10) as f64 / 10.0
            ])
            .unwrap();
    }
    c.bench_function("sql_select_cached_statement", |b| {
        b.iter(|| {
            black_box(
                db.execute("SELECT ts, x, u FROM m WHERE x > 21.0")
                    .unwrap()
                    .len(),
            )
        })
    });
    c.bench_function("sql_select_uncached_statement", |b| {
        b.iter(|| {
            black_box(
                db.execute_uncached("SELECT ts, x, u FROM m WHERE x > 21.0")
                    .unwrap()
                    .len(),
            )
        })
    });
    let bound = db.prepare("SELECT ts, x, u FROM m WHERE x > $1").unwrap();
    c.bench_function("sql_select_bound_statement", |b| {
        b.iter(|| black_box(bound.query(params![21.0]).unwrap().len()))
    });
    c.bench_function("sql_select_bound_streaming", |b| {
        b.iter(|| black_box(bound.query_rows(params![21.0]).unwrap().count()))
    });

    // --- FMU simulation (one month hourly, RK4). ----------------------------
    let fmu = Arc::new(builtin::hp1());
    let inst = fmu.instantiate();
    let times: Vec<f64> = (0..672).map(|i| i as f64).collect();
    let u: Vec<f64> = times.iter().map(|t| (t * 0.3).sin().abs()).collect();
    let series = InputSeries::new("u", times, u, Interpolation::Hold).unwrap();
    let inputs = InputSet::bind(&["u"], vec![series]).unwrap();
    let opts = SimulationOptions {
        start: Some(0.0),
        stop: Some(671.0),
        output_step: Some(1.0),
        ..Default::default()
    };
    c.bench_function("fmu_simulate_672h_rk4", |b| {
        b.iter(|| black_box(inst.simulate(&inputs, &opts).unwrap().len()))
    });

    // --- Archive round-trip. -------------------------------------------------
    let classroom = builtin::classroom();
    c.bench_function("fmu_archive_encode_decode", |b| {
        b.iter(|| {
            let bytes = archive::encode(&classroom);
            black_box(archive::decode(&bytes).unwrap().name().len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(4));
    targets = bench
}
criterion_main!(benches);
