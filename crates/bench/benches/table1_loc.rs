//! Criterion bench for the Table-1 code-line measurement (trivially fast;
//! present so every table has a `cargo bench` target).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("table1_loc_count", |b| {
        b.iter(|| {
            let cmp = pgfmu_bench::table1::run();
            black_box((cmp.python_total(), cmp.pgfmu_total()))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
