//! Criterion bench for Table 7: single-instance calibration (HP1) under
//! the pgFMU configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pgfmu_bench::setup::{bench_session, ModelKind};
use pgfmu_bench::Profile;

fn bench(c: &mut Criterion) {
    let profile = Profile::test();
    let bench = bench_session(ModelKind::Hp1, &profile);
    let sql = ModelKind::Hp1.parest_sql(&bench.table);
    let pars = ModelKind::Hp1.pars();
    c.bench_function("table7_hp1_calibration_pgfmu", |b| {
        b.iter(|| {
            let reports = bench
                .session
                .fmu_parest(
                    std::slice::from_ref(&bench.instance),
                    std::slice::from_ref(&sql),
                    Some(&pars),
                    None,
                )
                .unwrap();
            black_box(reports[0].rmse)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(8));
    targets = bench
}
criterion_main!(benches);
