//! Criterion bench for Table 8: the non-calibration workflow operations
//! (load, read, simulate) whose cost pgFMU's integration minimizes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pgfmu_bench::setup::{bench_session, ModelKind};
use pgfmu_bench::Profile;

fn bench(c: &mut Criterion) {
    let profile = Profile::test();
    let bench = bench_session(ModelKind::Hp1, &profile);
    let s = &bench.session;

    // The counter must outlive criterion's repeated sampling phases, or
    // instance identifiers would collide across phases.
    let counter = std::sync::atomic::AtomicUsize::new(0);
    let create = s.prepare("SELECT fmu_create($1, $2)").unwrap();
    c.bench_function("table8_load_fmu_create", |b| {
        b.iter(|| {
            let i = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let q = create
                .query(pgfmu::params!["HP1", format!("probe{i}")])
                .unwrap();
            black_box(q.len())
        })
    });

    c.bench_function("table8_read_measurements", |b| {
        b.iter(|| {
            let q = s.execute("SELECT ts, x, u FROM measurements").unwrap();
            black_box(q.len())
        })
    });

    let sim_sql = ModelKind::Hp1.simulate_sql(&bench.table).unwrap();
    c.bench_function("table8_simulate", |b| {
        b.iter(|| {
            let q = s
                .fmu_simulate(&bench.instance, Some(&sim_sql), None, None)
                .unwrap();
            black_box(q.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(4));
    targets = bench
}
criterion_main!(benches);
