//! `repro` — regenerate every table and figure of the pgFMU paper.
//!
//! ```text
//! repro [EXPERIMENT…] [--full] [--instances N]
//!
//! EXPERIMENT: table1 table2 table3 table4 table7 table8 fig6 fig7 fig8
//!             madlib grouped bench  (default: all)
//! --full        paper-scale workloads (100 instances, full datasets)
//! --instances N override the MI instance count
//! ```
//!
//! `bench` times the SQL hot paths (parse, cached plan execution, `$n`
//! binds, streaming, the grouped rollup vs. its client-side fold) and
//! writes the per-bench median nanoseconds to `BENCH_PR4.json` so the
//! performance trajectory accumulates across PRs.

use pgfmu_bench::report::{fmt_secs, render};
use pgfmu_bench::setup::{bench_session, ModelKind, ALL_MODELS};
use pgfmu_bench::{fig6, fig7, fig8, grouped, madlib, table1, table2, table7, table8, Profile};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = if args.iter().any(|a| a == "--full") {
        Profile::full()
    } else {
        Profile::quick()
    };
    if let Some(pos) = args.iter().position(|a| a == "--instances") {
        if let Some(n) = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) {
            profile.mi_instances = n;
        }
    }
    let wanted: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| {
            // skip the value of --instances
            a.parse::<usize>().is_err()
        })
        .collect();
    let run_all = wanted.is_empty();
    let want = |name: &str| run_all || wanted.iter().any(|w| *w == name);

    println!(
        "pgFMU-rs experiment reproduction — profile: {} instances, {} HP samples, {} classroom samples\n",
        profile.mi_instances, profile.hp_samples, profile.classroom_samples
    );

    if want("table1") {
        run_table1();
    }
    if want("table2") {
        run_table2();
    }
    if want("table3") {
        run_table3();
    }
    if want("table4") {
        run_table4();
    }
    if want("table7") {
        run_table7(&profile);
    }
    if want("table8") {
        run_table8(&profile);
    }
    if want("fig6") {
        run_fig6(&profile);
    }
    if want("fig7") {
        run_fig7(&profile);
    }
    if want("fig8") {
        run_fig8(&profile);
    }
    if want("madlib") {
        run_madlib(&profile);
    }
    if want("grouped") {
        run_grouped(&profile);
    }
    if want("bench") {
        run_bench_json("BENCH_PR4.json");
    }
}

/// Per-day energy rollup over simulated HP1 output, grouped in SQL vs the
/// client-side fold it replaces.
fn run_grouped(profile: &Profile) {
    println!("== Grouped rollup: per-day HP1 output energy (GROUP BY / HAVING) ==");
    let session = grouped::simulated_session(profile);
    let days = grouped::per_day_energy(&session, 0.0);
    let rows: Vec<Vec<String>> = days
        .iter()
        .map(|d| {
            vec![
                d.day.to_string(),
                format!("{:.2}", d.energy_kwh),
                d.samples.to_string(),
            ]
        })
        .collect();
    println!("{}", render(&["day", "energy kWh", "samples"], &rows));
    let sql_ns = median_ns(20, || {
        grouped::per_day_energy(&session, 0.0);
    });
    let client_ns = median_ns(20, || {
        grouped::per_day_energy_client_side(&session, 0.0);
    });
    println!(
        "one grouped statement: {} | client-side fold: {} ({:.1}x)\n",
        fmt_secs(sql_ns as f64 / 1e9),
        fmt_secs(client_ns as f64 / 1e9),
        client_ns as f64 / sql_ns as f64
    );
}

/// Median-of-N wall time of one closure, in nanoseconds.
fn median_ns(runs: usize, mut f: impl FnMut()) -> u128 {
    f(); // warm-up: fill caches, fault pages
    let mut samples: Vec<u128> = (0..runs)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Time the SQL hot paths and write `{name: median_ns}` JSON.
fn run_bench_json(path: &str) {
    use pgfmu_sqlmini::{format_timestamp, params, Database, Value};

    println!("== Hot-path microbenchmarks -> {path} ==");
    let data = pgfmu_datagen::hp::hp1_dataset(7).slice(0, 168);
    let db = Database::new();
    data.load_into(&db, "m").unwrap();
    let ts = &data.timestamps;
    let xs = data.column("x").unwrap();
    let us = data.column("u").unwrap();
    let n_rows = ts.len();

    let select = "SELECT count(*), avg(x), avg(u) FROM m WHERE x > 20.0";
    let mut results: Vec<(&str, u128)> = Vec::new();

    results.push((
        "sql_select_uncached_parse",
        median_ns(40, || {
            db.execute_uncached(select).unwrap();
        }),
    ));
    results.push((
        "sql_select_interpolated_cached",
        median_ns(40, || {
            db.execute(select).unwrap();
        }),
    ));
    let bound = db
        .prepare("SELECT count(*), avg(x), avg(u) FROM m WHERE x > $1")
        .unwrap();
    results.push((
        "sql_select_bound",
        median_ns(40, || {
            bound.query(params![20.0]).unwrap();
        }),
    ));
    let stream = db.prepare("SELECT ts, x, u FROM m WHERE x > $1").unwrap();
    results.push((
        "sql_select_bound_streaming",
        median_ns(40, || {
            assert!(stream.query_rows(params![20.0]).unwrap().count() > 0);
        }),
    ));
    db.execute("CREATE TABLE scratch (ts timestamp, x float, u float)")
        .unwrap();
    // Interpolated inserts build a distinct text per row; cap the cache
    // below the row count so the measurement reflects the steady-state
    // re-parse regime of unbounded distinct texts (fleet scale), not a
    // warm cache that a real workload would overflow.
    db.set_stmt_cache_capacity(32);
    results.push((
        "sql_insert_interpolated_per_row",
        median_ns(20, || {
            for i in 0..n_rows {
                db.execute(&format!(
                    "INSERT INTO scratch VALUES ('{}', {}, {})",
                    format_timestamp(ts[i]),
                    xs[i],
                    us[i]
                ))
                .unwrap();
            }
            db.execute("DELETE FROM scratch").unwrap();
        }) / (n_rows as u128 + 1),
    ));
    let insert = db
        .prepare("INSERT INTO scratch VALUES ($1, $2, $3)")
        .unwrap();
    results.push((
        "sql_insert_bound_per_row",
        median_ns(20, || {
            for i in 0..n_rows {
                insert
                    .query(params![Value::Timestamp(ts[i]), xs[i], us[i]])
                    .unwrap();
            }
            db.execute("DELETE FROM scratch").unwrap();
        }) / (n_rows as u128 + 1),
    ));
    // INSERT … SELECT streams its source through the cursor.
    let copy_in = db
        .prepare("INSERT INTO scratch SELECT ts, x, u FROM m")
        .unwrap();
    results.push((
        "sql_insert_select_streamed",
        median_ns(20, || {
            copy_in.query(params![]).unwrap();
            db.execute("DELETE FROM scratch").unwrap();
        }),
    ));

    // The per-day energy rollup over simulated output: grouped SQL
    // statement (index-bucketed grouping, memoized aggregates) vs. the
    // client-side fold it replaced — the plan-pipeline acceptance number.
    let bench = pgfmu_bench::grouped::simulated_session(&pgfmu_bench::Profile::quick());
    results.push((
        "grouped_rollup_sql",
        median_ns(20, || {
            pgfmu_bench::grouped::per_day_energy(&bench, 0.0);
        }),
    ));
    results.push((
        "grouped_rollup_client_fold",
        median_ns(20, || {
            pgfmu_bench::grouped::per_day_energy_client_side(&bench, 0.0);
        }),
    ));

    let mut json = String::from("{\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        json.push_str(&format!("  \"{name}\": {ns}"));
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("}\n");
    std::fs::write(path, &json).unwrap();
    for (name, ns) in &results {
        println!("{name:34} {ns:>12} ns (median)");
    }
    println!("wrote {path}\n");
}

fn run_table1() {
    println!("== Table 1: workflow operations, lines of code ==");
    let c = table1::run();
    let mut rows: Vec<Vec<String>> = c
        .rows
        .iter()
        .map(|r| {
            vec![
                r.operation.to_string(),
                r.python_lines.to_string(),
                if r.pgfmu_lines == 0 {
                    "-".into()
                } else {
                    r.pgfmu_lines.to_string()
                },
            ]
        })
        .collect();
    rows.push(vec![
        "Total".into(),
        c.python_total().to_string(),
        c.pgfmu_total().to_string(),
    ]);
    println!("{}", render(&["Operation", "Traditional", "pgFMU"], &rows));
    println!(
        "reduction: {:.1}x fewer lines (paper: ~22x)\n",
        c.reduction()
    );
}

fn run_table2() {
    println!("== Table 2: in-DBMS analytics tool comparison (probed live) ==");
    let rows: Vec<Vec<String>> = table2::run()
        .into_iter()
        .map(|r| {
            vec![
                r.feature.to_string(),
                r.madlib.to_string(),
                r.mssql.to_string(),
                r.pgfmu,
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["Feature", "MADlib", "MS SQL ML", "pgFMU-rs"], &rows)
    );
    println!("(the paper marks pgFMU's in-DBMS ML as absent; this reproduction bundles it)\n");
}

fn run_table3() {
    println!("== Table 3: fmu_variables output (parameters of HP1Instance1) ==");
    let bench = bench_session(ModelKind::Hp1, &Profile::test());
    let q = bench
        .session
        .execute(
            "SELECT * FROM fmu_variables('HP1Instance1') AS f \
             WHERE f.varType = 'parameter' ORDER BY f.varName",
        )
        .unwrap();
    println!("{}", q.to_ascii());
}

fn run_table4() {
    println!("== Table 4: fmu_simulate output (first rows) ==");
    let bench = bench_session(ModelKind::Hp1, &Profile::test());
    let q = bench
        .session
        .execute(
            "SELECT simulationTime, instanceId, varName, value \
             FROM fmu_simulate('HP1Instance1', 'SELECT ts, u FROM measurements') \
             WHERE varName IN ('y', 'x') ORDER BY simulationTime LIMIT 6",
        )
        .unwrap();
    println!("{}", q.to_ascii());
}

fn run_table7(profile: &Profile) {
    println!("== Table 7: SI scenario, model calibration comparison ==");
    let rows = table7::run(profile);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let params = r
                .params
                .iter()
                .map(|(n, v)| format!("{n}: {v:.3}"))
                .collect::<Vec<_>>()
                .join(", ");
            vec![
                r.model.to_string(),
                r.config.to_string(),
                params,
                format!("{:.4}", r.rmse),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["Model", "Config", "Param. values", "RMSE"], &rendered)
    );
    println!(
        "configs agree on parameters: {} (paper: rel. diff <= 0.02%)",
        table7::configs_agree(&rows, 0.01)
    );
    println!("paper RMSE reference: HP0 0.7701, HP1 0.5445, Classroom 1.6445\n");
}

fn run_table8(profile: &Profile) {
    println!("== Table 8: SI scenario, per-operation execution time ==");
    let rows = table8::run(profile);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|t| {
            let opt = |d: Option<std::time::Duration>| {
                d.map(|d| fmt_secs(d.as_secs_f64())).unwrap_or("-".into())
            };
            vec![
                t.model.to_string(),
                t.config.to_string(),
                fmt_secs(t.load.as_secs_f64()),
                fmt_secs(t.read.as_secs_f64()),
                fmt_secs(t.calibrate.as_secs_f64()),
                opt(t.validate),
                fmt_secs(t.simulate.as_secs_f64()),
                opt(t.export),
                fmt_secs(t.total().as_secs_f64()),
                format!(
                    "{:.1}%",
                    100.0 * t.calibrate.as_secs_f64() / t.total().as_secs_f64()
                ),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "Model",
                "Config",
                "Load",
                "Read",
                "Calibrate",
                "Validate",
                "Simulate",
                "Export",
                "Total",
                "Calib%"
            ],
            &rendered
        )
    );
    println!("(paper: calibration > 99% of the workflow; Python ≈ pgFMU± in SI)\n");
}

fn run_fig6(profile: &Profile) {
    println!("== Figure 6: RMSE & time of LO vs G+LaG across dataset dissimilarity ==");
    let points = fig6::run(profile);
    let rendered: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.dissimilarity * 100.0),
                format!("{:.4}", p.rmse_full),
                format!("{:.4}", p.rmse_lo),
                fmt_secs(p.time_full.as_secs_f64()),
                fmt_secs(p.time_lo.as_secs_f64()),
                format!(
                    "{:.1}x",
                    p.time_full.as_secs_f64() / p.time_lo.as_secs_f64().max(1e-12)
                ),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "Dissim.",
                "RMSE G+LaG",
                "RMSE LO",
                "t G+LaG",
                "t LO",
                "speedup"
            ],
            &rendered
        )
    );
    match fig6::crossover(&points, 0.10) {
        Some(d) => println!(
            "LO degrades (>10% RMSE gap) from ~{:.0}% dissimilarity (paper: ~30%)\n",
            d * 100.0
        ),
        None => println!("LO matched G+LaG across the whole sweep\n"),
    }
}

fn run_fig7(profile: &Profile) {
    println!(
        "== Figure 7: MI workflow execution time, {} instances ==",
        profile.mi_instances
    );
    for model in ALL_MODELS {
        let r = fig7::run_model(model, profile);
        let n = r.instances;
        let checkpoints: Vec<usize> = [1, n / 4, n / 2, 3 * n / 4, n]
            .into_iter()
            .filter(|&k| k >= 1)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let rendered: Vec<Vec<String>> = checkpoints
            .iter()
            .map(|&k| {
                vec![
                    k.to_string(),
                    fmt_secs(fig7::MiScaling::cumulative(&r.python, k).as_secs_f64()),
                    fmt_secs(fig7::MiScaling::cumulative(&r.pgfmu_minus, k).as_secs_f64()),
                    fmt_secs(fig7::MiScaling::cumulative(&r.pgfmu_plus, k).as_secs_f64()),
                ]
            })
            .collect();
        println!("-- {} --", r.model);
        println!(
            "{}",
            render(&["#instances", "Python", "pgFMU-", "pgFMU+"], &rendered)
        );
        println!("pgFMU+ speedup at n={}: {:.2}x\n", n, r.speedup());
    }
    println!("(paper at 100 instances: HP0 5.31x, HP1 5.51x, Classroom 8.43x)\n");
}

fn run_fig8(profile: &Profile) {
    println!("== Figure 8: usability study (SIMULATED user model — see DESIGN.md) ==");
    let u = fig8::run(profile.seed, 30);
    let rendered: Vec<Vec<String>> = u
        .participants
        .iter()
        .map(|p| {
            vec![
                p.id.to_string(),
                format!("{:.1}", p.pgfmu_minutes),
                if p.python_finished {
                    format!("{:.1}", p.python_minutes)
                } else {
                    format!("DNF (>{:.0})", fig8::SESSION_LIMIT_MIN)
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["Participant", "pgFMU (min)", "Python (min)"], &rendered)
    );
    let dnf = u.participants.iter().filter(|p| !p.python_finished).count();
    println!(
        "mean: pgFMU {:.1} min, Python {:.1} min; speedup {:.2}x (paper: 11.74x); \
         {dnf} participant(s) did not finish (paper: 1)\n",
        u.pgfmu_mean, u.python_mean, u.speedup
    );
}

fn run_madlib(profile: &Profile) {
    println!("== Combined experiments: pgFMU + MADlib-like analytics ==");
    let a = madlib::run_arima(profile.seed, profile.classroom_samples.max(480));
    println!(
        "ARIMA occupancy -> fmu_simulate: RMSE {:.3} (no occupancy) vs {:.3} (ARIMA) \
         = {:.1}% improvement (paper: up to 21.1%)",
        a.rmse_without_occ,
        a.rmse_with_arima,
        a.improvement_pct()
    );
    let l = madlib::run_logistic(profile.seed, profile.classroom_samples.max(480));
    println!(
        "logistic damper classifier: {:.1}% -> {:.1}% accuracy with the pgFMU \
         temperature feature = +{:.1} points (paper: +5.9%)\n",
        l.accuracy_base * 100.0,
        l.accuracy_with_temp * 100.0,
        l.gain_points()
    );
}
