//! `repro` — regenerate every table and figure of the pgFMU paper.
//!
//! ```text
//! repro [EXPERIMENT…] [--full] [--instances N]
//!
//! EXPERIMENT: table1 table2 table3 table4 table7 table8 fig6 fig7 fig8
//!             madlib grouped bench  (default: all)
//! --full        paper-scale workloads (100 instances, full datasets)
//! --instances N override the MI instance count
//! ```
//!
//! `bench` times the SQL hot paths (parse, cached plan execution, `$n`
//! binds, the zero-copy scan paths — streamed vs materialized, ordered,
//! in-place UPDATE/DELETE — the grouped rollup vs. its client-side fold,
//! a concurrent read-while-ingest workload that the pre-MVCC engine
//! rejected outright, the access-path subsystem — indexed point/range
//! lookups vs sequential scans on a 100 k-row table and the hash join
//! vs its nested-loop baseline — a full 672 h FMU simulation, and the
//! headline fleet workload: `fmu_simulate` over 100 catalogue instances,
//! serial loop vs `fmu_simulate_fleet` at 4 workers, with the parallel
//! output asserted byte-identical to the serial loop — and the
//! vectorized top-K: `ORDER BY … LIMIT` over an indexed range of fixed
//! width at 10 k and 100 k total rows, which must cost the same at both
//! scales — plus the concurrent-ingest ladder: the same fixed row batch
//! split over 1/2/4 writer threads, auto-commit and explicit
//! BEGIN…COMMIT variants, which rides the sharded version storage and
//! group commit) and writes per-bench robust medians
//! (`{"median_ns": …, "mad_ns": …}`, see `criterion::stats`) to
//! `BENCH_PR10.json` so the performance trajectory accumulates across
//! PRs.

use pgfmu_bench::report::{fmt_secs, render};
use pgfmu_bench::setup::{bench_session, ModelKind, ALL_MODELS};
use pgfmu_bench::{fig6, fig7, fig8, grouped, madlib, table1, table2, table7, table8, Profile};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = if args.iter().any(|a| a == "--full") {
        Profile::full()
    } else {
        Profile::quick()
    };
    if let Some(pos) = args.iter().position(|a| a == "--instances") {
        if let Some(n) = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) {
            profile.mi_instances = n;
        }
    }
    let wanted: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| {
            // skip the value of --instances
            a.parse::<usize>().is_err()
        })
        .collect();
    let run_all = wanted.is_empty();
    let want = |name: &str| run_all || wanted.iter().any(|w| *w == name);

    println!(
        "pgFMU-rs experiment reproduction — profile: {} instances, {} HP samples, {} classroom samples\n",
        profile.mi_instances, profile.hp_samples, profile.classroom_samples
    );

    if want("table1") {
        run_table1();
    }
    if want("table2") {
        run_table2();
    }
    if want("table3") {
        run_table3();
    }
    if want("table4") {
        run_table4();
    }
    if want("table7") {
        run_table7(&profile);
    }
    if want("table8") {
        run_table8(&profile);
    }
    if want("fig6") {
        run_fig6(&profile);
    }
    if want("fig7") {
        run_fig7(&profile);
    }
    if want("fig8") {
        run_fig8(&profile);
    }
    if want("madlib") {
        run_madlib(&profile);
    }
    if want("grouped") {
        run_grouped(&profile);
    }
    if want("bench") {
        run_bench_json("BENCH_PR10.json");
    }
}

/// Per-day energy rollup over simulated HP1 output, grouped in SQL vs the
/// client-side fold it replaces.
fn run_grouped(profile: &Profile) {
    println!("== Grouped rollup: per-day HP1 output energy (GROUP BY / HAVING) ==");
    let session = grouped::simulated_session(profile);
    let days = grouped::per_day_energy(&session, 0.0);
    let rows: Vec<Vec<String>> = days
        .iter()
        .map(|d| {
            vec![
                d.day.to_string(),
                format!("{:.2}", d.energy_kwh),
                d.samples.to_string(),
            ]
        })
        .collect();
    println!("{}", render(&["day", "energy kWh", "samples"], &rows));
    let sql_ns = median_ns(20, || {
        grouped::per_day_energy(&session, 0.0);
    });
    let client_ns = median_ns(20, || {
        grouped::per_day_energy_client_side(&session, 0.0);
    });
    println!(
        "one grouped statement: {} | client-side fold: {} ({:.1}x)\n",
        fmt_secs(sql_ns as f64 / 1e9),
        fmt_secs(client_ns as f64 / 1e9),
        client_ns as f64 / sql_ns as f64
    );
}

/// N timed runs of one closure (after one untimed warm-up), in ns.
fn sample_ns(runs: usize, mut f: impl FnMut()) -> Vec<f64> {
    f(); // warm-up: fill caches, fault pages
    (0..runs)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_nanos() as f64
        })
        .collect()
}

/// Median-of-N wall time of one closure, in nanoseconds.
fn median_ns(runs: usize, f: impl FnMut()) -> u128 {
    criterion::stats::summarize(&sample_ns(runs, f)).median as u128
}

/// Time the SQL hot paths and write per-bench robust medians
/// (`{"name": {"median_ns": …, "mad_ns": …}}`) plus the engine's scan
/// counters as JSON.
fn run_bench_json(path: &str) {
    use criterion::stats::{summarize, Summary};
    use pgfmu_sqlmini::{format_timestamp, params, Database, Value};
    use std::hint::black_box;

    println!("== Hot-path microbenchmarks -> {path} ==");
    let data = pgfmu_datagen::hp::hp1_dataset(7).slice(0, 168);
    let db = Database::new();
    data.load_into(&db, "m").unwrap();
    let ts = &data.timestamps;
    let xs = data.column("x").unwrap();
    let us = data.column("u").unwrap();
    let n_rows = ts.len();

    let select = "SELECT count(*), avg(x), avg(u) FROM m WHERE x > 20.0";
    // Timed runs per SELECT bench; sample_ns adds one warm-up execution.
    const SELECT_RUNS: usize = 120;
    let mut results: Vec<(&str, Summary)> = Vec::new();
    let mut push = |name: &'static str, samples: Vec<f64>| {
        results.push((name, summarize(&samples)));
    };

    push(
        "sql_select_uncached_parse",
        sample_ns(SELECT_RUNS, || {
            db.execute_uncached(select).unwrap();
        }),
    );
    push(
        "sql_select_interpolated_cached",
        sample_ns(SELECT_RUNS, || {
            db.execute(select).unwrap();
        }),
    );
    // The bound/streaming pair runs the *same* statement both ways: the
    // inversion check is purely "does the streaming cursor cost more
    // than materializing a QueryResult and reading it back". Both take
    // the zero-copy scan (asserted below).
    let (_, zero_before, _) = db.scan_stats();
    let pair = db.prepare("SELECT ts, x, u FROM m WHERE x > $1").unwrap();
    push(
        "sql_select_bound",
        sample_ns(SELECT_RUNS, || {
            let q = pair.query(params![20.0]).unwrap();
            for r in q.rows {
                black_box(r);
            }
        }),
    );
    push(
        "sql_select_bound_streaming",
        sample_ns(SELECT_RUNS, || {
            pair.query_rows(params![20.0]).unwrap().for_each(|r| {
                black_box(r.unwrap());
            });
        }),
    );
    // The aggregate shape the PR-4 file called `sql_select_bound`
    // (zero-copy grouped accumulation, one output row).
    let agg = db
        .prepare("SELECT count(*), avg(x), avg(u) FROM m WHERE x > $1")
        .unwrap();
    push(
        "sql_select_agg_bound",
        sample_ns(SELECT_RUNS, || {
            agg.query(params![20.0]).unwrap();
        }),
    );
    // Ordered + LIMIT: the zero-copy path sorts pruned projections of
    // the surviving rows, never full-row clones.
    let topk = db
        .prepare("SELECT ts, x FROM m WHERE u >= $1 ORDER BY x DESC LIMIT 24")
        .unwrap();
    push(
        "sql_select_ordered_limit",
        sample_ns(SELECT_RUNS, || {
            topk.query(params![0.0]).unwrap();
        }),
    );
    // The scan-side statements above must all have run zero-copy.
    let zero_copy_sql = db
        .query(
            "SELECT value FROM pgfmu_stats() WHERE stat = $1",
            params!["scans_zero_copy"],
        )
        .unwrap()
        .rows[0][0]
        .as_i64()
        .unwrap();
    assert!(
        zero_copy_sql as u64 >= zero_before + 4 * (SELECT_RUNS as u64 + 1),
        "bench SELECTs must take the zero-copy scan path \
         (pgfmu_stats reports {zero_copy_sql}, started at {zero_before})"
    );

    db.execute("CREATE TABLE scratch (ts timestamp, x float, u float)")
        .unwrap();
    // Interpolated inserts build a distinct text per row; cap the cache
    // below the row count so the measurement reflects the steady-state
    // re-parse regime of unbounded distinct texts (fleet scale), not a
    // warm cache that a real workload would overflow.
    db.set_stmt_cache_capacity(32);
    let per_row = |samples: Vec<f64>| {
        samples
            .into_iter()
            .map(|ns| ns / (n_rows as f64 + 1.0))
            .collect::<Vec<f64>>()
    };
    push(
        "sql_insert_interpolated_per_row",
        per_row(sample_ns(20, || {
            for i in 0..n_rows {
                db.execute(&format!(
                    "INSERT INTO scratch VALUES ('{}', {}, {})",
                    format_timestamp(ts[i]),
                    xs[i],
                    us[i]
                ))
                .unwrap();
            }
            db.execute("DELETE FROM scratch").unwrap();
        })),
    );
    let insert = db
        .prepare("INSERT INTO scratch VALUES ($1, $2, $3)")
        .unwrap();
    push(
        "sql_insert_bound_per_row",
        per_row(sample_ns(20, || {
            for i in 0..n_rows {
                insert
                    .query(params![Value::Timestamp(ts[i]), xs[i], us[i]])
                    .unwrap();
            }
            db.execute("DELETE FROM scratch").unwrap();
        })),
    );
    // INSERT … SELECT streams its source through the cursor (the source
    // scan is zero-copy and column-pruned).
    let copy_in = db
        .prepare("INSERT INTO scratch SELECT ts, x, u FROM m")
        .unwrap();
    push(
        "sql_insert_select_streamed",
        sample_ns(20, || {
            copy_in.query(params![]).unwrap();
            db.execute("DELETE FROM scratch").unwrap();
        }),
    );
    // In-place DML: the predicate (and SET expressions) evaluate under
    // one write guard; only matching rows are touched, by index. The
    // UPDATE is idempotent and the DELETE predicate never matches, so
    // every sample sees the same table.
    db.execute("INSERT INTO scratch SELECT ts, x, u FROM m")
        .unwrap();
    let upd = db
        .prepare("UPDATE scratch SET x = x * $1 WHERE u > $2")
        .unwrap();
    push(
        "sql_update_in_place",
        sample_ns(SELECT_RUNS, || {
            upd.query(params![1.0, 0.5]).unwrap();
        }),
    );
    let del = db.prepare("DELETE FROM scratch WHERE x < $1").unwrap();
    push(
        "sql_delete_scan_in_place",
        sample_ns(SELECT_RUNS, || {
            del.query(params![-1e12]).unwrap();
        }),
    );
    // Concurrent read-while-ingest: a writer thread appends the HP1
    // rows through the bound INSERT while this thread keeps a streaming
    // cursor churning over the growing table. Before MVCC this workload
    // was impossible by construction — any open cursor made writes to
    // the table error out — so the sample is the wall time for the full
    // ingest with a reader continuously streaming against it.
    push(
        "sql_concurrent_read_while_ingest",
        sample_ns(20, || {
            std::thread::scope(|s| {
                let writer = s.spawn(|| {
                    let ins = db
                        .prepare("INSERT INTO scratch VALUES ($1, $2, $3)")
                        .unwrap();
                    for i in 0..n_rows {
                        ins.query(params![Value::Timestamp(ts[i]), xs[i], us[i]])
                            .unwrap();
                    }
                });
                let scan = db.prepare("SELECT x FROM scratch").unwrap();
                while !writer.is_finished() {
                    scan.query_rows(params![]).unwrap().for_each(|r| {
                        black_box(r.unwrap());
                    });
                }
                writer.join().unwrap();
            });
            db.execute("DELETE FROM scratch").unwrap();
        }),
    );
    // Concurrent ingest scaling — the PR-10 headline: N writer threads
    // split the same fixed batch of disjoint rows over one table through
    // bound INSERTs. Sharded version storage routes each thread to its
    // own append arena, so wall time for the same total row count should
    // drop as writers are added (on machines with the cores to run
    // them). Cleanup (DELETE + vacuum) runs untimed between samples so
    // the figure is pure ingest.
    {
        const INGEST_ROWS: usize = 4096;
        const INGEST_RUNS: usize = 10;
        db.execute("CREATE TABLE ingest (k int, v float)").unwrap();
        let bench_ingest = |writers: usize, txn: bool| -> Vec<f64> {
            let mut out = Vec::with_capacity(INGEST_RUNS);
            for run in 0..=INGEST_RUNS {
                let t0 = std::time::Instant::now();
                std::thread::scope(|s| {
                    for w in 0..writers {
                        let db = &db;
                        s.spawn(move || {
                            let ins = db.prepare("INSERT INTO ingest VALUES ($1, $2)").unwrap();
                            let chunk = INGEST_ROWS / writers;
                            if txn {
                                db.execute("BEGIN").unwrap();
                            }
                            for i in 0..chunk as i64 {
                                let k = (w * chunk) as i64 + i;
                                ins.query(params![k, k as f64]).unwrap();
                            }
                            if txn {
                                db.execute("COMMIT").unwrap();
                            }
                        });
                    }
                });
                if run > 0 {
                    // run 0 is the warm-up
                    out.push(t0.elapsed().as_nanos() as f64);
                }
                // Transactional cleanup: an auto-commit DELETE takes the
                // in-place fast path and physically removes rows without
                // ever creating garbage, so wrap it in a transaction to
                // leave real dead versions for vacuum — the footer's
                // versions_gc figure comes from here.
                db.execute("BEGIN").unwrap();
                db.execute("DELETE FROM ingest").unwrap();
                db.execute("COMMIT").unwrap();
                db.vacuum();
            }
            out
        };
        push("sql_concurrent_ingest_1writers", bench_ingest(1, false));
        push("sql_concurrent_ingest_2writers", bench_ingest(2, false));
        push("sql_concurrent_ingest_4writers", bench_ingest(4, false));
        // Explicit transactional writers: BEGIN … COMMIT around each
        // thread's batch, so the footer's txns_committed / group-commit
        // counters reflect real transactional ingest. (The PR-9 file
        // recorded txns_committed = 0 because every bench write
        // auto-committed — this variant is the fix.)
        push("sql_concurrent_ingest_txn_4writers", bench_ingest(4, true));
    }

    // Access paths: a 100 k-row table probed by key, with the planner's
    // index choice toggled off for the sequential baseline. The per-PR
    // acceptance number is the indexed/seq ratio; the pgfmu_stats()
    // assertion below proves the fast runs actually took the index path.
    {
        db.execute("CREATE TABLE big (k int, v float)").unwrap();
        let ins = db.prepare("INSERT INTO big VALUES ($1, $2)").unwrap();
        for i in 0..100_000i64 {
            ins.query(params![i, (i % 97) as f64]).unwrap();
        }
        db.execute("CREATE UNIQUE INDEX big_k ON big (k)").unwrap();
        db.execute("ANALYZE big").unwrap();
        let point = db.prepare("SELECT v FROM big WHERE k = $1").unwrap();
        let (ix_before, _, _, _) = db.access_stats();
        push(
            "sql_point_lookup_indexed",
            sample_ns(SELECT_RUNS, || {
                black_box(point.query(params![77_777i64]).unwrap());
            }),
        );
        let (ix_after, _, _, _) = db.access_stats();
        assert!(
            ix_after > ix_before + SELECT_RUNS as u64,
            "point lookups must take the index path \
             (pgfmu_stats reports {ix_after} index scans, started at {ix_before})"
        );
        let range = db
            .prepare("SELECT count(*), avg(v) FROM big WHERE k >= $1 AND k < $2")
            .unwrap();
        push(
            "sql_range_scan_indexed",
            sample_ns(SELECT_RUNS, || {
                black_box(range.query(params![50_000i64, 50_256i64]).unwrap());
            }),
        );
        db.set_index_access_enabled(false);
        push(
            "sql_point_lookup_seq",
            sample_ns(30, || {
                black_box(point.query(params![77_777i64]).unwrap());
            }),
        );
        db.set_index_access_enabled(true);
    }
    // Vectorized top-K: ORDER BY … LIMIT over an indexed range of fixed
    // absolute width (256 candidate rows) at 10 k and at 100 k total
    // rows. The index narrows both scans to the same candidate set, so
    // the batch fill + bounded heap must cost the same at both scales —
    // the per-PR acceptance gate is 100 k within 2x of 10 k.
    {
        db.execute("CREATE TABLE topk_small (k int, v float)")
            .unwrap();
        let ins = db
            .prepare("INSERT INTO topk_small VALUES ($1, $2)")
            .unwrap();
        for i in 0..10_000i64 {
            ins.query(params![i, ((i * 37) % 1009) as f64]).unwrap();
        }
        db.execute("CREATE UNIQUE INDEX topk_small_k ON topk_small (k)")
            .unwrap();
        db.execute("ANALYZE topk_small").unwrap();
        let (filled_before, ops_before, _) = db.vectorized_stats();
        let q10 = db
            .prepare(
                "SELECT k, v FROM topk_small WHERE k >= $1 AND k < $2 \
                 ORDER BY v DESC LIMIT 24",
            )
            .unwrap();
        push(
            "sql_select_ordered_limit_topk_10k",
            sample_ns(SELECT_RUNS, || {
                black_box(q10.query(params![4_000i64, 4_256i64]).unwrap());
            }),
        );
        let q100 = db
            .prepare(
                "SELECT k, v FROM big WHERE k >= $1 AND k < $2 \
                 ORDER BY v DESC LIMIT 24",
            )
            .unwrap();
        push(
            "sql_select_ordered_limit_topk_100k",
            sample_ns(SELECT_RUNS, || {
                black_box(q100.query(params![40_000i64, 40_256i64]).unwrap());
            }),
        );
        let (filled_after, ops_after, _) = db.vectorized_stats();
        assert!(
            filled_after > filled_before && ops_after > ops_before,
            "the top-K benches must take the vectorized batch path \
             (pgfmu_stats reports {filled_after} batches / {ops_after} ops, \
              started at {filled_before} / {ops_before})"
        );
    }

    // Hash join vs the nested loop it replaces, on an equi-join whose
    // cross product (2000 x 400) the cost model refuses to nested-loop.
    {
        db.execute("CREATE TABLE jl (k int, v float)").unwrap();
        db.execute("CREATE TABLE jr (k int, w float)").unwrap();
        let ins = db.prepare("INSERT INTO jl VALUES ($1, $2)").unwrap();
        for i in 0..2000i64 {
            ins.query(params![i, i as f64]).unwrap();
        }
        let ins = db.prepare("INSERT INTO jr VALUES ($1, $2)").unwrap();
        for i in 0..400i64 {
            ins.query(params![i * 5, i as f64]).unwrap();
        }
        let join = db
            .prepare("SELECT count(*), avg(jl.v + jr.w) FROM jl JOIN jr ON jl.k = jr.k")
            .unwrap();
        let (_, _, hj_before, _) = db.access_stats();
        push(
            "sql_hash_join_vs_nested",
            sample_ns(30, || {
                black_box(join.query(params![]).unwrap());
            }),
        );
        let (_, _, hj_after, _) = db.access_stats();
        assert!(
            hj_after >= hj_before + 31,
            "the equi-join must build a hash table \
             (pgfmu_stats reports {hj_after} hash joins, started at {hj_before})"
        );
        db.set_hash_join_enabled(false);
        push(
            "sql_nested_loop_join",
            sample_ns(30, || {
                black_box(join.query(params![]).unwrap());
            }),
        );
        db.set_hash_join_enabled(true);
    }

    // The per-day energy rollup over simulated output: grouped SQL
    // statement (index-bucketed grouping, memoized aggregates) vs. the
    // client-side fold it replaced — the plan-pipeline acceptance number.
    let bench = pgfmu_bench::grouped::simulated_session(&pgfmu_bench::Profile::quick());
    push(
        "grouped_rollup_sql",
        sample_ns(20, || {
            pgfmu_bench::grouped::per_day_energy(&bench, 0.0);
        }),
    );
    push(
        "grouped_rollup_client_fold",
        sample_ns(20, || {
            pgfmu_bench::grouped::per_day_energy_client_side(&bench, 0.0);
        }),
    );

    // One month of hourly HP1 simulation, RK4 — the FMU hot loop
    // (allocation-free solver scratch, hoisted input buffer).
    {
        use pgfmu_fmi::{builtin, InputSeries, InputSet, Interpolation, SimulationOptions};
        let fmu = std::sync::Arc::new(builtin::hp1());
        let inst = fmu.instantiate();
        let times: Vec<f64> = (0..672).map(|i| i as f64).collect();
        let u: Vec<f64> = times.iter().map(|t| (t * 0.3).sin().abs()).collect();
        let series = InputSeries::new("u", times, u, Interpolation::Hold).unwrap();
        let inputs = InputSet::bind(&["u"], vec![series]).unwrap();
        let opts = SimulationOptions {
            start: Some(0.0),
            stop: Some(671.0),
            output_step: Some(1.0),
            ..Default::default()
        };
        push(
            "fmu_simulate_672h",
            sample_ns(15, || {
                black_box(inst.simulate(&inputs, &opts).unwrap().len());
            }),
        );
    }

    // Fleet-scale simulation — the PR-8 headline: 100 HP1 instances
    // driven over a shared 672 h input table, serial loop vs
    // `fmu_simulate_fleet` at 4 workers. Correctness is asserted
    // unconditionally (parallel output byte-identical to the serial
    // loop); the ≥3x speedup is asserted only on machines with ≥4 cores
    // (a single-core runner cannot manifest parallel speedup).
    let fleet = {
        use pgfmu::PgFmu;
        const FLEET_WORKERS: usize = 4;
        const FLEET_RUNS: usize = 3;
        let n_instances: usize = std::env::var("PGFMU_FLEET_INSTANCES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100);
        let s = PgFmu::new().unwrap();
        pgfmu_datagen::hp::hp1_dataset(7)
            .slice(0, 672)
            .load_into(s.db(), "fleet_m")
            .unwrap();
        let ids: Vec<String> = (0..n_instances).map(|i| format!("f{i}")).collect();
        s.fmu_create("HP1", Some(&ids[0])).unwrap();
        for id in &ids[1..] {
            s.fmu_copy(&ids[0], Some(id)).unwrap();
        }
        let input = "SELECT * FROM fleet_m";
        // fmu_simulate persists final states, so every run rewinds the
        // fleet to its declared initial values first.
        let reset_all = || {
            for id in &ids {
                s.fmu_reset(id).unwrap();
            }
        };
        // Correctness gate: the 4-worker output is byte-identical to the
        // serial loop's.
        let mut serial_out = s.fmu_simulate(&ids[0], Some(input), None, None).unwrap();
        for id in &ids[1..] {
            serial_out
                .rows
                .extend(s.fmu_simulate(id, Some(input), None, None).unwrap().rows);
        }
        reset_all();
        let fleet_out = s
            .fmu_simulate_fleet(&ids, Some(input), None, None, Some(FLEET_WORKERS))
            .unwrap();
        assert_eq!(
            serial_out, fleet_out,
            "fleet output must be byte-identical to the serial loop"
        );
        drop((serial_out, fleet_out));
        push(
            "fleet_simulate_672h_serial",
            sample_ns(FLEET_RUNS, || {
                reset_all();
                for id in &ids {
                    black_box(s.fmu_simulate(id, Some(input), None, None).unwrap().len());
                }
            }),
        );
        push(
            "fleet_simulate_672h_x4workers",
            sample_ns(FLEET_RUNS, || {
                reset_all();
                black_box(
                    s.fmu_simulate_fleet(&ids, Some(input), None, None, Some(FLEET_WORKERS))
                        .unwrap()
                        .len(),
                );
            }),
        );
        // The observability counters double as the proof that the fleet
        // path actually ran: 1 equivalence batch + 1 warm-up + the timed
        // samples, each fanning one task per instance at 4 workers.
        let (fleet_tasks, fleet_workers, fleet_task_ns) = s.db().fleet_stats();
        assert_eq!(
            fleet_tasks,
            ((FLEET_RUNS + 2) * n_instances) as u64,
            "every fleet batch must be accounted in pgfmu_stats()"
        );
        assert_eq!(fleet_workers, FLEET_WORKERS as u64);
        assert!(fleet_task_ns > 0, "per-task wall time not recorded");
        (n_instances, fleet_tasks, fleet_workers, fleet_task_ns)
    };

    let (rows_scanned, zero_copy, fallbacks) = db.scan_stats();
    let (txns_committed, txns_rolled_back) = db.txn_stats();
    let (index_scans, seq_scans, hash_joins, analyze_runs) = db.access_stats();
    let (batches_filled, vectorized_ops, vectorized_fallbacks) = db.vectorized_stats();
    let versions_gc = db.gc_stats();
    let (shard_count, write_shard_waits, group_commits, group_commit_batched) = db.shard_stats();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The transactional ingest variant must have left real commit and GC
    // traffic behind — the PR-9 footer recorded 0 for both.
    assert!(
        txns_committed > 0,
        "the transactional ingest bench must commit explicit transactions"
    );
    assert!(
        versions_gc > 0,
        "the ingest benches vacuum between samples; GC must have reclaimed versions"
    );
    let mut json = String::from("{\n");
    for (name, s) in &results {
        json.push_str(&format!(
            "  \"{name}\": {{\"median_ns\": {}, \"mad_ns\": {}}},\n",
            s.median as u128, s.mad as u128
        ));
    }
    json.push_str(&format!(
        "  \"fleet\": {{\"instances\": {}, \"fleet_tasks\": {}, \
         \"fleet_workers\": {}, \"fleet_task_ns\": {}, \"cores\": {cores}}},\n",
        fleet.0, fleet.1, fleet.2, fleet.3
    ));
    json.push_str(&format!(
        "  \"pgfmu_stats\": {{\"rows_scanned\": {rows_scanned}, \
         \"scans_zero_copy\": {zero_copy}, \"scan_fallbacks\": {fallbacks}, \
         \"index_scans\": {index_scans}, \"seq_scans\": {seq_scans}, \
         \"hash_joins\": {hash_joins}, \"analyze_runs\": {analyze_runs}, \
         \"batches_filled\": {batches_filled}, \
         \"vectorized_ops\": {vectorized_ops}, \
         \"vectorized_fallbacks\": {vectorized_fallbacks}, \
         \"txns_committed\": {txns_committed}, \
         \"txns_rolled_back\": {txns_rolled_back}, \
         \"versions_gc\": {versions_gc}, \
         \"shard_count\": {shard_count}, \
         \"write_shard_waits\": {write_shard_waits}, \
         \"group_commits\": {group_commits}, \
         \"group_commit_batched\": {group_commit_batched}}}\n"
    ));
    json.push_str("}\n");
    std::fs::write(path, &json).unwrap();
    for (name, s) in &results {
        println!(
            "{name:34} {:>12} ns (median, ±{} MAD)",
            s.median as u128, s.mad as u128
        );
    }
    let median_of = |name: &str| -> f64 {
        results
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s.median)
            .unwrap_or(f64::NAN)
    };
    println!(
        "access paths: indexed point lookup {:.1}x over seq scan (100k rows), \
         hash join {:.1}x over nested loop",
        median_of("sql_point_lookup_seq") / median_of("sql_point_lookup_indexed"),
        median_of("sql_nested_loop_join") / median_of("sql_hash_join_vs_nested")
    );
    println!(
        "top-K: 256-row indexed candidate set sorts in {} at 10k rows vs {} at \
         100k rows ({:.2}x — fixed-width top-K must not scale with the table)",
        fmt_secs(median_of("sql_select_ordered_limit_topk_10k") / 1e9),
        fmt_secs(median_of("sql_select_ordered_limit_topk_100k") / 1e9),
        median_of("sql_select_ordered_limit_topk_100k")
            / median_of("sql_select_ordered_limit_topk_10k")
    );
    let fleet_speedup =
        median_of("fleet_simulate_672h_serial") / median_of("fleet_simulate_672h_x4workers");
    println!(
        "fleet: {} instances simulated, {:.2}x speedup at 4 workers over the \
         serial loop ({cores} core(s) available), parallel output byte-identical",
        fleet.0, fleet_speedup
    );
    if cores >= 4 {
        assert!(
            fleet_speedup >= 3.0,
            "fleet simulation at 4 workers must be >= 3x over serial on a \
             >= 4-core machine (measured {fleet_speedup:.2}x)"
        );
    } else {
        println!(
            "note: SKIPPED the >=3x fleet speedup assertion — only {cores} core(s) \
             available and the 4-worker fleet needs at least 4 to manifest a \
             parallel speedup; correctness (byte-identical output) was still asserted"
        );
    }
    let ingest_speedup =
        median_of("sql_concurrent_ingest_1writers") / median_of("sql_concurrent_ingest_4writers");
    println!(
        "concurrent ingest: 4 writers {ingest_speedup:.2}x over 1 writer for the \
         same total row count ({shard_count} table shard(s), {cores} core(s) available)"
    );
    if cores >= 4 {
        assert!(
            ingest_speedup >= 2.0,
            "4-writer ingest must be >= 2x over 1 writer on a >= 4-core machine \
             (measured {ingest_speedup:.2}x)"
        );
    } else {
        println!(
            "note: SKIPPED the >=2x concurrent-ingest scaling assertion — only \
             {cores} core(s) available and sharded writers need at least 4 to \
             manifest parallel ingest; write correctness across shard counts is \
             still covered by the S=1-vs-S=8 equivalence tests"
        );
    }
    println!(
        "scan counters: {rows_scanned} rows scanned, {zero_copy} zero-copy scans, \
         {fallbacks} snapshot scans (zero-copy confirmed via pgfmu_stats()); \
         {index_scans} index scans / {seq_scans} seq scans / {hash_joins} hash joins \
         / {analyze_runs} analyze runs; \
         {batches_filled} batches filled / {vectorized_ops} vectorized ops / \
         {vectorized_fallbacks} vectorized fallbacks; \
         {versions_gc} dead row versions reclaimed by GC; \
         {shard_count} table shard(s) / {write_shard_waits} shard write waits / \
         {group_commits} group commits ({group_commit_batched} piggybacked)"
    );
    println!("wrote {path}\n");
}

fn run_table1() {
    println!("== Table 1: workflow operations, lines of code ==");
    let c = table1::run();
    let mut rows: Vec<Vec<String>> = c
        .rows
        .iter()
        .map(|r| {
            vec![
                r.operation.to_string(),
                r.python_lines.to_string(),
                if r.pgfmu_lines == 0 {
                    "-".into()
                } else {
                    r.pgfmu_lines.to_string()
                },
            ]
        })
        .collect();
    rows.push(vec![
        "Total".into(),
        c.python_total().to_string(),
        c.pgfmu_total().to_string(),
    ]);
    println!("{}", render(&["Operation", "Traditional", "pgFMU"], &rows));
    println!(
        "reduction: {:.1}x fewer lines (paper: ~22x)\n",
        c.reduction()
    );
}

fn run_table2() {
    println!("== Table 2: in-DBMS analytics tool comparison (probed live) ==");
    let rows: Vec<Vec<String>> = table2::run()
        .into_iter()
        .map(|r| {
            vec![
                r.feature.to_string(),
                r.madlib.to_string(),
                r.mssql.to_string(),
                r.pgfmu,
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["Feature", "MADlib", "MS SQL ML", "pgFMU-rs"], &rows)
    );
    println!("(the paper marks pgFMU's in-DBMS ML as absent; this reproduction bundles it)\n");
}

fn run_table3() {
    println!("== Table 3: fmu_variables output (parameters of HP1Instance1) ==");
    let bench = bench_session(ModelKind::Hp1, &Profile::test());
    let q = bench
        .session
        .execute(
            "SELECT * FROM fmu_variables('HP1Instance1') AS f \
             WHERE f.varType = 'parameter' ORDER BY f.varName",
        )
        .unwrap();
    println!("{}", q.to_ascii());
}

fn run_table4() {
    println!("== Table 4: fmu_simulate output (first rows) ==");
    let bench = bench_session(ModelKind::Hp1, &Profile::test());
    let q = bench
        .session
        .execute(
            "SELECT simulationTime, instanceId, varName, value \
             FROM fmu_simulate('HP1Instance1', 'SELECT ts, u FROM measurements') \
             WHERE varName IN ('y', 'x') ORDER BY simulationTime LIMIT 6",
        )
        .unwrap();
    println!("{}", q.to_ascii());
}

fn run_table7(profile: &Profile) {
    println!("== Table 7: SI scenario, model calibration comparison ==");
    let rows = table7::run(profile);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let params = r
                .params
                .iter()
                .map(|(n, v)| format!("{n}: {v:.3}"))
                .collect::<Vec<_>>()
                .join(", ");
            vec![
                r.model.to_string(),
                r.config.to_string(),
                params,
                format!("{:.4}", r.rmse),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["Model", "Config", "Param. values", "RMSE"], &rendered)
    );
    println!(
        "configs agree on parameters: {} (paper: rel. diff <= 0.02%)",
        table7::configs_agree(&rows, 0.01)
    );
    println!("paper RMSE reference: HP0 0.7701, HP1 0.5445, Classroom 1.6445\n");
}

fn run_table8(profile: &Profile) {
    println!("== Table 8: SI scenario, per-operation execution time ==");
    let rows = table8::run(profile);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|t| {
            let opt = |d: Option<std::time::Duration>| {
                d.map(|d| fmt_secs(d.as_secs_f64())).unwrap_or("-".into())
            };
            vec![
                t.model.to_string(),
                t.config.to_string(),
                fmt_secs(t.load.as_secs_f64()),
                fmt_secs(t.read.as_secs_f64()),
                fmt_secs(t.calibrate.as_secs_f64()),
                opt(t.validate),
                fmt_secs(t.simulate.as_secs_f64()),
                opt(t.export),
                fmt_secs(t.total().as_secs_f64()),
                format!(
                    "{:.1}%",
                    100.0 * t.calibrate.as_secs_f64() / t.total().as_secs_f64()
                ),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "Model",
                "Config",
                "Load",
                "Read",
                "Calibrate",
                "Validate",
                "Simulate",
                "Export",
                "Total",
                "Calib%"
            ],
            &rendered
        )
    );
    println!("(paper: calibration > 99% of the workflow; Python ≈ pgFMU± in SI)\n");
}

fn run_fig6(profile: &Profile) {
    println!("== Figure 6: RMSE & time of LO vs G+LaG across dataset dissimilarity ==");
    let points = fig6::run(profile);
    let rendered: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.dissimilarity * 100.0),
                format!("{:.4}", p.rmse_full),
                format!("{:.4}", p.rmse_lo),
                fmt_secs(p.time_full.as_secs_f64()),
                fmt_secs(p.time_lo.as_secs_f64()),
                format!(
                    "{:.1}x",
                    p.time_full.as_secs_f64() / p.time_lo.as_secs_f64().max(1e-12)
                ),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "Dissim.",
                "RMSE G+LaG",
                "RMSE LO",
                "t G+LaG",
                "t LO",
                "speedup"
            ],
            &rendered
        )
    );
    match fig6::crossover(&points, 0.10) {
        Some(d) => println!(
            "LO degrades (>10% RMSE gap) from ~{:.0}% dissimilarity (paper: ~30%)\n",
            d * 100.0
        ),
        None => println!("LO matched G+LaG across the whole sweep\n"),
    }
}

fn run_fig7(profile: &Profile) {
    println!(
        "== Figure 7: MI workflow execution time, {} instances ==",
        profile.mi_instances
    );
    for model in ALL_MODELS {
        let r = fig7::run_model(model, profile);
        let n = r.instances;
        let checkpoints: Vec<usize> = [1, n / 4, n / 2, 3 * n / 4, n]
            .into_iter()
            .filter(|&k| k >= 1)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let rendered: Vec<Vec<String>> = checkpoints
            .iter()
            .map(|&k| {
                vec![
                    k.to_string(),
                    fmt_secs(fig7::MiScaling::cumulative(&r.python, k).as_secs_f64()),
                    fmt_secs(fig7::MiScaling::cumulative(&r.pgfmu_minus, k).as_secs_f64()),
                    fmt_secs(fig7::MiScaling::cumulative(&r.pgfmu_plus, k).as_secs_f64()),
                ]
            })
            .collect();
        println!("-- {} --", r.model);
        println!(
            "{}",
            render(&["#instances", "Python", "pgFMU-", "pgFMU+"], &rendered)
        );
        println!("pgFMU+ speedup at n={}: {:.2}x\n", n, r.speedup());
    }
    println!("(paper at 100 instances: HP0 5.31x, HP1 5.51x, Classroom 8.43x)\n");
}

fn run_fig8(profile: &Profile) {
    println!("== Figure 8: usability study (SIMULATED user model — see DESIGN.md) ==");
    let u = fig8::run(profile.seed, 30);
    let rendered: Vec<Vec<String>> = u
        .participants
        .iter()
        .map(|p| {
            vec![
                p.id.to_string(),
                format!("{:.1}", p.pgfmu_minutes),
                if p.python_finished {
                    format!("{:.1}", p.python_minutes)
                } else {
                    format!("DNF (>{:.0})", fig8::SESSION_LIMIT_MIN)
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["Participant", "pgFMU (min)", "Python (min)"], &rendered)
    );
    let dnf = u.participants.iter().filter(|p| !p.python_finished).count();
    println!(
        "mean: pgFMU {:.1} min, Python {:.1} min; speedup {:.2}x (paper: 11.74x); \
         {dnf} participant(s) did not finish (paper: 1)\n",
        u.pgfmu_mean, u.python_mean, u.speedup
    );
}

fn run_madlib(profile: &Profile) {
    println!("== Combined experiments: pgFMU + MADlib-like analytics ==");
    let a = madlib::run_arima(profile.seed, profile.classroom_samples.max(480));
    println!(
        "ARIMA occupancy -> fmu_simulate: RMSE {:.3} (no occupancy) vs {:.3} (ARIMA) \
         = {:.1}% improvement (paper: up to 21.1%)",
        a.rmse_without_occ,
        a.rmse_with_arima,
        a.improvement_pct()
    );
    let l = madlib::run_logistic(profile.seed, profile.classroom_samples.max(480));
    println!(
        "logistic damper classifier: {:.1}% -> {:.1}% accuracy with the pgFMU \
         temperature feature = +{:.1} points (paper: +5.9%)\n",
        l.accuracy_base * 100.0,
        l.accuracy_with_temp * 100.0,
        l.gain_points()
    );
}
