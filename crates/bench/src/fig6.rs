//! Figure 6 — average RMSE and execution time of LO vs. G+LaG for datasets
//! of increasing dissimilarity (HP1 model).
//!
//! The paper's finding: "there is no difference in G+LaG and LO RMSEs
//! until maximum dissimilarity reached approximately 30%; after this, the
//! difference grows linearly", while LO is roughly an order of magnitude
//! cheaper (G alone is ~90% of the execution time). This sweep regenerates
//! exactly that crossover.

use std::sync::Arc;
use std::time::Duration;

use pgfmu_estimation::{estimate_lo, estimate_si, MeasurementData, SimulationObjective};
use pgfmu_fmi::builtin;

use crate::profiles::Profile;
use crate::setup::ModelKind;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Dataset dissimilarity (relative L2 distance; |δ−1| by construction).
    pub dissimilarity: f64,
    /// RMSE of full G+LaG estimation on the scaled dataset.
    pub rmse_full: f64,
    /// RMSE of LO warm-started from the base dataset's optimum.
    pub rmse_lo: f64,
    /// Wall time of G+LaG.
    pub time_full: Duration,
    /// Wall time of LO.
    pub time_lo: Duration,
}

fn objective_for(data: &MeasurementData) -> SimulationObjective {
    let fmu = Arc::new(builtin::hp1());
    let inst = fmu.instantiate();
    SimulationObjective::new(
        Arc::clone(&fmu),
        inst.param_values(),
        inst.start_state(),
        &["Cp".into(), "R".into()],
        data,
    )
    .expect("objective")
}

fn measurement_data(dataset: &pgfmu_datagen::Dataset) -> MeasurementData {
    MeasurementData::new(
        dataset.times_hours(),
        vec![
            ("x".into(), dataset.column("x").unwrap().to_vec()),
            ("u".into(), dataset.column("u").unwrap().to_vec()),
        ],
    )
    .expect("measurement data")
}

/// Run the dissimilarity sweep: δ ∈ {1.00, 1.05, …, 1.50}, i.e.
/// dissimilarity 0%..50% in 5% steps.
pub fn run(profile: &Profile) -> Vec<SweepPoint> {
    let base = ModelKind::Hp1.dataset(profile);
    let base_data = measurement_data(&base);
    let anchor = estimate_si(&objective_for(&base_data), &profile.config);

    let mut points = Vec::new();
    for step in 0..=10 {
        let delta = 1.0 + 0.05 * step as f64;
        let scaled = pgfmu_datagen::scale_dataset(&base, delta);
        let data = measurement_data(&scaled);

        let obj_full = objective_for(&data);
        let full = estimate_si(&obj_full, &profile.config);
        let obj_lo = objective_for(&data);
        let lo = estimate_lo(&obj_lo, &anchor.params, &profile.config);

        points.push(SweepPoint {
            dissimilarity: delta - 1.0,
            rmse_full: full.rmse,
            rmse_lo: lo.rmse,
            time_full: full.total_time(),
            time_lo: lo.total_time(),
        });
    }
    points
}

/// The dissimilarity (in 0..=0.5) where the LO−G+LaG RMSE gap first
/// exceeds `gap` relative to G+LaG — the paper's ≈30% crossover.
pub fn crossover(points: &[SweepPoint], gap: f64) -> Option<f64> {
    points
        .iter()
        .find(|p| (p.rmse_lo - p.rmse_full) / p.rmse_full.max(1e-9) > gap)
        .map(|p| p.dissimilarity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lo_matches_full_near_zero_dissimilarity_and_is_cheaper() {
        let points = run(&Profile::test());
        assert_eq!(points.len(), 11);
        let p0 = &points[0];
        assert!(
            (p0.rmse_lo - p0.rmse_full).abs() / p0.rmse_full < 0.05,
            "at delta=1 LO must match G+LaG: {} vs {}",
            p0.rmse_lo,
            p0.rmse_full
        );
        // LO is much cheaper at every point.
        for p in &points {
            assert!(
                p.time_lo < p.time_full,
                "LO slower at {}: {:?} vs {:?}",
                p.dissimilarity,
                p.time_lo,
                p.time_full
            );
        }
    }

    #[test]
    fn rmse_gap_eventually_appears() {
        let points = run(&Profile::test());
        // Somewhere in the sweep the warm start stops being good enough —
        // the Figure-6 divergence. (The exact crossover is profile
        // dependent; it must exist by 50% dissimilarity or LO would always
        // win, contradicting the need for the threshold.)
        let worst_gap = points
            .iter()
            .map(|p| (p.rmse_lo - p.rmse_full) / p.rmse_full.max(1e-9))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            worst_gap > 0.02,
            "no RMSE gap appeared anywhere in the sweep ({worst_gap})"
        );
    }
}
