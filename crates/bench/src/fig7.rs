//! Figure 7 — multi-instance workflow execution time (store + calibrate +
//! simulate + validate N instances) for Python, pgFMU− and pgFMU+.
//!
//! The paper's result: execution time grows linearly with the instance
//! count in all three configurations; Python and pgFMU− share the growth
//! rate, pgFMU+ grows much slower thanks to the MI optimization —
//! 5.31×/5.51×/8.43× faster at 100 instances for HP0/HP1/Classroom.

use std::time::{Duration, Instant};

use pgfmu_fmi::archive;

use crate::profiles::Profile;
use crate::setup::{bench_session, ModelKind};

/// Per-configuration result of the MI scaling experiment.
#[derive(Debug, Clone)]
pub struct MiScaling {
    /// Model name.
    pub model: &'static str,
    /// Number of instances.
    pub instances: usize,
    /// Per-instance workflow durations, Python configuration.
    pub python: Vec<Duration>,
    /// Per-instance workflow durations, pgFMU− (no MI optimization).
    pub pgfmu_minus: Vec<Duration>,
    /// Per-instance workflow durations, pgFMU+ (MI optimization).
    pub pgfmu_plus: Vec<Duration>,
}

impl MiScaling {
    /// Cumulative time after the first `n` instances for a series.
    pub fn cumulative(series: &[Duration], n: usize) -> Duration {
        series.iter().take(n).sum()
    }

    /// pgFMU+ speed-up over pgFMU− at the full instance count.
    pub fn speedup(&self) -> f64 {
        let minus = Self::cumulative(&self.pgfmu_minus, self.instances).as_secs_f64();
        let plus = Self::cumulative(&self.pgfmu_plus, self.instances).as_secs_f64();
        minus / plus.max(1e-12)
    }
}

/// Run the MI scaling experiment for one model.
pub fn run_model(model: ModelKind, profile: &Profile) -> MiScaling {
    let n = profile.mi_instances;
    let base = model.dataset(profile);
    let datasets = pgfmu_datagen::synthetic_instances(&base, n, profile.seed);
    let pars = model.pars();

    // ---------------- Python: a loop of file-based workflows. -------------
    let db = pgfmu_sqlmini::Database::new();
    let mut tables = Vec::new();
    for (i, (_, data)) in datasets.iter().enumerate() {
        let table = format!("m{i}");
        data.load_into(&db, &table).unwrap();
        tables.push(table);
    }
    let wf = pgfmu_baseline::TraditionalWorkflow::in_temp_dir(profile.config).unwrap();
    let fmu_path = wf.work_dir().join(format!("{}.fmu", model.name()));
    archive::write_to_path(
        &pgfmu_fmi::builtin::by_name(model.name()).unwrap(),
        &fmu_path,
    )
    .unwrap();
    // Both stacks calibrate on the full window (train_fraction = 1.0) so
    // per-instance costs are directly comparable.
    let mut python = Vec::with_capacity(n);
    for (i, table) in tables.iter().enumerate() {
        let t0 = Instant::now();
        wf.run_si(&db, table, &fmu_path, &pars, 1.0, &format!("f7_{i}"))
            .unwrap();
        python.push(t0.elapsed());
    }

    // ---------------- pgFMU− and pgFMU+. ------------------------------------
    let mut results = Vec::new();
    for mi in [false, true] {
        let bench = bench_session(model, profile);
        let s = &bench.session;
        s.set_mi_enabled(mi);
        let mut ids = vec![bench.instance.clone()];
        let mut sqls = Vec::new();
        // One prepared statement drives every per-instance copy: the plan
        // is parsed once, the instance ids are bound per execution.
        let copy = s.prepare("SELECT fmu_copy($1, $2)").unwrap();
        for (i, (_, data)) in datasets.iter().enumerate() {
            let table = format!("mi{i}");
            data.load_into(s.db(), &table).unwrap();
            if i > 0 {
                let id = format!("{}Instance{}", model.name(), i + 1);
                copy.query(pgfmu_sqlmini::params![bench.instance.as_str(), id.as_str()])
                    .unwrap();
                ids.push(id);
            }
            sqls.push(model.parest_sql(&table));
        }
        // Store + calibrate (one batch UDF call), then per-instance
        // simulate + validate via the simulation UDF.
        let reports = s.fmu_parest(&ids, &sqls, Some(&pars), None).unwrap();
        let mut durations = Vec::with_capacity(n);
        for (i, r) in reports.iter().enumerate() {
            let t0 = Instant::now();
            s.fmu_simulate(
                &ids[i],
                model.simulate_sql(&format!("mi{i}")).as_deref(),
                None,
                None,
            )
            .unwrap();
            let sim = t0.elapsed();
            durations.push(r.global_time + r.local_time + sim);
        }
        results.push(durations);
    }
    let pgfmu_plus = results.pop().unwrap();
    let pgfmu_minus = results.pop().unwrap();

    MiScaling {
        model: model.name(),
        instances: n,
        python,
        pgfmu_minus,
        pgfmu_plus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mi_optimization_speeds_up_the_fleet() {
        let r = run_model(ModelKind::Hp1, &Profile::test());
        assert_eq!(r.python.len(), 3);
        assert!(
            r.speedup() > 1.3,
            "pgFMU+ should beat pgFMU- even at 3 instances: {:.2}x",
            r.speedup()
        );
        // Python and pgFMU- are in the same ballpark (shared calibration
        // engine; file I/O noise aside).
        let py = MiScaling::cumulative(&r.python, 3).as_secs_f64();
        let minus = MiScaling::cumulative(&r.pgfmu_minus, 3).as_secs_f64();
        let ratio = py / minus;
        assert!(
            (0.5..2.0).contains(&ratio),
            "Python vs pgFMU- ratio out of band: {ratio:.2}"
        );
    }
}
