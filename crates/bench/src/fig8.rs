//! Figure 8 / usability study — a **seeded stochastic user model**.
//!
//! The original is a 30-participant human study (learning + development
//! time for the Figure-1 workflow with each stack). A human study cannot
//! be rerun in software; per DESIGN.md §1 this module substitutes a
//! simulation whose structure encodes the paper's causal claim:
//! development time scales with the number of tools, workflow steps and
//! lines of code of each stack. Code-line counts come from the *measured*
//! Table-1 artifacts of this repository; per-line and per-tool constants
//! are calibrated so the pgFMU cohort lands in the paper's reported band
//! (9.6–17.6 minutes learning, everyone done < 20 minutes, ≈11.74× faster
//! overall). The output is clearly labelled as simulated.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table1;

/// One simulated participant.
#[derive(Debug, Clone)]
pub struct Participant {
    /// Participant number (1-based).
    pub id: usize,
    /// Minutes to learn + complete the task with pgFMU.
    pub pgfmu_minutes: f64,
    /// Minutes to learn + complete the task with the Python stack.
    pub python_minutes: f64,
    /// Whether the participant finished the Python task within the
    /// 3-hour session limit (one participant in the paper did not).
    pub python_finished: bool,
}

/// Cohort summary.
#[derive(Debug, Clone)]
pub struct Usability {
    /// Every simulated participant.
    pub participants: Vec<Participant>,
    /// Mean pgFMU time (minutes).
    pub pgfmu_mean: f64,
    /// Mean Python time over finishers (minutes).
    pub python_mean: f64,
    /// Mean speed-up factor (paper: 11.74×).
    pub speedup: f64,
}

/// Session limit in minutes (the paper gave participants 3 hours).
pub const SESSION_LIMIT_MIN: f64 = 180.0;

/// Simulate the 30-participant study.
pub fn run(seed: u64, participants: usize) -> Usability {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x05AB_111D);
    let loc = table1::run();
    let pgfmu_loc: usize = loc.rows.iter().map(|r| r.pgfmu_lines).sum();
    let python_loc: usize = loc.rows.iter().map(|r| r.python_lines).sum();
    let python_tools = 6.0; // distinct packages in Table 1
    let pgfmu_tools = 1.0;

    let mut out = Vec::with_capacity(participants);
    for id in 1..=participants {
        // Skill multiplier: most students knew SQL well, Python less so
        // (pre-assessment Q4/Q5).
        let skill: f64 = rng.gen_range(0.82..1.12);
        // Learning: per-tool familiarization; writing: per-line effort.
        let pgfmu_learn = (9.0 + rng.gen_range(0.0..5.0)) * (pgfmu_tools * 0.22 + 0.78);
        let pgfmu_write = pgfmu_loc as f64 * rng.gen_range(0.4..0.75);
        let pgfmu_minutes = (pgfmu_learn + pgfmu_write) * skill;

        let python_learn = (20.0 + rng.gen_range(0.0..10.0)) * (python_tools * 0.22 + 0.78);
        let python_write = python_loc as f64 * rng.gen_range(0.95..1.2);
        let python_minutes = (python_learn + python_write) * skill;

        out.push(Participant {
            id,
            pgfmu_minutes,
            python_minutes,
            python_finished: python_minutes <= SESSION_LIMIT_MIN,
        });
    }
    let pgfmu_mean = out.iter().map(|p| p.pgfmu_minutes).sum::<f64>() / participants as f64;
    let finishers: Vec<&Participant> = out.iter().filter(|p| p.python_finished).collect();
    let python_mean =
        finishers.iter().map(|p| p.python_minutes).sum::<f64>() / finishers.len().max(1) as f64;
    let speedup = out
        .iter()
        .map(|p| p.python_minutes / p.pgfmu_minutes)
        .sum::<f64>()
        / participants as f64;
    Usability {
        participants: out,
        pgfmu_mean,
        python_mean,
        speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_matches_paper_bands() {
        let u = run(42, 30);
        assert_eq!(u.participants.len(), 30);
        // Everyone finishes the pgFMU task well within the session; the
        // paper reports all participants done in under 20 minutes.
        for p in &u.participants {
            assert!(
                p.pgfmu_minutes < 30.0,
                "participant {} took {:.1} min with pgFMU",
                p.id,
                p.pgfmu_minutes
            );
        }
        // Order-of-magnitude productivity gap (paper: 11.74x).
        assert!(
            u.speedup > 6.0 && u.speedup < 20.0,
            "speedup {:.2} out of band",
            u.speedup
        );
        // The Python cohort brushes the session limit for some users.
        assert!(u.python_mean > 60.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(7, 10);
        let b = run(7, 10);
        assert_eq!(a.participants.len(), b.participants.len());
        assert_eq!(a.speedup, b.speedup);
        assert_ne!(run(8, 10).speedup, a.speedup);
    }
}
