//! Grouped MADlib-style rollups over simulated output.
//!
//! The paper's §8 analytics combos aggregate `fmu_simulate` output — per
//! day, per variable, per instance. Until GROUP BY landed in `sqlmini`
//! those rollups had to stream every row to the client and fold in Rust;
//! this driver runs the per-day energy rollup of the Table-8 SI workload
//! as one grouped SQL statement (HAVING threshold bound as `$1`) and keeps
//! the old client-side fold around as the comparison baseline for the
//! `grouped_rollup` Criterion bench. Since the plan → execute pipeline
//! (zero-copy grouped scans, memoized aggregates) the grouped statement
//! beats the fold — see `BENCH_PR4.json`.

use std::collections::BTreeMap;

use pgfmu::params;

use crate::profiles::Profile;
use crate::setup::{bench_session, Bench, ModelKind};

/// One per-day energy bucket of the rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct DayEnergy {
    /// Day index since the Unix epoch (`floor(epoch / 86400)`).
    pub day: i64,
    /// Sum of hourly output-power samples (kW · 1 h = kWh).
    pub energy_kwh: f64,
    /// Samples contributing to the bucket.
    pub samples: i64,
}

/// Build an HP1 session and materialize one simulation pass into a `sim`
/// table in `fmu_simulate`'s long format.
pub fn simulated_session(profile: &Profile) -> Bench {
    let bench = bench_session(ModelKind::Hp1, profile);
    let s = &bench.session;
    s.execute(
        "CREATE TABLE sim (simulationtime timestamp, instanceid text, \
         varname text, value float)",
    )
    .expect("create sim");
    s.query(
        "INSERT INTO sim SELECT * FROM fmu_simulate($1, $2)",
        params![
            bench.instance.as_str(),
            format!("SELECT ts, u FROM {}", bench.table)
        ],
    )
    .expect("simulate into sim");
    bench
}

/// The grouped rollup: aggregate the simulated output power per day in one
/// statement, `HAVING` pruning days below `min_kwh` (bound as `$1`).
pub fn per_day_energy(bench: &Bench, min_kwh: f64) -> Vec<DayEnergy> {
    let rows: Vec<(i64, f64, i64)> = bench
        .session
        .query_as(
            "SELECT floor(extract_epoch(simulationtime) / 86400.0)::int AS day, \
                    sum(value) AS energy_kwh, count(*) AS samples \
             FROM sim WHERE varname = 'y' \
             GROUP BY floor(extract_epoch(simulationtime) / 86400.0)::int \
             HAVING sum(value) > $1 ORDER BY day",
            params![min_kwh],
        )
        .expect("per-day rollup");
    rows.into_iter()
        .map(|(day, energy_kwh, samples)| DayEnergy {
            day,
            energy_kwh,
            samples,
        })
        .collect()
}

/// The same rollup the pre-GROUP-BY way: stream every output row to the
/// client and fold per day in Rust. Kept as the bench baseline.
pub fn per_day_energy_client_side(bench: &Bench, min_kwh: f64) -> Vec<DayEnergy> {
    let rows: Vec<(i64, f64)> = bench
        .session
        .query_as(
            "SELECT extract_epoch(simulationtime), value FROM sim WHERE varname = 'y'",
            params![],
        )
        .expect("client-side scan");
    let mut days: BTreeMap<i64, (f64, i64)> = BTreeMap::new();
    for (epoch, v) in rows {
        let slot = days.entry(epoch.div_euclid(86_400)).or_insert((0.0, 0));
        slot.0 += v;
        slot.1 += 1;
    }
    days.into_iter()
        .filter(|(_, (sum, _))| *sum > min_kwh)
        .map(|(day, (energy_kwh, samples))| DayEnergy {
            day,
            energy_kwh,
            samples,
        })
        .collect()
}

/// Per-variable means over the whole simulation — the §8.2 combo shape
/// (`GROUP BY varname`), previously only expressible one variable at a
/// time.
pub fn per_variable_means(bench: &Bench) -> Vec<(String, f64, i64)> {
    bench
        .session
        .query_as(
            "SELECT varname, avg(value), count(*) FROM sim \
             GROUP BY varname ORDER BY varname",
            params![],
        )
        .expect("per-variable rollup")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_rollup_matches_client_side_fold() {
        let bench = simulated_session(&Profile::test());
        let sql = per_day_energy(&bench, 0.0);
        let client = per_day_energy_client_side(&bench, 0.0);
        assert_eq!(sql.len(), client.len());
        assert!(!sql.is_empty(), "simulation produced no full days");
        for (a, b) in sql.iter().zip(&client) {
            assert_eq!(a.day, b.day);
            assert_eq!(a.samples, b.samples);
            assert!(
                (a.energy_kwh - b.energy_kwh).abs() < 1e-9 * (1.0 + b.energy_kwh.abs()),
                "day {}: {} vs {}",
                a.day,
                a.energy_kwh,
                b.energy_kwh
            );
        }
    }

    #[test]
    fn having_threshold_prunes_days() {
        let bench = simulated_session(&Profile::test());
        let all = per_day_energy(&bench, f64::MIN);
        let none = per_day_energy(&bench, f64::MAX);
        assert!(!all.is_empty());
        assert!(none.is_empty());
        // A threshold at the median keeps a strict subset.
        let mut sums: Vec<f64> = all.iter().map(|d| d.energy_kwh).collect();
        sums.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sums[sums.len() / 2];
        let some = per_day_energy(&bench, median);
        assert!(some.len() < all.len());
    }

    #[test]
    fn per_variable_rollup_covers_the_model_outputs() {
        let bench = simulated_session(&Profile::test());
        let vars = per_variable_means(&bench);
        let names: Vec<&str> = vars.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(names.contains(&"x") && names.contains(&"y"), "{names:?}");
        for (_, _, n) in &vars {
            assert!(*n > 0);
        }
    }
}
