//! # pgfmu-bench — the experiment harness regenerating every table and
//! figure of the pgFMU paper's evaluation (§8).
//!
//! Each module implements one experiment and returns structured results;
//! the `repro` binary prints them in the paper's shape, and the Criterion
//! benches wrap the same functions. Workload scale is controlled by
//! [`profiles::Profile`]: `quick` keeps the full relative structure at
//! laptop-friendly sizes, `full` runs the paper's 100-instance scale.

pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod grouped;
pub mod madlib;
pub mod profiles;
pub mod report;
pub mod setup;
pub mod table1;
pub mod table2;
pub mod table7;
pub mod table8;

pub use profiles::Profile;
