//! The §8.2 combined experiments: pgFMU + MADlib-like analytics.
//!
//! Experiment 1: ARIMA-forecast occupancy feeding `fmu_simulate` improves
//! the classroom indoor-temperature forecast (paper: up to 21.1%).
//! Experiment 2: adding pgFMU-simulated indoor temperature to a logistic
//! regression classifying the damper position improves accuracy
//! (paper: +5.9%).

use pgfmu::{params, PgFmu, Value};
use pgfmu_datagen::classroom::classroom_dataset;

/// Results of combined experiment 1.
#[derive(Debug, Clone, Copy)]
pub struct ArimaCombo {
    /// RMSE forecasting without occupancy information.
    pub rmse_without_occ: f64,
    /// RMSE with ARIMA-predicted occupancy.
    pub rmse_with_arima: f64,
}

impl ArimaCombo {
    /// Relative improvement in percent.
    pub fn improvement_pct(&self) -> f64 {
        (self.rmse_without_occ - self.rmse_with_arima) / self.rmse_without_occ * 100.0
    }
}

/// Results of combined experiment 2.
#[derive(Debug, Clone, Copy)]
pub struct LogisticCombo {
    /// Accuracy with occupancy + solar features only.
    pub accuracy_base: f64,
    /// Accuracy with the pgFMU-simulated temperature added.
    pub accuracy_with_temp: f64,
}

impl LogisticCombo {
    /// Accuracy gain in percentage points.
    pub fn gain_points(&self) -> f64 {
        (self.accuracy_with_temp - self.accuracy_base) * 100.0
    }
}

fn session_with_classroom(seed: u64, samples: usize) -> (PgFmu, usize, i64, usize) {
    let s = PgFmu::new().expect("session");
    let data = classroom_dataset(seed).slice(0, samples);
    data.load_into(s.db(), "classroom").unwrap();
    let split = (data.len() as f64 * 0.8) as usize;
    let split_epoch = data.timestamps[split];
    s.query("SELECT fmu_create($1, $2)", params!["Classroom", "Room1"])
        .unwrap();
    let len = data.len();
    (s, split, split_epoch, len)
}

/// Run combined experiment 1 (see `examples/classroom_occupancy.rs` for
/// the narrated version).
pub fn run_arima(seed: u64, samples: usize) -> ArimaCombo {
    let (s, split, split_epoch, len) = session_with_classroom(seed, samples);
    let split_ts = Value::Timestamp(split_epoch);
    s.execute("CREATE TABLE occupants (time timestamp, value float)")
        .unwrap();
    s.query(
        "INSERT INTO occupants SELECT ts, occ FROM classroom WHERE ts < $1",
        params![split_ts.clone()],
    )
    .unwrap();
    s.execute("SELECT arima_train('occupants', 'occ_model', 'time', 'value', '1,0,0,1,336')")
        .unwrap();
    let horizon = (len - split) as i64;
    s.execute("CREATE TABLE occ_forecast (ts timestamp, occ float)")
        .unwrap();
    s.query(
        "INSERT INTO occ_forecast SELECT time, greatest(0.0, value) \
         FROM arima_forecast($1, $2)",
        params!["occ_model", horizon],
    )
    .unwrap();

    // One prepared warm-up statement serves every simulation pass; the
    // training-window input_sql is bound as a plain text parameter, so the
    // nested quotes no longer need doubling.
    let warm_up = s
        .prepare("SELECT count(*) FROM fmu_simulate($1, $2)")
        .unwrap();
    let warm_up_sql = format!(
        "SELECT * FROM classroom WHERE ts <= timestamp '{}'",
        pgfmu_sqlmini::format_timestamp(split_epoch)
    );

    let rmse_for = |label: &str, occ_expr: &str| -> f64 {
        // Warm-up over the training window leaves a clean state estimate.
        s.query(
            "SELECT fmu_set_initial($1, $2, $3)",
            params!["Room1", "t", 21.0],
        )
        .unwrap();
        warm_up
            .query(params!["Room1", warm_up_sql.as_str()])
            .unwrap();
        s.execute(&format!("DROP TABLE IF EXISTS inp_{label}"))
            .unwrap();
        s.execute(&format!(
            "CREATE TABLE inp_{label} (ts timestamp, solrad float, tout float, \
             occ float, dpos float, vpos float)"
        ))
        .unwrap();
        s.query(
            &format!(
                "INSERT INTO inp_{label} SELECT ts, solrad, tout, {occ_expr}, dpos, vpos \
                 FROM classroom WHERE ts >= $1"
            ),
            params![split_ts.clone()],
        )
        .unwrap();
        s.execute(&format!("DROP TABLE IF EXISTS sim_{label}"))
            .unwrap();
        s.execute(&format!(
            "CREATE TABLE sim_{label} (ts timestamp, i text, v text, value float)"
        ))
        .unwrap();
        s.query(
            &format!(
                "INSERT INTO sim_{label} SELECT * FROM fmu_simulate($1, $2) \
                 WHERE varname = 't'"
            ),
            params!["Room1", format!("SELECT * FROM inp_{label}")],
        )
        .unwrap();
        s.execute(&format!(
            "SELECT sqrt(avg((x.value - c.t) * (x.value - c.t))) \
             FROM sim_{label} x, classroom c WHERE x.ts = c.ts"
        ))
        .unwrap()
        .scalar()
        .unwrap()
        .as_f64()
        .unwrap()
    };

    let rmse_without_occ = rmse_for("no_occ", "0.0");
    // The forecast replaces occupancy for the validation window.
    s.execute(
        "CREATE TABLE joined (ts timestamp, solrad float, tout float, \
         occ float, dpos float, vpos float)",
    )
    .unwrap();
    s.execute(
        "INSERT INTO joined SELECT c.ts, c.solrad, c.tout, f.occ, c.dpos, c.vpos \
         FROM classroom c, occ_forecast f WHERE c.ts = f.ts",
    )
    .unwrap();
    let rmse_with_arima = {
        s.query(
            "SELECT fmu_set_initial($1, $2, $3)",
            params!["Room1", "t", 21.0],
        )
        .unwrap();
        warm_up
            .query(params!["Room1", warm_up_sql.as_str()])
            .unwrap();
        s.execute("CREATE TABLE sim_arima (ts timestamp, i text, v text, value float)")
            .unwrap();
        s.query(
            "INSERT INTO sim_arima SELECT * FROM fmu_simulate($1, $2) \
             WHERE varname = 't'",
            params!["Room1", "SELECT * FROM joined"],
        )
        .unwrap();
        s.execute(
            "SELECT sqrt(avg((x.value - c.t) * (x.value - c.t))) \
             FROM sim_arima x, classroom c WHERE x.ts = c.ts",
        )
        .unwrap()
        .scalar()
        .unwrap()
        .as_f64()
        .unwrap()
    };
    ArimaCombo {
        rmse_without_occ,
        rmse_with_arima,
    }
}

/// Run combined experiment 2.
pub fn run_logistic(seed: u64, samples: usize) -> LogisticCombo {
    let (s, _split, _split_epoch, len) = session_with_classroom(seed, samples);
    // pgFMU-simulated temperature over the full window (true inputs).
    let t0 = classroom_dataset(seed).slice(0, samples);
    let start = t0.column("t").unwrap()[0];
    s.query(
        "SELECT fmu_set_initial($1, $2, $3)",
        params!["Room1", "t", start],
    )
    .unwrap();
    s.execute("CREATE TABLE sim_full (ts timestamp, i text, v text, value float)")
        .unwrap();
    s.query(
        "INSERT INTO sim_full SELECT * FROM fmu_simulate($1, $2) \
         WHERE varname = 't'",
        params!["Room1", "SELECT * FROM classroom"],
    )
    .unwrap();
    s.execute("CREATE TABLE damper (label float, occ float, solrad float, t float)")
        .unwrap();
    s.execute(
        "INSERT INTO damper \
         SELECT greatest(0.0, least(1.0, c.dpos / 100.0)), c.occ, c.solrad, x.value \
         FROM classroom c, sim_full x WHERE c.ts = x.ts",
    )
    .unwrap();
    s.execute("SELECT logregr_train('damper', 'm_base', 'label', 'occ,solrad')")
        .unwrap();
    s.execute("SELECT logregr_train('damper', 'm_temp', 'label', 'occ,solrad,t')")
        .unwrap();
    let acc = |model: &str, cols: &str| -> f64 {
        // The model name binds; the feature columns are identifiers and
        // stay interpolated.
        let n: Vec<i64> = s
            .query_as(
                &format!(
                    "SELECT count(*) FROM damper WHERE \
                     (logregr_prob($1, {cols}) >= 0.5) = (label >= 0.5)"
                ),
                params![model],
            )
            .unwrap();
        n[0] as f64 / len as f64
    };
    LogisticCombo {
        accuracy_base: acc("m_base", "occ, solrad"),
        accuracy_with_temp: acc("m_temp", "occ, solrad, t"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arima_occupancy_improves_forecast() {
        let r = run_arima(11, 672);
        assert!(
            r.improvement_pct() > 10.0,
            "improvement {:.1}% below the paper's band (up to 21.1%): \
             {:.3} vs {:.3}",
            r.improvement_pct(),
            r.rmse_without_occ,
            r.rmse_with_arima
        );
    }

    #[test]
    fn simulated_temperature_feature_helps_classifier() {
        let r = run_logistic(11, 672);
        assert!(
            r.gain_points() > 2.0,
            "accuracy gain {:.1} points below band (paper: +5.9)",
            r.gain_points()
        );
    }
}
