//! Workload scaling profiles.

use pgfmu::EstimationConfig;

/// How big to make each experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profile {
    /// Number of model instances in the MI scenario (paper: 100).
    pub mi_instances: usize,
    /// Hourly samples of the HP datasets used for calibration+validation
    /// (paper: 672 = Feb 1–28).
    pub hp_samples: usize,
    /// Half-hourly samples of the classroom dataset (paper: 672).
    pub classroom_samples: usize,
    /// Estimation configuration.
    pub config: EstimationConfig,
    /// Master seed.
    pub seed: u64,
}

impl Profile {
    /// Laptop-friendly profile preserving the paper's relative structure
    /// (who wins, by what factor) at a fraction of the wall-clock.
    pub fn quick() -> Self {
        Profile {
            mi_instances: 10,
            hp_samples: 168,
            classroom_samples: 336,
            config: EstimationConfig {
                population: 24,
                generations: 18,
                ..EstimationConfig::default()
            },
            seed: 42,
        }
    }

    /// The paper's scale (100 instances, full February / two-week data).
    pub fn full() -> Self {
        Profile {
            mi_instances: 100,
            hp_samples: 672,
            classroom_samples: 672,
            config: EstimationConfig::default(),
            seed: 42,
        }
    }

    /// A tiny profile for unit tests of the harness itself.
    pub fn test() -> Self {
        Profile {
            mi_instances: 3,
            hp_samples: 72,
            classroom_samples: 96,
            config: EstimationConfig::fast(),
            seed: 42,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_scale_monotonically() {
        let (t, q, f) = (Profile::test(), Profile::quick(), Profile::full());
        assert!(t.mi_instances < q.mi_instances && q.mi_instances < f.mi_instances);
        assert!(t.hp_samples <= q.hp_samples && q.hp_samples <= f.hp_samples);
        assert_eq!(f.mi_instances, 100, "full profile must match the paper");
    }
}
