//! Tiny fixed-width table renderer for the repro binary's output.

/// Render rows of cells as an aligned ASCII table with a header rule.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!(
            "{:<w$}{}",
            h,
            if i + 1 < headers.len() { "  " } else { "\n" },
            w = widths[i]
        ));
    }
    for (i, w) in widths.iter().enumerate() {
        out.push_str(&"-".repeat(*w));
        out.push_str(if i + 1 < widths.len() { "--" } else { "\n" });
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!(
                "{:<w$}{}",
                cell,
                if i + 1 < row.len() { "  " } else { "\n" },
                w = widths[i]
            ));
        }
    }
    out
}

/// Format seconds in an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let s = render(
            &["model", "rmse"],
            &[
                vec!["HP0".into(), "0.77".into()],
                vec!["Classroom".into(), "1.6442".into()],
            ],
        );
        assert!(s.contains("model      rmse"));
        assert!(s.contains("HP0        0.77"));
    }

    #[test]
    fn time_formats() {
        assert_eq!(fmt_secs(0.0000005), "0.5us");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(1.5), "1.50s");
        assert_eq!(fmt_secs(300.0), "5.0min");
    }
}
