//! Shared experiment scaffolding: models, datasets, sessions.

use pgfmu::{PgFmu, Strategy};
use pgfmu_datagen::{classroom::classroom_dataset, hp::hp0_dataset, hp::hp1_dataset, Dataset};

use crate::profiles::Profile;

/// The three evaluation models of the paper (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Zero-input heat pump.
    Hp0,
    /// Running-example heat pump.
    Hp1,
    /// SDU classroom thermal network.
    Classroom,
}

/// All three models, in the paper's order.
pub const ALL_MODELS: [ModelKind; 3] = [ModelKind::Hp0, ModelKind::Hp1, ModelKind::Classroom];

impl ModelKind {
    /// Catalogue model name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Hp0 => "HP0",
            ModelKind::Hp1 => "HP1",
            ModelKind::Classroom => "Classroom",
        }
    }

    /// Estimated parameters (paper Table 5).
    pub fn pars(self) -> Vec<String> {
        match self {
            ModelKind::Hp0 | ModelKind::Hp1 => vec!["Cp".into(), "R".into()],
            ModelKind::Classroom => vec![
                "shgc".into(),
                "tmass".into(),
                "RExt".into(),
                "occheff".into(),
            ],
        }
    }

    /// Ground-truth parameter values, for recovery reporting.
    pub fn truth(self) -> Vec<(String, f64)> {
        match self {
            ModelKind::Hp0 | ModelKind::Hp1 => vec![("Cp".into(), 1.5), ("R".into(), 1.5)],
            ModelKind::Classroom => vec![
                ("shgc".into(), 3.246),
                ("tmass".into(), 50.0),
                ("RExt".into(), 4.0),
                ("occheff".into(), 1.478),
            ],
        }
    }

    /// The measurement dataset, sized per profile.
    pub fn dataset(self, profile: &Profile) -> Dataset {
        match self {
            ModelKind::Hp0 => hp0_dataset(profile.seed).slice(0, profile.hp_samples),
            ModelKind::Hp1 => hp1_dataset(profile.seed).slice(0, profile.hp_samples),
            ModelKind::Classroom => {
                classroom_dataset(profile.seed).slice(0, profile.classroom_samples)
            }
        }
    }

    /// Calibration input SQL over a measurement table: the temperature
    /// target plus the model inputs (the paper calibrates on indoor
    /// temperature; the constant HP output `y` is excluded).
    pub fn parest_sql(self, table: &str) -> String {
        match self {
            ModelKind::Hp0 => format!("SELECT ts, x FROM {table}"),
            ModelKind::Hp1 => format!("SELECT ts, x, u FROM {table}"),
            ModelKind::Classroom => {
                format!("SELECT ts, t, solrad, tout, occ, dpos, vpos FROM {table}")
            }
        }
    }

    /// Simulation input SQL (inputs only).
    pub fn simulate_sql(self, table: &str) -> Option<String> {
        match self {
            ModelKind::Hp0 => None,
            ModelKind::Hp1 => Some(format!("SELECT ts, u FROM {table}")),
            ModelKind::Classroom => Some(format!(
                "SELECT ts, solrad, tout, occ, dpos, vpos FROM {table}"
            )),
        }
    }
}

/// A ready pgFMU session with one instance of the model and its
/// measurement table loaded.
pub struct Bench {
    /// The session.
    pub session: PgFmu,
    /// Instance identifier.
    pub instance: String,
    /// Measurement table name.
    pub table: String,
    /// The dataset behind the table.
    pub dataset: Dataset,
    /// The model under test.
    pub model: ModelKind,
}

/// Build a session for a model under a profile.
pub fn bench_session(model: ModelKind, profile: &Profile) -> Bench {
    let session = PgFmu::new().expect("session");
    session.set_estimation_config(profile.config);
    let dataset = model.dataset(profile);
    dataset
        .load_into(session.db(), "measurements")
        .expect("load measurements");
    let instance = format!("{}Instance1", model.name());
    session
        .query(
            "SELECT fmu_create($1, $2)",
            pgfmu::params![model.name(), instance.as_str()],
        )
        .expect("fmu_create");
    Bench {
        session,
        instance,
        table: "measurements".into(),
        dataset,
        model,
    }
}

/// Short human label for a strategy.
pub fn strategy_label(s: Strategy) -> &'static str {
    match s {
        Strategy::GlobalLocal => "G+LaG",
        Strategy::LocalOnly => "LO",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_build_for_all_models() {
        let profile = Profile::test();
        for model in ALL_MODELS {
            let b = bench_session(model, &profile);
            let q = b
                .session
                .execute("SELECT count(*) FROM measurements")
                .unwrap();
            assert!(q.rows[0][0].as_i64().unwrap() > 10);
            // parest SQL must reference only existing columns.
            b.session.execute(&model.parest_sql(&b.table)).unwrap();
            if let Some(sql) = model.simulate_sql(&b.table) {
                b.session.execute(&sql).unwrap();
            }
        }
    }
}
