//! Table 1 — workflow code-line comparison.
//!
//! The paper counts the user-written lines needed for each Figure-1 step:
//! 88 lines across 6 Python packages vs. 4 pgFMU SQL statements (~22×).
//! Here the counts are *measured* on this repository's two real surfaces:
//! the canonical traditional-stack script (the code a user of the
//! substrate crates writes by hand, transcribed per step below) and the
//! pgFMU SQL workflow of `examples/heatpump_calibration.rs`.

/// The canonical traditional-stack workflow, step by step. This is real,
/// compilable user code against the substrate crates (the Rust analogue
/// of the paper's PyFMI/ModestPy/psycopg2 script); it is embedded as text
/// so the line counting is reproducible and reviewable.
pub const TRADITIONAL_STEPS: [(&str, &str); 7] = [
    (
        "Load/build an FMU model",
        r#"let fmu_path = work_dir.join("hp1.fmu");
let fmu = Arc::new(archive::read_from_path(&fmu_path)?);
let mut instance = fmu.instantiate();
let pars = vec!["Cp".to_string(), "R".to_string()];"#,
    ),
    (
        "Read historical measurements and control inputs",
        r#"let rows = db.execute("SELECT * FROM measurements")?;
let mut timestamps = Vec::new();
for row in &rows.rows {
    timestamps.push(match &row[0] { Value::Timestamp(t) => *t, _ => panic!() });
}
let mut columns = Vec::new();
for (i, name) in rows.columns.iter().enumerate().skip(1) {
    let col: Vec<f64> = rows.rows.iter().map(|r| r[i].as_f64().unwrap()).collect();
    columns.push((name.clone(), col));
}
let dataset = Dataset::new("ts", timestamps, columns);
write_csv(&dataset, &work_dir.join("meas.csv"))?;
let dataset = read_csv(&work_dir.join("meas.csv"))?;"#,
    ),
    (
        "Recalibrate the model",
        r#"let n_train = (dataset.len() as f64 * 0.75) as usize;
let train = dataset.slice(0, n_train);
let train_data = MeasurementData::new(train.times_hours(), train.columns.clone())?;
let objective = SimulationObjective::new(
    Arc::clone(&fmu),
    instance.param_values(),
    instance.start_state(),
    &pars,
    &train_data,
)?;
let config = EstimationConfig::default();
let outcome = estimate_si(&objective, &config);
for (name, value) in pars.iter().zip(&outcome.params) {
    instance.set(name, *value)?;
}
let estimation_rmse = outcome.rmse;"#,
    ),
    (
        "Validate & update the FMU model",
        r#"let validation = dataset.slice(n_train - 1, dataset.len());
let vdata = MeasurementData::new(validation.times_hours(), validation.columns.clone())?;
let vobjective = SimulationObjective::new(
    Arc::clone(&fmu), instance.param_values(), instance.start_state(), &pars, &vdata)?;
let validation_rmse = vobjective.rmse_at(&outcome.params);
assert!(validation_rmse < 2.0 * estimation_rmse);
println!("validated: {validation_rmse}");"#,
    ),
    (
        "Simulate the recalibrated model to predict temperatures",
        r#"let times = dataset.times_hours();
let mut series = Vec::new();
for input in fmu.input_names() {
    let col = dataset.column(input).expect("input column");
    let var = fmu.description.variable(input)?;
    let interp = match var.variability {
        Variability::Discrete => Interpolation::Hold,
        _ => Interpolation::Linear,
    };
    series.push(InputSeries::new(input.clone(), times.clone(), col.to_vec(), interp)?);
}
let names: Vec<&str> = fmu.input_names().iter().map(|s| s.as_str()).collect();
let inputs = InputSet::bind(&names, series)?;
for (i, sname) in fmu.state_names().iter().enumerate() {
    if let Some(col) = dataset.column(sname) { instance.set(sname, col[0])?; }
    let _ = i;
}
let step = times[1] - times[0];
let sim = instance.simulate(&inputs, &SimulationOptions {
    start: Some(times[0]),
    stop: Some(*times.last().unwrap()),
    output_step: Some(step),
    ..Default::default()
})?;
let predictions: Vec<(String, Vec<f64>)> = sim.names().iter()
    .map(|n| (n.clone(), sim.series(n).unwrap().to_vec())).collect();"#,
    ),
    (
        "Export predicted values to a DB",
        r#"let pred = Dataset::new("ts", dataset.timestamps.clone(), predictions);
write_csv(&pred, &work_dir.join("pred.csv"))?;
let imported = read_csv(&work_dir.join("pred.csv"))?;
imported.load_into(&db, "predictions")?;"#,
    ),
    (
        "Perform further analysis",
        r#"let stats = db.execute("SELECT avg(value) FROM predictions_long WHERE varname = 'x'")?;
let mut long_rows = Vec::new();
for i in 0..pred.len() {
    for (name, col) in &pred.columns {
        long_rows.push(vec![
            Value::Timestamp(pred.timestamps[i]),
            Value::Text(name.clone()),
            Value::Float(col[i]),
        ]);
    }
}
db.execute("CREATE TABLE predictions_long (ts timestamp, varname text, value float)")?;
db.insert_rows("predictions_long", long_rows)?;
let coldest = db.execute(
    "SELECT min(value) FROM predictions_long WHERE varname = 'x'")?;
let warmest = db.execute(
    "SELECT max(value) FROM predictions_long WHERE varname = 'x'")?;
println!("{stats:?} {coldest:?} {warmest:?}");
let scenario: Vec<f64> = vec![1.0; pred.len()];
let what_if = simulate_scenario(&fmu, &instance, &scenario)?;
println!("{what_if:?}");"#,
    ),
];

/// The pgFMU workflow for the same task (the four SQL statements of
/// `examples/heatpump_calibration.rs`).
pub const PGFMU_STEPS: [(&str, &str); 4] = [
    (
        "Load/build an FMU model",
        "SELECT fmu_create('HP1', 'HP1Instance1');",
    ),
    (
        "Recalibrate the model",
        "SELECT fmu_parest('{HP1Instance1}', '{SELECT ts, x, u FROM measurements}', '{Cp, R}');",
    ),
    (
        "Simulate the recalibr. model to predict temp.",
        "SELECT * FROM fmu_simulate('HP1Instance1', 'SELECT ts, u FROM measurements');",
    ),
    (
        "Perform further analysis",
        "SELECT avg(value) FROM fmu_simulate('HP1Instance1', 'SELECT * FROM scenario') WHERE varname = 'x';",
    ),
];

/// One Table-1 row.
#[derive(Debug, Clone)]
pub struct LocRow {
    /// Workflow operation.
    pub operation: &'static str,
    /// Traditional-stack lines for this step.
    pub python_lines: usize,
    /// pgFMU lines for this step (0 = step not needed).
    pub pgfmu_lines: usize,
}

/// The measured comparison.
#[derive(Debug, Clone)]
pub struct LocComparison {
    /// Per-operation rows.
    pub rows: Vec<LocRow>,
}

impl LocComparison {
    /// Total traditional lines.
    pub fn python_total(&self) -> usize {
        self.rows.iter().map(|r| r.python_lines).sum()
    }

    /// Total pgFMU lines.
    pub fn pgfmu_total(&self) -> usize {
        self.rows.iter().map(|r| r.pgfmu_lines).sum()
    }

    /// Reduction factor (paper: ~22×).
    pub fn reduction(&self) -> f64 {
        self.python_total() as f64 / self.pgfmu_total().max(1) as f64
    }
}

fn count_lines(code: &str) -> usize {
    code.lines().filter(|l| !l.trim().is_empty()).count()
}

/// Count the embedded listings.
pub fn run() -> LocComparison {
    let rows = TRADITIONAL_STEPS
        .iter()
        .map(|(op, code)| {
            let pgfmu = PGFMU_STEPS
                .iter()
                .find(|(p_op, _)| p_op.split_whitespace().next() == op.split_whitespace().next())
                .map(|(_, sql)| count_lines(sql))
                .unwrap_or(0);
            LocRow {
                operation: op,
                python_lines: count_lines(code),
                pgfmu_lines: pgfmu,
            }
        })
        .collect();
    LocComparison { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_the_papers_shape() {
        let c = run();
        assert_eq!(c.rows.len(), 7);
        let py = c.python_total();
        let pg = c.pgfmu_total();
        assert!(
            (70..=110).contains(&py),
            "traditional total {py} out of the paper's ballpark (88)"
        );
        assert_eq!(pg, 4, "pgFMU needs exactly 4 statements");
        assert!(
            c.reduction() > 15.0,
            "reduction {:.1}x below the paper's ~22x order",
            c.reduction()
        );
    }

    #[test]
    fn steps_without_pgfmu_equivalent_count_zero() {
        let c = run();
        let read = c
            .rows
            .iter()
            .find(|r| r.operation.starts_with("Read"))
            .unwrap();
        assert_eq!(read.pgfmu_lines, 0, "reading is implicit in pgFMU");
        let export = c
            .rows
            .iter()
            .find(|r| r.operation.starts_with("Export"))
            .unwrap();
        assert_eq!(export.pgfmu_lines, 0, "export is implicit in pgFMU");
    }
}
