//! Table 2 — feature comparison of in-DBMS analytics tools. For MADlib and
//! MS SQL Server ML Services the cells restate the paper; for this
//! reproduction every claimed capability is *probed* against a live
//! session rather than asserted.

use pgfmu::PgFmu;

/// One feature row of the comparison matrix.
#[derive(Debug, Clone)]
pub struct FeatureRow {
    /// Feature description.
    pub feature: &'static str,
    /// MADlib cell (from the paper).
    pub madlib: &'static str,
    /// MS SQL Server ML Services cell (from the paper).
    pub mssql: &'static str,
    /// This reproduction's cell, probed live.
    pub pgfmu: String,
}

fn probe(ok: bool) -> String {
    if ok {
        "yes".into()
    } else {
        "no".into()
    }
}

/// Build the matrix against a live session.
pub fn run() -> Vec<FeatureRow> {
    let s = PgFmu::new().expect("session");
    let db = s.db();
    let all_fmu = [
        "fmu_create",
        "fmu_copy",
        "fmu_variables",
        "fmu_get",
        "fmu_set_initial",
        "fmu_set_minimum",
        "fmu_set_maximum",
        "fmu_reset",
        "fmu_delete_instance",
        "fmu_delete_model",
    ]
    .iter()
    .all(|f| db.has_function(f));

    vec![
        FeatureRow {
            feature: "Data query language",
            madlib: "SQL",
            mssql: "SQL",
            pgfmu: probe(db.execute("SELECT 1 + 1").is_ok()).replace("yes", "SQL"),
        },
        FeatureRow {
            feature: "Model integration approach",
            madlib: "UDFs",
            mssql: "Stored procedures",
            pgfmu: probe(db.has_function("fmu_create")).replace("yes", "UDFs"),
        },
        FeatureRow {
            feature: "In-DBMS machine learning",
            madlib: "yes",
            mssql: "yes",
            // The paper marks pgFMU "no"; this reproduction bundles the
            // MADlib-like analytics crate, so the probe says yes — noted
            // in EXPERIMENTS.md as an intentional extension.
            pgfmu: probe(db.has_function("arima_train") && db.has_function("logregr_train")),
        },
        FeatureRow {
            feature: "In-DBMS physical models",
            madlib: "no",
            mssql: "no",
            pgfmu: probe(all_fmu),
        },
        FeatureRow {
            feature: "- FMU management",
            madlib: "no",
            mssql: "no",
            pgfmu: probe(all_fmu),
        },
        FeatureRow {
            feature: "- FMU simulation",
            madlib: "no",
            mssql: "no",
            pgfmu: probe(db.has_function("fmu_simulate")),
        },
        FeatureRow {
            feature: "- FMU parameter estimation",
            madlib: "no",
            mssql: "no",
            pgfmu: probe(db.has_function("fmu_parest")),
        },
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_probed_capability_is_present() {
        let rows = super::run();
        for r in &rows {
            assert_ne!(r.pgfmu, "no", "capability missing: {}", r.feature);
        }
    }
}
