//! Table 7 — SI scenario model-calibration comparison: estimated parameter
//! values and RMSE for HP0/HP1/Classroom under Python, pgFMU− and pgFMU+.

use pgfmu_fmi::archive;

use crate::profiles::Profile;
use crate::setup::{bench_session, ModelKind, ALL_MODELS};

/// One Table-7 row.
#[derive(Debug, Clone)]
pub struct CalibrationRow {
    /// Model under test.
    pub model: &'static str,
    /// Configuration label (`Python`, `pgFMU-`, `pgFMU+`).
    pub config: &'static str,
    /// Estimated `(parameter, value)` pairs.
    pub params: Vec<(String, f64)>,
    /// Estimation RMSE.
    pub rmse: f64,
}

/// Run the calibration comparison for one model under all three configs.
pub fn calibrate_model(model: ModelKind, profile: &Profile) -> Vec<CalibrationRow> {
    let mut rows = Vec::new();
    let pars = model.pars();

    // --- Python (traditional stack). ------------------------------------
    let db = pgfmu_sqlmini::Database::new();
    model
        .dataset(profile)
        .load_into(&db, "measurements")
        .unwrap();
    let wf = pgfmu_baseline::TraditionalWorkflow::in_temp_dir(profile.config).unwrap();
    let fmu_path = wf.work_dir().join(format!("{}.fmu", model.name()));
    archive::write_to_path(
        &pgfmu_fmi::builtin::by_name(model.name()).unwrap(),
        &fmu_path,
    )
    .unwrap();
    // Match the parest column view by projecting the same columns into a
    // dedicated table (the traditional user would export exactly these).
    let cols = model
        .parest_sql("measurements")
        .replace("SELECT ", "")
        .replace(" FROM measurements", "");
    let decls: Vec<String> = cols
        .split(", ")
        .map(|c| {
            if c == "ts" {
                "ts timestamp".into()
            } else {
                format!("{c} float")
            }
        })
        .collect();
    db.execute(&format!("CREATE TABLE cal ({})", decls.join(", ")))
        .unwrap();
    db.execute(&format!(
        "INSERT INTO cal {}",
        model.parest_sql("measurements")
    ))
    .unwrap();
    let out = wf.run_si(&db, "cal", &fmu_path, &pars, 0.75, "t7").unwrap();
    rows.push(CalibrationRow {
        model: model.name(),
        config: "Python",
        params: pars.iter().cloned().zip(out.params.clone()).collect(),
        rmse: out.estimation_rmse,
    });

    // --- pgFMU− and pgFMU+ (identical in the SI scenario). ---------------
    for (label, mi) in [("pgFMU-", false), ("pgFMU+", true)] {
        let bench = bench_session(model, profile);
        bench.session.set_mi_enabled(mi);
        let n_train = (bench.dataset.len() as f64 * 0.75) as usize;
        let cutoff = pgfmu_sqlmini::format_timestamp(bench.dataset.timestamps[n_train]);
        let sql = format!(
            "{} WHERE ts < timestamp '{cutoff}'",
            model.parest_sql(&bench.table)
        );
        let reports = bench
            .session
            .fmu_parest(
                std::slice::from_ref(&bench.instance),
                &[sql],
                Some(&pars),
                None,
            )
            .unwrap();
        rows.push(CalibrationRow {
            model: model.name(),
            config: label,
            params: pars
                .iter()
                .cloned()
                .zip(reports[0].params.clone())
                .collect(),
            rmse: reports[0].rmse,
        });
    }
    rows
}

/// All Table-7 rows.
pub fn run(profile: &Profile) -> Vec<CalibrationRow> {
    ALL_MODELS
        .iter()
        .flat_map(|m| calibrate_model(*m, profile))
        .collect()
}

/// The paper's reference values for EXPERIMENTS.md comparison.
pub fn paper_reference() -> Vec<(&'static str, f64)> {
    vec![("HP0", 0.7701), ("HP1", 0.5445), ("Classroom", 1.6445)]
}

/// Helper: do the three configurations agree on parameters within a
/// relative tolerance? (The paper reports <= 0.02% relative differences.)
pub fn configs_agree(rows: &[CalibrationRow], tol: f64) -> bool {
    for model in ["HP0", "HP1", "Classroom"] {
        let per_model: Vec<&CalibrationRow> = rows.iter().filter(|r| r.model == model).collect();
        if per_model.len() < 2 {
            continue;
        }
        let reference = &per_model[0].params;
        for other in &per_model[1..] {
            for ((_, a), (_, b)) in reference.iter().zip(&other.params) {
                if (a - b).abs() / (b.abs() + 1e-9) > tol {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hp1_calibration_recovers_truth_across_configs() {
        let rows = calibrate_model(ModelKind::Hp1, &Profile::test());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            let cp = r.params.iter().find(|(n, _)| n == "Cp").unwrap().1;
            assert!((cp - 1.5).abs() < 0.5, "{}: Cp {cp}", r.config);
            assert!(r.rmse < 1.5, "{}: rmse {}", r.config, r.rmse);
        }
        // pgFMU- and pgFMU+ are bit-identical in the SI scenario.
        assert_eq!(rows[1].params, rows[2].params);
        assert!(configs_agree(&rows, 0.05));
    }

    #[test]
    fn builtin_lookup_matches_models() {
        for m in ALL_MODELS {
            assert!(pgfmu_fmi::builtin::by_name(m.name()).is_some());
        }
    }
}
