//! Table 8 — SI scenario per-operation execution time for Python and
//! pgFMU± (calibration dominates: > 99% of the workflow).

use std::time::{Duration, Instant};

use pgfmu_fmi::archive;

use crate::profiles::Profile;
use crate::setup::{bench_session, ModelKind, ALL_MODELS};

/// One configuration's per-step timings (None = step not needed, the
/// paper's "-" cells for pgFMU).
#[derive(Debug, Clone)]
pub struct OpTimings {
    /// Model name.
    pub model: &'static str,
    /// Configuration label.
    pub config: &'static str,
    /// 1 — load FMU.
    pub load: Duration,
    /// 2 — read measurements.
    pub read: Duration,
    /// 3 — (re)calibrate.
    pub calibrate: Duration,
    /// 4 — validate & update (traditional stack only).
    pub validate: Option<Duration>,
    /// 5 — simulate.
    pub simulate: Duration,
    /// 6 — export predictions (traditional stack only).
    pub export: Option<Duration>,
}

impl OpTimings {
    /// Workflow total.
    pub fn total(&self) -> Duration {
        self.load
            + self.read
            + self.calibrate
            + self.validate.unwrap_or_default()
            + self.simulate
            + self.export.unwrap_or_default()
    }
}

/// Time the traditional stack for one model.
pub fn time_python(model: ModelKind, profile: &Profile) -> OpTimings {
    let db = pgfmu_sqlmini::Database::new();
    model
        .dataset(profile)
        .load_into(&db, "measurements")
        .unwrap();
    let wf = pgfmu_baseline::TraditionalWorkflow::in_temp_dir(profile.config).unwrap();
    let fmu_path = wf.work_dir().join(format!("{}.fmu", model.name()));
    archive::write_to_path(
        &pgfmu_fmi::builtin::by_name(model.name()).unwrap(),
        &fmu_path,
    )
    .unwrap();
    let out = wf
        .run_si(&db, "measurements", &fmu_path, &model.pars(), 0.75, "t8")
        .unwrap();
    let t = out.timings;
    OpTimings {
        model: model.name(),
        config: "Python",
        load: t.load_fmu,
        read: t.read_measurements,
        calibrate: t.calibrate,
        validate: Some(t.validate),
        simulate: t.simulate,
        export: Some(t.export),
    }
}

/// Time pgFMU (the MI switch is irrelevant for a single instance; this is
/// both the pgFMU− and pgFMU+ column).
pub fn time_pgfmu(model: ModelKind, profile: &Profile) -> OpTimings {
    let bench = bench_session(model, profile);
    let s = &bench.session;

    // Step 1: load/build the FMU (a second instance hits the shared FMU).
    let t0 = Instant::now();
    s.query(
        "SELECT fmu_create($1, $2)",
        pgfmu::params![model.name(), "timing_probe"],
    )
    .unwrap();
    let load = t0.elapsed();

    // Step 2: read measurements (the input query pgFMU runs internally).
    let sql = model.parest_sql(&bench.table);
    let t0 = Instant::now();
    s.execute(&sql).unwrap();
    let read = t0.elapsed();

    // Step 3: calibrate.
    let t0 = Instant::now();
    s.fmu_parest(
        std::slice::from_ref(&bench.instance),
        std::slice::from_ref(&sql),
        Some(&model.pars()),
        None,
    )
    .unwrap();
    let calibrate = t0.elapsed();

    // Step 5: simulate.
    let t0 = Instant::now();
    s.fmu_simulate(
        &bench.instance,
        model.simulate_sql(&bench.table).as_deref(),
        None,
        None,
    )
    .unwrap();
    let simulate = t0.elapsed();

    OpTimings {
        model: model.name(),
        config: "pgFMU±",
        load,
        read,
        calibrate,
        validate: None,
        simulate,
        export: None,
    }
}

/// All Table-8 rows.
pub fn run(profile: &Profile) -> Vec<OpTimings> {
    let mut rows = Vec::new();
    for model in ALL_MODELS {
        rows.push(time_python(model, profile));
        rows.push(time_pgfmu(model, profile));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_dominates_both_configs() {
        let profile = Profile::test();
        for t in [
            time_python(ModelKind::Hp1, &profile),
            time_pgfmu(ModelKind::Hp1, &profile),
        ] {
            let share = t.calibrate.as_secs_f64() / t.total().as_secs_f64();
            assert!(
                share > 0.6,
                "{}: calibration share {share:.2} too small",
                t.config
            );
        }
    }

    #[test]
    fn pgfmu_skips_validate_and_export_steps() {
        let t = time_pgfmu(ModelKind::Hp0, &Profile::test());
        assert!(t.validate.is_none() && t.export.is_none());
    }
}
