//! The model catalogue: Figure 4's four tables plus typed accessors.
//!
//! All catalogue state lives in ordinary DBMS tables so users can inspect
//! it with plain SQL, exactly as in the paper. The accessors here are the
//! typed API the pgFMU UDF layer builds on.

use std::fmt;
use std::sync::Arc;

use pgfmu_fmi::{Causality, FmiError, Fmu, FmuInstance, Variability};
use pgfmu_sqlmini::{Database, SqlError, Value};

use crate::storage::FmuStorage;
use crate::uuid::Uuid;

/// Errors from catalogue operations.
#[derive(Debug)]
pub enum CatalogError {
    /// Underlying SQL failure.
    Sql(SqlError),
    /// Underlying FMI failure.
    Fmi(FmiError),
    /// The referenced instance does not exist.
    UnknownInstance(String),
    /// The referenced model does not exist.
    UnknownModel(String),
    /// The instance identifier is already taken.
    InstanceExists(String),
    /// The referenced variable does not exist in the model.
    UnknownVariable(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Sql(e) => write!(f, "{e}"),
            CatalogError::Fmi(e) => write!(f, "{e}"),
            CatalogError::UnknownInstance(i) => write!(f, "model instance '{i}' does not exist"),
            CatalogError::UnknownModel(m) => write!(f, "model '{m}' does not exist"),
            CatalogError::InstanceExists(i) => {
                write!(f, "model instance '{i}' already exists")
            }
            CatalogError::UnknownVariable(v) => write!(f, "model variable '{v}' does not exist"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<SqlError> for CatalogError {
    fn from(e: SqlError) -> Self {
        CatalogError::Sql(e)
    }
}

impl From<FmiError> for CatalogError {
    fn from(e: FmiError) -> Self {
        CatalogError::Fmi(e)
    }
}

/// Catalogue errors surface to SQL users as execution errors, so UDF
/// closures can use `?` directly.
impl From<CatalogError> for SqlError {
    fn from(e: CatalogError) -> Self {
        match e {
            CatalogError::Sql(s) => s,
            other => SqlError::Execution(other.to_string()),
        }
    }
}

/// Convenient alias.
pub type Result<T> = std::result::Result<T, CatalogError>;

/// One row of the `fmu_variables` output (paper Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceVariableRow {
    /// Instance identifier.
    pub instance_id: String,
    /// Variable name.
    pub var_name: String,
    /// Variable kind: `parameter` / `input` / `output` / `state`.
    pub var_type: String,
    /// The instance's current value (None for inputs/outputs).
    pub value: Option<f64>,
    /// Lower bound, when declared.
    pub min_value: Option<f64>,
    /// Upper bound, when declared.
    pub max_value: Option<f64>,
}

/// Escape a string for inclusion in a SQL literal.
fn q(s: &str) -> String {
    s.replace('\'', "''")
}

fn opt_to_sql(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:?}"),
        None => "NULL".into(),
    }
}

fn value_to_opt(v: &Value) -> Option<f64> {
    v.as_f64().ok()
}

/// The catalogue: typed operations over the four tables + FMU storage.
pub struct ModelCatalog {
    db: Arc<Database>,
    storage: Arc<FmuStorage>,
}

impl ModelCatalog {
    /// Set up the catalogue tables (idempotent) on the given database.
    pub fn new(db: Arc<Database>, storage: Arc<FmuStorage>) -> Result<Self> {
        db.execute(
            "CREATE TABLE IF NOT EXISTS model (\
               modelid text, name text, description text, \
               defaultstarttime float, defaultstoptime float, \
               stepsize float, tolerance float)",
        )?;
        db.execute(
            "CREATE TABLE IF NOT EXISTS modelvariable (\
               modelid text, varname text, vartype text, datatype text, \
               variability text, initialvalue variant, minvalue variant, \
               maxvalue variant, unit text, description text)",
        )?;
        db.execute(
            "CREATE TABLE IF NOT EXISTS modelinstance (\
               instanceid text, modelid text)",
        )?;
        db.execute(
            "CREATE TABLE IF NOT EXISTS modelinstancevalues (\
               modelid text, instanceid text, varname text, value variant)",
        )?;
        Ok(ModelCatalog { db, storage })
    }

    /// The underlying database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The underlying FMU storage.
    pub fn storage(&self) -> &Arc<FmuStorage> {
        &self.storage
    }

    // ---- models -------------------------------------------------------------

    /// Register a compiled FMU in the catalogue, returning its UUID.
    ///
    /// Loading the *same* model again (same name, identical archive) reuses
    /// the existing entry — the paper's "initial copy of the FMU file is
    /// reused" behaviour.
    pub fn register_model(&self, fmu: Fmu) -> Result<Uuid> {
        if let Some(existing) = self.find_model_by_name(fmu.name())? {
            let stored = self.storage.load(existing)?;
            if *stored == fmu {
                return Ok(existing);
            }
        }
        let uuid = Uuid::new_v4();
        let de = fmu.description.default_experiment;
        self.db.execute(&format!(
            "INSERT INTO model VALUES ('{uuid}', '{}', '{}', {}, {}, {}, {})",
            q(fmu.name()),
            q(&fmu.description.description),
            de.start_time,
            de.stop_time,
            de.step_size,
            de.tolerance
        ))?;
        for v in &fmu.description.variables {
            self.db.execute(&format!(
                "INSERT INTO modelvariable VALUES ('{uuid}', '{}', '{}', '{}', '{}', {}, {}, {}, '{}', '{}')",
                q(&v.name),
                v.causality.as_str(),
                v.var_type.as_str(),
                v.variability.as_str(),
                opt_to_sql(v.start),
                opt_to_sql(v.min),
                opt_to_sql(v.max),
                q(&v.unit),
                q(&v.description)
            ))?;
        }
        self.storage.store(uuid, fmu)?;
        Ok(uuid)
    }

    /// Look up a model UUID by model (class) name.
    pub fn find_model_by_name(&self, name: &str) -> Result<Option<Uuid>> {
        let qres = self.db.execute(&format!(
            "SELECT modelid FROM model WHERE name = '{}'",
            q(name)
        ))?;
        match qres.rows.first() {
            None => Ok(None),
            Some(row) => {
                let s = row[0].as_str().map_err(CatalogError::Sql)?;
                s.parse::<Uuid>()
                    .map(Some)
                    .map_err(|_| CatalogError::UnknownModel(s.to_string()))
            }
        }
    }

    /// The shared compiled model for a UUID.
    pub fn model_fmu(&self, uuid: Uuid) -> Result<Arc<Fmu>> {
        if !self.storage.contains(uuid) {
            return Err(CatalogError::UnknownModel(uuid.to_string()));
        }
        Ok(self.storage.load(uuid)?)
    }

    /// Delete a model and cascade to all of its instances (the paper's
    /// `fmu_delete_model`).
    pub fn delete_model(&self, uuid: Uuid) -> Result<()> {
        if !self.storage.contains(uuid) {
            return Err(CatalogError::UnknownModel(uuid.to_string()));
        }
        self.db
            .execute(&format!("DELETE FROM model WHERE modelid = '{uuid}'"))?;
        self.db.execute(&format!(
            "DELETE FROM modelvariable WHERE modelid = '{uuid}'"
        ))?;
        self.db.execute(&format!(
            "DELETE FROM modelinstance WHERE modelid = '{uuid}'"
        ))?;
        self.db.execute(&format!(
            "DELETE FROM modelinstancevalues WHERE modelid = '{uuid}'"
        ))?;
        self.storage.delete(uuid)?;
        Ok(())
    }

    /// All model UUIDs currently registered.
    pub fn model_ids(&self) -> Result<Vec<Uuid>> {
        let qres = self
            .db
            .execute("SELECT modelid FROM model ORDER BY modelid")?;
        qres.rows
            .iter()
            .map(|r| {
                let s = r[0].as_str().map_err(CatalogError::Sql)?;
                s.parse()
                    .map_err(|_| CatalogError::UnknownModel(s.to_string()))
            })
            .collect()
    }

    // ---- instances -----------------------------------------------------------

    /// Create an instance of a model; generates an identifier when the
    /// caller does not supply one.
    pub fn create_instance(&self, uuid: Uuid, instance_id: Option<&str>) -> Result<String> {
        let fmu = self.model_fmu(uuid)?;
        let id = match instance_id {
            Some(id) => {
                if self.instance_exists(id)? {
                    return Err(CatalogError::InstanceExists(id.to_string()));
                }
                id.to_string()
            }
            None => {
                // pgFMU-generated identifier: <ModelName>Instance<n>.
                let count = self
                    .db
                    .execute(&format!(
                        "SELECT count(*) FROM modelinstance WHERE modelid = '{uuid}'"
                    ))?
                    .rows[0][0]
                    .as_i64()
                    .map_err(CatalogError::Sql)?;
                let mut n = count + 1;
                loop {
                    let candidate = format!("{}Instance{n}", fmu.name());
                    if !self.instance_exists(&candidate)? {
                        break candidate;
                    }
                    n += 1;
                }
            }
        };
        self.db.execute(&format!(
            "INSERT INTO modelinstance VALUES ('{}', '{uuid}')",
            q(&id)
        ))?;
        // Seed per-instance values for parameters and states from the
        // model's declared start values.
        for v in &fmu.description.variables {
            if matches!(v.causality, Causality::Parameter | Causality::Local) {
                self.db.execute(&format!(
                    "INSERT INTO modelinstancevalues VALUES ('{uuid}', '{}', '{}', {})",
                    q(&id),
                    q(&v.name),
                    opt_to_sql(v.start)
                ))?;
            }
        }
        Ok(id)
    }

    /// Copy an instance (catalogue rows only — the FMU is shared), the
    /// paper's `fmu_copy`.
    pub fn copy_instance(&self, src: &str, dst: Option<&str>) -> Result<String> {
        let uuid = self.instance_model(src)?;
        let values = self.instance_values(src)?;
        let id = self.create_instance(uuid, dst)?;
        for (name, value) in values {
            self.set_value(&id, &name, value)?;
        }
        Ok(id)
    }

    /// Does an instance exist?
    pub fn instance_exists(&self, instance_id: &str) -> Result<bool> {
        let qres = self.db.execute(&format!(
            "SELECT count(*) FROM modelinstance WHERE instanceid = '{}'",
            q(instance_id)
        ))?;
        Ok(qres.rows[0][0].as_i64().map_err(CatalogError::Sql)? > 0)
    }

    /// The parent model UUID of an instance.
    pub fn instance_model(&self, instance_id: &str) -> Result<Uuid> {
        let qres = self.db.execute(&format!(
            "SELECT modelid FROM modelinstance WHERE instanceid = '{}'",
            q(instance_id)
        ))?;
        match qres.rows.first() {
            None => Err(CatalogError::UnknownInstance(instance_id.to_string())),
            Some(row) => {
                let s = row[0].as_str().map_err(CatalogError::Sql)?;
                s.parse()
                    .map_err(|_| CatalogError::UnknownModel(s.to_string()))
            }
        }
    }

    /// All instance identifiers, sorted.
    pub fn instance_ids(&self) -> Result<Vec<String>> {
        let qres = self
            .db
            .execute("SELECT instanceid FROM modelinstance ORDER BY instanceid")?;
        qres.rows
            .iter()
            .map(|r| r[0].as_str().map(str::to_string).map_err(CatalogError::Sql))
            .collect()
    }

    /// Delete one instance (the paper's `fmu_delete_instance`).
    pub fn delete_instance(&self, instance_id: &str) -> Result<()> {
        if !self.instance_exists(instance_id)? {
            return Err(CatalogError::UnknownInstance(instance_id.to_string()));
        }
        self.db.execute(&format!(
            "DELETE FROM modelinstance WHERE instanceid = '{}'",
            q(instance_id)
        ))?;
        self.db.execute(&format!(
            "DELETE FROM modelinstancevalues WHERE instanceid = '{}'",
            q(instance_id)
        ))?;
        Ok(())
    }

    // ---- values ---------------------------------------------------------------

    /// Current per-instance values for parameters and states.
    pub fn instance_values(&self, instance_id: &str) -> Result<Vec<(String, f64)>> {
        if !self.instance_exists(instance_id)? {
            return Err(CatalogError::UnknownInstance(instance_id.to_string()));
        }
        let qres = self.db.execute(&format!(
            "SELECT varname, value FROM modelinstancevalues \
             WHERE instanceid = '{}' ORDER BY varname",
            q(instance_id)
        ))?;
        Ok(qres
            .rows
            .iter()
            .filter_map(|r| {
                let name = r[0].as_str().ok()?.to_string();
                value_to_opt(&r[1]).map(|v| (name, v))
            })
            .collect())
    }

    /// Set one per-instance value (the paper's `fmu_set_initial`).
    pub fn set_value(&self, instance_id: &str, var: &str, value: f64) -> Result<()> {
        let uuid = self.instance_model(instance_id)?;
        let fmu = self.model_fmu(uuid)?;
        let v = fmu
            .description
            .variable(var)
            .map_err(|_| CatalogError::UnknownVariable(var.to_string()))?;
        if !matches!(v.causality, Causality::Parameter | Causality::Local) {
            return Err(CatalogError::Fmi(FmiError::CausalityViolation {
                variable: var.to_string(),
                reason: "only parameters and states hold instance values".into(),
            }));
        }
        let n = self.db.execute(&format!(
            "UPDATE modelinstancevalues SET value = {value:?} \
             WHERE instanceid = '{}' AND varname = '{}'",
            q(instance_id),
            q(var)
        ))?;
        debug_assert_eq!(n.rows[0][0], Value::Int(1));
        Ok(())
    }

    /// Read `(value, min, max)` for one instance variable (the paper's
    /// `fmu_get`).
    pub fn get_value(
        &self,
        instance_id: &str,
        var: &str,
    ) -> Result<(Option<f64>, Option<f64>, Option<f64>)> {
        let rows = self.variables(instance_id)?;
        rows.iter()
            .find(|r| r.var_name == var)
            .map(|r| (r.value, r.min_value, r.max_value))
            .ok_or_else(|| CatalogError::UnknownVariable(var.to_string()))
    }

    /// Update a per-model bound (the paper's `fmu_set_minimum` /
    /// `fmu_set_maximum`). Bounds are physical constraints of the *model*,
    /// so they live in `ModelVariable` and affect every instance.
    pub fn set_bound(&self, instance_id: &str, var: &str, bound: Bound, value: f64) -> Result<()> {
        let uuid = self.instance_model(instance_id)?;
        let column = match bound {
            Bound::Min => "minvalue",
            Bound::Max => "maxvalue",
        };
        let n = self.db.execute(&format!(
            "UPDATE modelvariable SET {column} = {value:?} \
             WHERE modelid = '{uuid}' AND varname = '{}'",
            q(var)
        ))?;
        if n.rows[0][0] == Value::Int(0) {
            return Err(CatalogError::UnknownVariable(var.to_string()));
        }
        Ok(())
    }

    /// Reset an instance's values to the model's declared start values
    /// (the paper's `fmu_reset`).
    pub fn reset_instance(&self, instance_id: &str) -> Result<()> {
        let uuid = self.instance_model(instance_id)?;
        let fmu = self.model_fmu(uuid)?;
        for v in &fmu.description.variables {
            if matches!(v.causality, Causality::Parameter | Causality::Local) {
                if let Some(start) = v.start {
                    self.set_value(instance_id, &v.name, start)?;
                }
            }
        }
        Ok(())
    }

    /// The `fmu_variables` rows: meta-data joined with instance values.
    pub fn variables(&self, instance_id: &str) -> Result<Vec<InstanceVariableRow>> {
        let uuid = self.instance_model(instance_id)?;
        let qres = self.db.execute(&format!(
            "SELECT v.varname, v.vartype, v.minvalue, v.maxvalue \
             FROM modelvariable v WHERE v.modelid = '{uuid}'"
        ))?;
        let values: std::collections::HashMap<String, f64> =
            self.instance_values(instance_id)?.into_iter().collect();
        qres.rows
            .iter()
            .map(|r| {
                let var_name = r[0].as_str().map_err(CatalogError::Sql)?.to_string();
                Ok(InstanceVariableRow {
                    instance_id: instance_id.to_string(),
                    var_name: var_name.clone(),
                    var_type: r[1].as_str().map_err(CatalogError::Sql)?.to_string(),
                    value: values.get(&var_name).copied(),
                    min_value: value_to_opt(&r[2]),
                    max_value: value_to_opt(&r[3]),
                })
            })
            .collect()
    }

    /// Write estimated parameter values back into the catalogue
    /// (Algorithm 2 line 8 / Algorithm 3 line 20).
    pub fn update_values(&self, instance_id: &str, updates: &[(String, f64)]) -> Result<()> {
        for (name, value) in updates {
            self.set_value(instance_id, name, *value)?;
        }
        Ok(())
    }

    // ---- realization ------------------------------------------------------------

    /// Materialize an instance: the shared `Arc<Fmu>` plus an
    /// [`FmuInstance`] carrying the catalogue's current values.
    pub fn instantiate(&self, instance_id: &str) -> Result<(Arc<Fmu>, FmuInstance)> {
        let uuid = self.instance_model(instance_id)?;
        let fmu = self.model_fmu(uuid)?;
        let mut inst = fmu.instantiate();
        for (name, value) in self.instance_values(instance_id)? {
            inst.set(&name, value)?;
        }
        Ok((fmu, inst))
    }

    /// A clone of the model whose variable meta-data (start/min/max) is
    /// patched with the catalogue's current state — what estimation uses
    /// so `fmu_set_minimum`/`fmu_set_maximum` shape the search space.
    pub fn fmu_for_estimation(&self, instance_id: &str) -> Result<Arc<Fmu>> {
        let uuid = self.instance_model(instance_id)?;
        let fmu = self.model_fmu(uuid)?;
        let qres = self.db.execute(&format!(
            "SELECT varname, minvalue, maxvalue FROM modelvariable \
             WHERE modelid = '{uuid}'"
        ))?;
        let mut description = fmu.description.clone();
        for r in &qres.rows {
            let name = r[0].as_str().map_err(CatalogError::Sql)?;
            if let Ok(v) = description.variable_mut(name) {
                v.min = value_to_opt(&r[1]);
                v.max = value_to_opt(&r[2]);
            }
        }
        let patched = Fmu::new(description, fmu.system.clone())?;
        Ok(Arc::new(patched))
    }

    /// Tunable parameter names of an instance's model — the default
    /// estimation target set of `fmu_parest`.
    pub fn tunable_parameters(&self, instance_id: &str) -> Result<Vec<String>> {
        let uuid = self.instance_model(instance_id)?;
        let fmu = self.model_fmu(uuid)?;
        Ok(fmu
            .description
            .variables
            .iter()
            .filter(|v| {
                v.causality == Causality::Parameter && v.variability == Variability::Tunable
            })
            .map(|v| v.name.clone())
            .collect())
    }
}

/// Which bound `set_bound` updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// The `minValue` column.
    Min,
    /// The `maxValue` column.
    Max,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgfmu_fmi::builtin;

    fn catalog() -> ModelCatalog {
        let db = Arc::new(Database::new());
        let storage = Arc::new(FmuStorage::open_temp().unwrap());
        ModelCatalog::new(db, storage).unwrap()
    }

    #[test]
    fn register_and_reuse_model() {
        let cat = catalog();
        let a = cat.register_model(builtin::hp1()).unwrap();
        let b = cat.register_model(builtin::hp1()).unwrap();
        assert_eq!(a, b, "same model must be reused, not re-registered");
        let ids = cat.model_ids().unwrap();
        assert_eq!(ids, vec![a]);
        // Variables landed in the catalogue.
        let q = cat
            .db()
            .execute(&format!(
                "SELECT count(*) FROM modelvariable WHERE modelid = '{a}'"
            ))
            .unwrap();
        assert_eq!(q.rows[0][0], Value::Int(8));
    }

    #[test]
    fn create_copy_and_share_fmu() {
        let cat = catalog();
        let uuid = cat.register_model(builtin::hp1()).unwrap();
        let i1 = cat.create_instance(uuid, Some("HP1Instance1")).unwrap();
        let i2 = cat.copy_instance(&i1, Some("HP1Instance2")).unwrap();
        assert_eq!(i2, "HP1Instance2");
        let (f1, _) = cat.instantiate(&i1).unwrap();
        let (f2, _) = cat.instantiate(&i2).unwrap();
        assert!(Arc::ptr_eq(&f1, &f2), "instances must share one FMU");
        assert_eq!(cat.storage().disk_load_count(), 0);
    }

    #[test]
    fn generated_instance_ids_are_unique() {
        let cat = catalog();
        let uuid = cat.register_model(builtin::hp0()).unwrap();
        let a = cat.create_instance(uuid, None).unwrap();
        let b = cat.create_instance(uuid, None).unwrap();
        assert_ne!(a, b);
        assert!(a.starts_with("HP0Instance"));
    }

    #[test]
    fn duplicate_instance_id_rejected() {
        let cat = catalog();
        let uuid = cat.register_model(builtin::hp0()).unwrap();
        cat.create_instance(uuid, Some("x")).unwrap();
        assert!(matches!(
            cat.create_instance(uuid, Some("x")),
            Err(CatalogError::InstanceExists(_))
        ));
    }

    #[test]
    fn set_get_reset_values() {
        let cat = catalog();
        let uuid = cat.register_model(builtin::hp1()).unwrap();
        let id = cat.create_instance(uuid, Some("i")).unwrap();
        cat.set_value(&id, "Cp", 2.5).unwrap();
        let (v, lo, hi) = cat.get_value(&id, "Cp").unwrap();
        assert_eq!(v, Some(2.5));
        assert_eq!(lo, Some(0.1));
        assert_eq!(hi, Some(10.0));
        cat.reset_instance(&id).unwrap();
        let (v, _, _) = cat.get_value(&id, "Cp").unwrap();
        assert_eq!(v, Some(1.5));
    }

    #[test]
    fn bounds_update_affects_estimation_fmu() {
        let cat = catalog();
        let uuid = cat.register_model(builtin::hp1()).unwrap();
        let id = cat.create_instance(uuid, Some("i")).unwrap();
        cat.set_bound(&id, "Cp", Bound::Min, 0.5).unwrap();
        cat.set_bound(&id, "Cp", Bound::Max, 3.0).unwrap();
        let patched = cat.fmu_for_estimation(&id).unwrap();
        let v = patched.description.variable("Cp").unwrap();
        assert_eq!(v.min, Some(0.5));
        assert_eq!(v.max, Some(3.0));
        // The shared FMU remains untouched.
        let shared = cat.model_fmu(uuid).unwrap();
        assert_eq!(shared.description.variable("Cp").unwrap().min, Some(0.1));
    }

    #[test]
    fn variables_rows_match_paper_shape() {
        let cat = catalog();
        let uuid = cat.register_model(builtin::hp1()).unwrap();
        let id = cat.create_instance(uuid, Some("HP1Instance1")).unwrap();
        let rows = cat.variables(&id).unwrap();
        assert_eq!(rows.len(), 8);
        let params: Vec<_> = rows.iter().filter(|r| r.var_type == "parameter").collect();
        assert_eq!(params.len(), 5);
        let u = rows.iter().find(|r| r.var_name == "u").unwrap();
        assert_eq!(u.var_type, "input");
        assert_eq!(u.value, None, "inputs have no instance value");
    }

    #[test]
    fn instantiate_applies_instance_values() {
        let cat = catalog();
        let uuid = cat.register_model(builtin::hp1()).unwrap();
        let id = cat.create_instance(uuid, Some("i")).unwrap();
        cat.set_value(&id, "Cp", 2.0).unwrap();
        cat.set_value(&id, "x", 18.5).unwrap();
        let (_, inst) = cat.instantiate(&id).unwrap();
        assert_eq!(inst.get("Cp").unwrap(), 2.0);
        assert_eq!(inst.get("x").unwrap(), 18.5);
    }

    #[test]
    fn delete_instance_and_model_cascade() {
        let cat = catalog();
        let uuid = cat.register_model(builtin::hp1()).unwrap();
        let i1 = cat.create_instance(uuid, Some("a")).unwrap();
        let _i2 = cat.create_instance(uuid, Some("b")).unwrap();
        cat.delete_instance(&i1).unwrap();
        assert!(!cat.instance_exists("a").unwrap());
        assert!(cat.instance_exists("b").unwrap());
        assert!(matches!(
            cat.delete_instance("a"),
            Err(CatalogError::UnknownInstance(_))
        ));
        cat.delete_model(uuid).unwrap();
        assert!(!cat.instance_exists("b").unwrap());
        assert!(matches!(
            cat.model_fmu(uuid),
            Err(CatalogError::UnknownModel(_))
        ));
        let q = cat
            .db()
            .execute("SELECT count(*) FROM modelinstancevalues")
            .unwrap();
        assert_eq!(q.rows[0][0], Value::Int(0));
    }

    #[test]
    fn error_paths() {
        let cat = catalog();
        assert!(matches!(
            cat.instance_model("ghost"),
            Err(CatalogError::UnknownInstance(_))
        ));
        let uuid = cat.register_model(builtin::hp1()).unwrap();
        let id = cat.create_instance(uuid, Some("i")).unwrap();
        assert!(matches!(
            cat.set_value(&id, "nope", 1.0),
            Err(CatalogError::UnknownVariable(_))
        ));
        // Assigning to an input is a causality violation.
        assert!(matches!(
            cat.set_value(&id, "u", 1.0),
            Err(CatalogError::Fmi(FmiError::CausalityViolation { .. }))
        ));
        assert!(matches!(
            cat.set_bound(&id, "nope", Bound::Min, 0.0),
            Err(CatalogError::UnknownVariable(_))
        ));
    }

    #[test]
    fn tunable_parameters_default_set() {
        let cat = catalog();
        let uuid = cat.register_model(builtin::classroom()).unwrap();
        let id = cat.create_instance(uuid, Some("c")).unwrap();
        assert_eq!(
            cat.tunable_parameters(&id).unwrap(),
            vec!["shgc", "tmass", "RExt", "occheff"]
        );
    }

    #[test]
    fn quoting_handles_awkward_identifiers() {
        let cat = catalog();
        let uuid = cat.register_model(builtin::hp0()).unwrap();
        let id = cat.create_instance(uuid, Some("it's-instance")).unwrap();
        assert!(cat.instance_exists(&id).unwrap());
        assert_eq!(cat.instance_model(&id).unwrap(), uuid);
        cat.delete_instance(&id).unwrap();
    }
}
