//! # pgfmu-catalog — the pgFMU model catalogue and FMU storage
//!
//! Implements Figure 4 of the paper: the four catalogue tables —
//! `Model`, `ModelVariable`, `ModelInstance`, `ModelInstanceValues` —
//! living as ordinary relations inside the DBMS, plus the non-volatile
//! *FMU storage* holding one compiled FMU per model UUID.
//!
//! Key properties reproduced from the paper (§5, §7):
//!
//! * models are identified by 128-bit UUIDs;
//! * variable values are stored in `variant`-typed columns that keep track
//!   of the original data type;
//! * one single FMU file is stored and *shared* by all instances of the
//!   same model ("we avoid the creation and load of superfluous FMU model
//!   files") — [`FmuStorage`] keeps an in-memory `Arc<Fmu>` cache in front
//!   of the on-disk archives;
//! * instances are catalogue rows; `fmu_copy` duplicates rows only.

pub mod catalogue;
pub mod storage;
pub mod uuid;

pub use catalogue::{Bound, CatalogError, InstanceVariableRow, ModelCatalog};
pub use storage::FmuStorage;
pub use uuid::Uuid;
