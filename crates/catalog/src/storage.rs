//! Non-volatile FMU storage with an in-memory shared-model cache.
//!
//! The paper stores every loaded FMU once ("FMU storage (non-volatile
//! memory)", Figure 4) and reuses "the initial copy of the FMU file …
//! when either creating a new instance of the same FMU model, copying a
//! model instance, or changing a model state" (§5). Here that is a
//! directory of archive files keyed by model UUID plus an `Arc<Fmu>`
//! cache, so all instances of a model share one compiled model in memory.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::RwLock;

use pgfmu_fmi::{archive, FmiError, Fmu};

use crate::uuid::Uuid;

/// On-disk + in-memory FMU store.
pub struct FmuStorage {
    dir: PathBuf,
    cache: RwLock<HashMap<Uuid, Arc<Fmu>>>,
    disk_loads: RwLock<u64>,
}

impl FmuStorage {
    /// Open (creating if needed) storage rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, FmiError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FmuStorage {
            dir,
            cache: RwLock::new(HashMap::new()),
            disk_loads: RwLock::new(0),
        })
    }

    /// Open storage in a fresh unique temporary directory.
    pub fn open_temp() -> Result<Self, FmiError> {
        let dir = std::env::temp_dir().join(format!(
            "pgfmu-storage-{}-{}",
            std::process::id(),
            Uuid::new_v4()
        ));
        Self::open(dir)
    }

    /// Root directory of the storage.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, uuid: Uuid) -> PathBuf {
        self.dir.join(format!("{uuid}.fmu"))
    }

    /// Persist an FMU under the given UUID and prime the cache.
    pub fn store(&self, uuid: Uuid, fmu: Fmu) -> Result<Arc<Fmu>, FmiError> {
        archive::write_to_path(&fmu, &self.path_for(uuid))?;
        let arc = Arc::new(fmu);
        self.cache.write().insert(uuid, Arc::clone(&arc));
        Ok(arc)
    }

    /// Load an FMU, sharing the cached `Arc` when available.
    pub fn load(&self, uuid: Uuid) -> Result<Arc<Fmu>, FmiError> {
        if let Some(hit) = self.cache.read().get(&uuid) {
            return Ok(Arc::clone(hit));
        }
        let fmu = archive::read_from_path(&self.path_for(uuid))?;
        *self.disk_loads.write() += 1;
        let arc = Arc::new(fmu);
        self.cache.write().insert(uuid, Arc::clone(&arc));
        Ok(arc)
    }

    /// Remove an FMU from disk and cache.
    pub fn delete(&self, uuid: Uuid) -> Result<(), FmiError> {
        self.cache.write().remove(&uuid);
        let path = self.path_for(uuid);
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        Ok(())
    }

    /// Does the storage hold this model?
    pub fn contains(&self, uuid: Uuid) -> bool {
        self.cache.read().contains_key(&uuid) || self.path_for(uuid).exists()
    }

    /// How many times an FMU had to be (re)read from disk — the counter
    /// behind the paper's "we eliminate the necessity to load the same FMU
    /// file multiple times" claim.
    pub fn disk_load_count(&self) -> u64 {
        *self.disk_loads.read()
    }

    /// Drop the in-memory cache (benchmarks use this to emulate the
    /// baseline's per-use file loads).
    pub fn clear_cache(&self) {
        self.cache.write().clear();
    }
}

impl Drop for FmuStorage {
    fn drop(&mut self) {
        // Best-effort cleanup of temp-style directories; ignore failures.
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgfmu_fmi::builtin;

    #[test]
    fn store_load_share_one_arc() {
        let storage = FmuStorage::open_temp().unwrap();
        let uuid = Uuid::from_seed(1);
        let stored = storage.store(uuid, builtin::hp1()).unwrap();
        let a = storage.load(uuid).unwrap();
        let b = storage.load(uuid).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "instances must share one model");
        assert!(Arc::ptr_eq(&stored, &a));
        assert_eq!(storage.disk_load_count(), 0, "cache hit expected");
    }

    #[test]
    fn cache_cleared_falls_back_to_disk() {
        let storage = FmuStorage::open_temp().unwrap();
        let uuid = Uuid::from_seed(2);
        storage.store(uuid, builtin::hp0()).unwrap();
        storage.clear_cache();
        let loaded = storage.load(uuid).unwrap();
        assert_eq!(loaded.name(), "HP0");
        assert_eq!(storage.disk_load_count(), 1);
    }

    #[test]
    fn delete_removes_model() {
        let storage = FmuStorage::open_temp().unwrap();
        let uuid = Uuid::from_seed(3);
        storage.store(uuid, builtin::classroom()).unwrap();
        assert!(storage.contains(uuid));
        storage.delete(uuid).unwrap();
        assert!(!storage.contains(uuid));
        assert!(storage.load(uuid).is_err());
    }

    #[test]
    fn loading_missing_model_errors() {
        let storage = FmuStorage::open_temp().unwrap();
        assert!(storage.load(Uuid::from_seed(99)).is_err());
    }
}
