//! Universally Unique Identifiers for catalogue models (paper §5: "FMU
//! models are identified with a Universally Unique Identifier (UUID) — a
//! 128-bit string for unique object identification").

use std::fmt;
use std::str::FromStr;

use rand::RngCore;

/// A 128-bit identifier rendered in the canonical 8-4-4-4-12 hex form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uuid(pub u128);

impl Uuid {
    /// Generate a random (version-4 style) UUID.
    pub fn new_v4() -> Self {
        let mut bytes = [0u8; 16];
        rand::thread_rng().fill_bytes(&mut bytes);
        // Set version (4) and variant (10) bits per RFC 4122.
        bytes[6] = (bytes[6] & 0x0F) | 0x40;
        bytes[8] = (bytes[8] & 0x3F) | 0x80;
        Uuid(u128::from_be_bytes(bytes))
    }

    /// Generate a deterministic UUID from a seed (tests and examples).
    pub fn from_seed(seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bytes = [0u8; 16];
        rng.fill_bytes(&mut bytes);
        bytes[6] = (bytes[6] & 0x0F) | 0x40;
        bytes[8] = (bytes[8] & 0x3F) | 0x80;
        Uuid(u128::from_be_bytes(bytes))
    }
}

impl fmt::Display for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0.to_be_bytes();
        write!(
            f,
            "{:02x}{:02x}{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}{:02x}{:02x}{:02x}{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7], b[8], b[9], b[10], b[11], b[12],
            b[13], b[14], b[15]
        )
    }
}

/// Error parsing a UUID string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUuidError(pub String);

impl fmt::Display for ParseUuidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid UUID '{}'", self.0)
    }
}

impl std::error::Error for ParseUuidError {}

impl FromStr for Uuid {
    type Err = ParseUuidError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let hex: String = s.chars().filter(|c| *c != '-').collect();
        if hex.len() != 32 {
            return Err(ParseUuidError(s.to_string()));
        }
        u128::from_str_radix(&hex, 16)
            .map(Uuid)
            .map_err(|_| ParseUuidError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_round_trip() {
        let u = Uuid::new_v4();
        let s = u.to_string();
        assert_eq!(s.len(), 36);
        assert_eq!(s.parse::<Uuid>().unwrap(), u);
    }

    #[test]
    fn version_and_variant_bits() {
        for seed in 0..20 {
            let u = Uuid::from_seed(seed);
            let s = u.to_string();
            assert_eq!(&s[14..15], "4", "version nibble in {s}");
            let variant = u8::from_str_radix(&s[19..20], 16).unwrap();
            assert!(variant & 0b1100 == 0b1000, "variant bits in {s}");
        }
    }

    #[test]
    fn from_seed_is_deterministic_and_distinct() {
        assert_eq!(Uuid::from_seed(1), Uuid::from_seed(1));
        assert_ne!(Uuid::from_seed(1), Uuid::from_seed(2));
    }

    #[test]
    fn random_uuids_are_distinct() {
        let a = Uuid::new_v4();
        let b = Uuid::new_v4();
        assert_ne!(a, b);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("nope".parse::<Uuid>().is_err());
        assert!("123".parse::<Uuid>().is_err());
        assert!("zzzzzzzz-zzzz-zzzz-zzzz-zzzzzzzzzzzz"
            .parse::<Uuid>()
            .is_err());
    }
}
