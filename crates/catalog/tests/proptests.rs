//! Property tests for the catalogue UUID type: uniqueness, canonical
//! format stability, and parse/display round-trips.

use proptest::prelude::*;

use pgfmu_catalog::uuid::Uuid;

/// Arbitrary 128-bit payloads assembled from two u64 halves.
fn arb_u128() -> impl Strategy<Value = u128> {
    (0u64..u64::MAX, 0u64..u64::MAX).prop_map(|(hi, lo)| ((hi as u128) << 64) | lo as u128)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Distinct seeds yield distinct UUIDs (128 random bits; a collision
    /// among a few hundred draws would be astronomically unlikely, so any
    /// hit means the derivation lost entropy).
    #[test]
    fn distinct_seeds_give_distinct_uuids(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        if a != b {
            prop_assert_ne!(Uuid::from_seed(a), Uuid::from_seed(b));
        }
    }

    /// The same seed always derives the same UUID (stability across calls
    /// and therefore across catalogue reloads).
    #[test]
    fn seed_derivation_is_stable(seed in 0u64..u64::MAX) {
        prop_assert_eq!(Uuid::from_seed(seed), Uuid::from_seed(seed));
    }

    /// Canonical textual form: 8-4-4-4-12 lowercase hex with RFC 4122
    /// version-4 and variant-10 bits set.
    #[test]
    fn format_is_canonical_8_4_4_4_12(seed in 0u64..u64::MAX) {
        let s = Uuid::from_seed(seed).to_string();
        prop_assert_eq!(s.len(), 36);
        let groups: Vec<&str> = s.split('-').collect();
        let lens: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        prop_assert_eq!(lens, vec![8, 4, 4, 4, 12]);
        for g in &groups {
            prop_assert!(
                g.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()),
                "non-lowercase-hex in {s}"
            );
        }
        prop_assert_eq!(&s[14..15], "4", "version nibble in {}", s);
        let variant = u8::from_str_radix(&s[19..20], 16).unwrap();
        prop_assert!(variant & 0b1100 == 0b1000, "variant bits in {s}");
    }

    /// Display → parse is the identity on arbitrary 128-bit values.
    #[test]
    fn display_parse_round_trip(bits in arb_u128()) {
        let u = Uuid(bits);
        prop_assert_eq!(u.to_string().parse::<Uuid>().unwrap(), u);
    }

    /// Parsing is case-insensitive and dash-tolerant, and rejects
    /// wrong-length inputs.
    #[test]
    fn parse_accepts_case_and_dash_variants(seed in 0u64..u64::MAX) {
        let u = Uuid::from_seed(seed);
        let s = u.to_string();
        prop_assert_eq!(s.to_uppercase().parse::<Uuid>().unwrap(), u);
        prop_assert_eq!(s.replace('-', "").parse::<Uuid>().unwrap(), u);
        prop_assert!(s[1..].parse::<Uuid>().is_err());
    }
}

#[test]
fn new_v4_uuids_are_unique_in_bulk() {
    let mut seen = std::collections::HashSet::new();
    for _ in 0..1000 {
        assert!(seen.insert(Uuid::new_v4()), "duplicate v4 UUID generated");
    }
}
