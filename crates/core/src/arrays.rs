//! Parsing of the PostgreSQL-style array literals the paper's UDF calls
//! use: `'{HP1Instance1, HP1Instance2}'`, `'{A, B}'` and the trickier
//! `'{SELECT * FROM measurements, SELECT * FROM measurements2}'`.

/// Parse a simple array literal of identifiers. A bare value without
/// braces is treated as a one-element array, so
/// `fmu_parest('HP1Instance1', …)` also works.
pub fn parse_ident_array(s: &str) -> Vec<String> {
    let inner = s
        .trim()
        .strip_prefix('{')
        .and_then(|rest| rest.strip_suffix('}'));
    match inner {
        Some(body) => body
            .split(',')
            .map(|p| p.trim().to_string())
            .filter(|p| !p.is_empty())
            .collect(),
        None => {
            let t = s.trim();
            if t.is_empty() {
                Vec::new()
            } else {
                vec![t.to_string()]
            }
        }
    }
}

/// Parse an array of SQL queries. Because the queries themselves contain
/// commas, elements are split only at commas that begin a new statement
/// (a comma followed by a statement keyword such as `SELECT`).
pub fn parse_sql_array(s: &str) -> Vec<String> {
    let body = match s
        .trim()
        .strip_prefix('{')
        .and_then(|rest| rest.strip_suffix('}'))
    {
        Some(b) => b,
        None => return vec![s.trim().to_string()],
    };
    let mut out = Vec::new();
    let mut current = String::new();
    let chars = body.char_indices();
    let lower = body.to_ascii_lowercase();
    for (i, c) in chars {
        if c == ',' {
            let rest = lower[i + 1..].trim_start();
            if rest.starts_with("select ") || rest.starts_with("values ") {
                out.push(current.trim().to_string());
                current.clear();
                continue;
            }
        }
        current.push(c);
    }
    let tail = current.trim();
    if !tail.is_empty() {
        out.push(tail.to_string());
    }
    out
}

/// Render a float array in PostgreSQL literal form (`{1.0,2.0}`), the
/// shape `fmu_parest` reports its estimation errors in.
pub fn format_float_array(values: &[f64]) -> String {
    let parts: Vec<String> = values.iter().map(|v| format!("{v}")).collect();
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_arrays() {
        assert_eq!(
            parse_ident_array("{HP1Instance1, HP1Instance2}"),
            vec!["HP1Instance1", "HP1Instance2"]
        );
        assert_eq!(parse_ident_array("{A,B}"), vec!["A", "B"]);
        assert_eq!(parse_ident_array("solo"), vec!["solo"]);
        assert_eq!(parse_ident_array("{}"), Vec::<String>::new());
        assert_eq!(parse_ident_array("  {  x }  "), vec!["x"]);
        assert_eq!(parse_ident_array(""), Vec::<String>::new());
    }

    #[test]
    fn sql_arrays_split_on_statement_boundaries() {
        let parsed = parse_sql_array("{SELECT * FROM measurements, SELECT * FROM measurements2}");
        assert_eq!(
            parsed,
            vec!["SELECT * FROM measurements", "SELECT * FROM measurements2"]
        );
    }

    #[test]
    fn sql_arrays_keep_internal_commas() {
        let parsed =
            parse_sql_array("{SELECT ts, x, u FROM m WHERE x IN (1, 2), SELECT ts, x FROM m2}");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], "SELECT ts, x, u FROM m WHERE x IN (1, 2)");
        assert_eq!(parsed[1], "SELECT ts, x FROM m2");
    }

    #[test]
    fn sql_array_without_braces_is_single_query() {
        assert_eq!(
            parse_sql_array("SELECT a, b FROM t"),
            vec!["SELECT a, b FROM t"]
        );
    }

    #[test]
    fn float_array_round_shape() {
        assert_eq!(format_float_array(&[0.5, 1.25]), "{0.5,1.25}");
        assert_eq!(format_float_array(&[]), "{}");
    }
}
