//! `fmu_control` — in-DBMS FMU-based dynamic optimization.
//!
//! The paper's future-work section (§9) announces "the adoption of various
//! model predictive control means, covering the optimization of control
//! inputs". This module implements a first cut: given a calibrated
//! instance, a horizon and a setpoint, it searches a piecewise-constant
//! control trajectory for one input variable, minimizing
//!
//! ```text
//!   Σ_k (x(t_k) − setpoint)²  +  λ · Σ_k u_k²
//! ```
//!
//! subject to the input's declared bounds, using the estimation crate's
//! projected quasi-Newton search (each control interval is one decision
//! variable).

use std::sync::atomic::{AtomicU64, Ordering};

use pgfmu_estimation::{local::run_local, EstimationConfig, Objective, ParamSpec};
use pgfmu_fmi::{Fmu, FmuInstance, InputSeries, InputSet, Interpolation, SimulationOptions};

use crate::error::{PgFmuError, Result};
use crate::session::Session;

struct ControlObjective {
    fmu: std::sync::Arc<Fmu>,
    instance: FmuInstance,
    input_name: String,
    bounds: Vec<ParamSpec>,
    horizon: f64,
    intervals: usize,
    setpoint: f64,
    effort_weight: f64,
    state_name: String,
    evals: AtomicU64,
}

impl ControlObjective {
    fn simulate_with(&self, controls: &[f64]) -> Result<f64> {
        let dt = self.horizon / self.intervals as f64;
        let times: Vec<f64> = (0..self.intervals).map(|k| k as f64 * dt).collect();
        let series = InputSeries::new(
            self.input_name.clone(),
            times,
            controls.to_vec(),
            Interpolation::Hold,
        )?;
        let names: Vec<&str> = self.fmu.input_names().iter().map(|s| s.as_str()).collect();
        let inputs = InputSet::bind(&names, vec![series])?;
        let result = self.instance.simulate(
            &inputs,
            &SimulationOptions {
                start: Some(0.0),
                stop: Some(self.horizon),
                output_step: Some(dt),
                ..Default::default()
            },
        )?;
        let xs = result
            .series(&self.state_name)
            .ok_or_else(|| PgFmuError::Usage("state series missing".into()))?;
        let tracking: f64 = xs
            .iter()
            .map(|x| (x - self.setpoint) * (x - self.setpoint))
            .sum();
        let effort: f64 = controls.iter().map(|u| u * u).sum();
        Ok(tracking / xs.len() as f64 + self.effort_weight * effort / controls.len() as f64)
    }
}

impl Objective for ControlObjective {
    fn dim(&self) -> usize {
        self.intervals
    }
    fn bounds(&self) -> &[ParamSpec] {
        &self.bounds
    }
    fn eval(&self, p: &[f64]) -> f64 {
        self.evals.fetch_add(1, Ordering::Relaxed);
        self.simulate_with(p).unwrap_or(1e9)
    }
    fn eval_count(&self) -> u64 {
        self.evals.load(Ordering::Relaxed)
    }
}

/// Optimize the control trajectory; returns `(hours, value)` pairs, one
/// per control interval.
#[allow(clippy::too_many_arguments)]
pub fn run_control(
    session: &Session,
    instance_id: &str,
    input_name: &str,
    horizon_hours: f64,
    intervals: usize,
    setpoint: f64,
    effort_weight: f64,
) -> Result<Vec<(f64, f64)>> {
    if !(horizon_hours.is_finite() && horizon_hours > 0.0) || intervals == 0 {
        return Err(PgFmuError::Usage(
            "fmu_control: horizon must be positive and intervals >= 1".into(),
        ));
    }
    if intervals > 64 {
        return Err(PgFmuError::Usage(
            "fmu_control: at most 64 control intervals are supported".into(),
        ));
    }
    let (fmu, instance) = session.catalog.instantiate(instance_id)?;
    if fmu.input_names().len() != 1 || fmu.input_names()[0] != input_name {
        return Err(PgFmuError::Usage(format!(
            "fmu_control: model '{}' must have exactly the input '{input_name}'",
            fmu.name()
        )));
    }
    let var = fmu.description.variable(input_name)?;
    let (lo, hi) = match (var.min, var.max) {
        (Some(lo), Some(hi)) => (lo, hi),
        _ => {
            return Err(PgFmuError::Usage(format!(
                "fmu_control: input '{input_name}' needs declared min/max bounds"
            )))
        }
    };
    let state_name = fmu
        .state_names()
        .first()
        .cloned()
        .ok_or_else(|| PgFmuError::Usage("fmu_control: model has no state".into()))?;

    let bounds: Vec<ParamSpec> = (0..intervals)
        .map(|k| ParamSpec {
            name: format!("u{k}"),
            lower: lo,
            upper: hi,
        })
        .collect();
    let objective = ControlObjective {
        fmu,
        instance,
        input_name: input_name.to_string(),
        bounds,
        horizon: horizon_hours,
        intervals,
        setpoint,
        effort_weight,
        state_name,
        evals: AtomicU64::new(0),
    };

    let cfg = EstimationConfig {
        local_max_iters: 40,
        ..*session.config.read()
    };
    let start = vec![(lo + hi) / 2.0; intervals];
    let outcome = run_local(&objective, &start, &cfg);
    let dt = horizon_hours / intervals as f64;
    Ok(outcome
        .params
        .into_iter()
        .enumerate()
        .map(|(k, u)| (k as f64 * dt, u))
        .collect())
}
