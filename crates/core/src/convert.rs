//! Conversion between SQL result sets and the FMI substrate's measurement
//! structures — the "implicit data conversions" of Challenge 2 (paper §5).

use pgfmu_estimation::MeasurementData;
use pgfmu_sqlmini::{QueryResult, Value};

use crate::error::{PgFmuError, Result};

/// A result set decoded into a time grid (epoch anchor + relative hours)
/// plus named numeric columns.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedTable {
    /// Epoch seconds of the first sample (anchor for rendering results).
    pub anchor_epoch: i64,
    /// Sample times in hours relative to the anchor.
    pub times_hours: Vec<f64>,
    /// Named numeric columns.
    pub columns: Vec<(String, Vec<f64>)>,
}

impl DecodedTable {
    /// Convert to the estimation crate's measurement container.
    pub fn to_measurement_data(&self) -> Result<MeasurementData> {
        MeasurementData::new(self.times_hours.clone(), self.columns.clone())
            .map_err(PgFmuError::Fmi)
    }

    /// Hours value for an absolute epoch timestamp.
    pub fn hours_for_epoch(&self, epoch: i64) -> f64 {
        (epoch - self.anchor_epoch) as f64 / 3600.0
    }

    /// Epoch timestamp for an hours value.
    pub fn epoch_for_hours(&self, hours: f64) -> i64 {
        self.anchor_epoch + (hours * 3600.0).round() as i64
    }
}

/// Names conventionally recognized as time columns when no timestamp-typed
/// column is present.
const TIME_COLUMN_NAMES: [&str; 5] = ["ts", "time", "timestamp", "simulationtime", "datetime"];

/// Single-pass, streaming decoder for measurement result sets: rows are
/// pushed one at a time (e.g. straight off a [`pgfmu_sqlmini::Rows`]
/// cursor), so the SQL result is never materialized as a whole.
///
/// The time column is found automatically from the first row: the first
/// column holding a `timestamp` value, else the first column with a
/// conventional time name. All remaining numeric columns become
/// measurement series; NULLs are rejected (the paper's UDFs raise errors
/// on incomplete inputs).
struct TableDecoder {
    time_idx: usize,
    epochs: Vec<i64>,
    /// `(name, values)` per non-time column; `None` once a column proved
    /// non-numeric and dropped out.
    columns: Vec<(String, Option<Vec<f64>>)>,
}

impl TableDecoder {
    fn new(columns: &[String], first: &[Value]) -> Result<TableDecoder> {
        let mut time_idx: Option<usize> = None;
        for (i, _) in columns.iter().enumerate() {
            if matches!(first[i], Value::Timestamp(_)) {
                time_idx = Some(i);
                break;
            }
        }
        if time_idx.is_none() {
            for (i, name) in columns.iter().enumerate() {
                if TIME_COLUMN_NAMES.contains(&name.as_str()) {
                    time_idx = Some(i);
                    break;
                }
            }
        }
        let time_idx = time_idx.ok_or_else(|| {
            PgFmuError::Usage(
                "input query has no timestamp column (expected a timestamp-typed \
                 column or one named ts/time/timestamp)"
                    .into(),
            )
        })?;
        let mut decoder = TableDecoder {
            time_idx,
            epochs: Vec::new(),
            columns: columns
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != time_idx)
                .map(|(_, n)| (n.clone(), Some(Vec::new())))
                .collect(),
        };
        decoder.push(first)?;
        Ok(decoder)
    }

    fn push(&mut self, row: &[Value]) -> Result<()> {
        let epoch = match &row[self.time_idx] {
            Value::Timestamp(t) => *t,
            Value::Text(s) => pgfmu_sqlmini::parse_timestamp(s).map_err(PgFmuError::Sql)?,
            // Numeric time columns are interpreted as hours.
            Value::Int(i) => i * 3600,
            Value::Float(f) => (f * 3600.0).round() as i64,
            other => {
                return Err(PgFmuError::Usage(format!(
                    "cannot interpret {other} as a timestamp"
                )))
            }
        };
        self.epochs.push(epoch);
        let mut vi = 0usize;
        for (i, v) in row.iter().enumerate() {
            if i == self.time_idx {
                continue;
            }
            let (name, col) = &mut self.columns[vi];
            vi += 1;
            let Some(values) = col else { continue };
            match v.as_f64() {
                Ok(x) => values.push(x),
                Err(_) if v.is_null() => {
                    return Err(PgFmuError::Usage(format!(
                        "input column \"{name}\" contains NULLs"
                    )))
                }
                Err(_) => *col = None,
            }
        }
        Ok(())
    }

    fn finish(self) -> Result<DecodedTable> {
        let anchor = self.epochs[0];
        let times_hours: Vec<f64> = self
            .epochs
            .iter()
            .map(|e| (e - anchor) as f64 / 3600.0)
            .collect();
        let columns: Vec<(String, Vec<f64>)> = self
            .columns
            .into_iter()
            .filter_map(|(n, c)| c.map(|c| (n, c)))
            .collect();
        if columns.is_empty() {
            return Err(PgFmuError::Usage(
                "input query produced no numeric measurement columns".into(),
            ));
        }
        Ok(DecodedTable {
            anchor_epoch: anchor,
            times_hours,
            columns,
        })
    }
}

/// Decode a materialized query result into measurement structures (see
/// [`decode_rows`] for the streaming variant and the column conventions).
pub fn decode_table(q: &QueryResult) -> Result<DecodedTable> {
    if q.rows.is_empty() {
        return Err(PgFmuError::Usage("input query returned no rows".into()));
    }
    let mut decoder = TableDecoder::new(&q.columns, &q.rows[0])?;
    for row in &q.rows[1..] {
        decoder.push(row)?;
    }
    decoder.finish()
}

/// Decode a streamed result-row cursor into measurement structures in one
/// pass — the path `fmu_parest` / `fmu_simulate` use for their re-entrant
/// `input_sql` queries, so the input result set is consumed row by row
/// instead of being materialized first.
pub fn decode_rows<I>(columns: &[String], rows: I) -> Result<DecodedTable>
where
    I: IntoIterator<Item = pgfmu_sqlmini::Result<pgfmu_sqlmini::Row>>,
{
    let mut rows = rows.into_iter();
    let first = rows
        .next()
        .ok_or_else(|| PgFmuError::Usage("input query returned no rows".into()))?
        .map_err(PgFmuError::Sql)?;
    let mut decoder = TableDecoder::new(columns, &first)?;
    for row in rows {
        decoder.push(&row.map_err(PgFmuError::Sql)?)?;
    }
    decoder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgfmu_sqlmini::Database;

    fn table(sql_rows: &str) -> QueryResult {
        let db = Database::new();
        db.execute("CREATE TABLE m (ts timestamp, x float, u float, note text)")
            .unwrap();
        db.execute(&format!("INSERT INTO m VALUES {sql_rows}"))
            .unwrap();
        db.execute("SELECT * FROM m ORDER BY ts").unwrap()
    }

    #[test]
    fn decodes_timestamps_and_numeric_columns() {
        let q =
            table("('2015-02-01 00:00', 20.75, 0.0, 'a'), ('2015-02-01 01:00', 23.62, 0.02, 'b')");
        let d = decode_table(&q).unwrap();
        assert_eq!(d.times_hours, vec![0.0, 1.0]);
        assert_eq!(d.columns.len(), 2, "text column must be skipped");
        assert_eq!(d.columns[0].0, "x");
        let md = d.to_measurement_data().unwrap();
        assert_eq!(md.step(), 1.0);
    }

    #[test]
    fn anchor_round_trips() {
        let q = table("('2015-02-01 00:00', 1.0, 0.0, ''), ('2015-02-01 01:00', 2.0, 0.0, '')");
        let d = decode_table(&q).unwrap();
        let epoch = d.epoch_for_hours(2.5);
        assert_eq!(d.hours_for_epoch(epoch), 2.5);
    }

    #[test]
    fn empty_result_errors() {
        let db = Database::new();
        db.execute("CREATE TABLE e (ts timestamp, x float)")
            .unwrap();
        let q = db.execute("SELECT * FROM e").unwrap();
        assert!(decode_table(&q).is_err());
    }

    #[test]
    fn missing_time_column_errors() {
        let db = Database::new();
        db.execute("CREATE TABLE e (a float, b float)").unwrap();
        db.execute("INSERT INTO e VALUES (1.0, 2.0)").unwrap();
        let q = db.execute("SELECT * FROM e").unwrap();
        let err = decode_table(&q).unwrap_err();
        assert!(err.to_string().contains("timestamp column"));
    }

    #[test]
    fn numeric_time_column_by_name() {
        let db = Database::new();
        db.execute("CREATE TABLE e (time float, v float)").unwrap();
        db.execute("INSERT INTO e VALUES (0.0, 1.0), (0.5, 2.0)")
            .unwrap();
        let q = db.execute("SELECT * FROM e ORDER BY time").unwrap();
        let d = decode_table(&q).unwrap();
        assert_eq!(d.times_hours, vec![0.0, 0.5]);
    }

    #[test]
    fn nulls_are_rejected() {
        let db = Database::new();
        db.execute("CREATE TABLE e (ts timestamp, v float)")
            .unwrap();
        db.execute("INSERT INTO e VALUES ('2015-01-01 00:00', NULL)")
            .unwrap();
        let q = db.execute("SELECT * FROM e").unwrap();
        assert!(decode_table(&q).unwrap_err().to_string().contains("NULL"));
    }
}
