//! Conversion between SQL result sets and the FMI substrate's measurement
//! structures — the "implicit data conversions" of Challenge 2 (paper §5).

use pgfmu_estimation::MeasurementData;
use pgfmu_sqlmini::{QueryResult, Value};

use crate::error::{PgFmuError, Result};

/// A result set decoded into a time grid (epoch anchor + relative hours)
/// plus named numeric columns.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedTable {
    /// Epoch seconds of the first sample (anchor for rendering results).
    pub anchor_epoch: i64,
    /// Sample times in hours relative to the anchor.
    pub times_hours: Vec<f64>,
    /// Named numeric columns.
    pub columns: Vec<(String, Vec<f64>)>,
}

impl DecodedTable {
    /// Convert to the estimation crate's measurement container.
    pub fn to_measurement_data(&self) -> Result<MeasurementData> {
        MeasurementData::new(self.times_hours.clone(), self.columns.clone())
            .map_err(PgFmuError::Fmi)
    }

    /// Hours value for an absolute epoch timestamp.
    pub fn hours_for_epoch(&self, epoch: i64) -> f64 {
        (epoch - self.anchor_epoch) as f64 / 3600.0
    }

    /// Epoch timestamp for an hours value.
    pub fn epoch_for_hours(&self, hours: f64) -> i64 {
        self.anchor_epoch + (hours * 3600.0).round() as i64
    }
}

/// Names conventionally recognized as time columns when no timestamp-typed
/// column is present.
const TIME_COLUMN_NAMES: [&str; 5] = ["ts", "time", "timestamp", "simulationtime", "datetime"];

/// Decode a query result into measurement structures.
///
/// The time column is found automatically: the first column holding
/// `timestamp` values, else the first column with a conventional time
/// name. All remaining numeric columns become measurement series; NULLs
/// are rejected (the paper's UDFs raise errors on incomplete inputs).
pub fn decode_table(q: &QueryResult) -> Result<DecodedTable> {
    if q.rows.is_empty() {
        return Err(PgFmuError::Usage("input query returned no rows".into()));
    }
    // Locate the time column.
    let mut time_idx: Option<usize> = None;
    for (i, _) in q.columns.iter().enumerate() {
        if matches!(q.rows[0][i], Value::Timestamp(_)) {
            time_idx = Some(i);
            break;
        }
    }
    if time_idx.is_none() {
        for (i, name) in q.columns.iter().enumerate() {
            if TIME_COLUMN_NAMES.contains(&name.as_str()) {
                time_idx = Some(i);
                break;
            }
        }
    }
    let time_idx = time_idx.ok_or_else(|| {
        PgFmuError::Usage(
            "input query has no timestamp column (expected a timestamp-typed \
             column or one named ts/time/timestamp)"
                .into(),
        )
    })?;

    let mut epochs = Vec::with_capacity(q.rows.len());
    for row in &q.rows {
        let epoch = match &row[time_idx] {
            Value::Timestamp(t) => *t,
            Value::Text(s) => pgfmu_sqlmini::parse_timestamp(s).map_err(PgFmuError::Sql)?,
            // Numeric time columns are interpreted as hours.
            Value::Int(i) => i * 3600,
            Value::Float(f) => (f * 3600.0).round() as i64,
            other => {
                return Err(PgFmuError::Usage(format!(
                    "cannot interpret {other} as a timestamp"
                )))
            }
        };
        epochs.push(epoch);
    }
    let anchor = epochs[0];
    let times_hours: Vec<f64> = epochs
        .iter()
        .map(|e| (e - anchor) as f64 / 3600.0)
        .collect();

    let mut columns = Vec::new();
    for (i, name) in q.columns.iter().enumerate() {
        if i == time_idx {
            continue;
        }
        let mut col = Vec::with_capacity(q.rows.len());
        let mut numeric = true;
        for row in &q.rows {
            match row[i].as_f64() {
                Ok(v) => col.push(v),
                Err(_) if row[i].is_null() => {
                    return Err(PgFmuError::Usage(format!(
                        "input column \"{name}\" contains NULLs"
                    )))
                }
                Err(_) => {
                    numeric = false;
                    break;
                }
            }
        }
        if numeric {
            columns.push((name.clone(), col));
        }
    }
    if columns.is_empty() {
        return Err(PgFmuError::Usage(
            "input query produced no numeric measurement columns".into(),
        ));
    }
    Ok(DecodedTable {
        anchor_epoch: anchor,
        times_hours,
        columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgfmu_sqlmini::Database;

    fn table(sql_rows: &str) -> QueryResult {
        let db = Database::new();
        db.execute("CREATE TABLE m (ts timestamp, x float, u float, note text)")
            .unwrap();
        db.execute(&format!("INSERT INTO m VALUES {sql_rows}"))
            .unwrap();
        db.execute("SELECT * FROM m ORDER BY ts").unwrap()
    }

    #[test]
    fn decodes_timestamps_and_numeric_columns() {
        let q =
            table("('2015-02-01 00:00', 20.75, 0.0, 'a'), ('2015-02-01 01:00', 23.62, 0.02, 'b')");
        let d = decode_table(&q).unwrap();
        assert_eq!(d.times_hours, vec![0.0, 1.0]);
        assert_eq!(d.columns.len(), 2, "text column must be skipped");
        assert_eq!(d.columns[0].0, "x");
        let md = d.to_measurement_data().unwrap();
        assert_eq!(md.step(), 1.0);
    }

    #[test]
    fn anchor_round_trips() {
        let q = table("('2015-02-01 00:00', 1.0, 0.0, ''), ('2015-02-01 01:00', 2.0, 0.0, '')");
        let d = decode_table(&q).unwrap();
        let epoch = d.epoch_for_hours(2.5);
        assert_eq!(d.hours_for_epoch(epoch), 2.5);
    }

    #[test]
    fn empty_result_errors() {
        let db = Database::new();
        db.execute("CREATE TABLE e (ts timestamp, x float)")
            .unwrap();
        let q = db.execute("SELECT * FROM e").unwrap();
        assert!(decode_table(&q).is_err());
    }

    #[test]
    fn missing_time_column_errors() {
        let db = Database::new();
        db.execute("CREATE TABLE e (a float, b float)").unwrap();
        db.execute("INSERT INTO e VALUES (1.0, 2.0)").unwrap();
        let q = db.execute("SELECT * FROM e").unwrap();
        let err = decode_table(&q).unwrap_err();
        assert!(err.to_string().contains("timestamp column"));
    }

    #[test]
    fn numeric_time_column_by_name() {
        let db = Database::new();
        db.execute("CREATE TABLE e (time float, v float)").unwrap();
        db.execute("INSERT INTO e VALUES (0.0, 1.0), (0.5, 2.0)")
            .unwrap();
        let q = db.execute("SELECT * FROM e ORDER BY time").unwrap();
        let d = decode_table(&q).unwrap();
        assert_eq!(d.times_hours, vec![0.0, 0.5]);
    }

    #[test]
    fn nulls_are_rejected() {
        let db = Database::new();
        db.execute("CREATE TABLE e (ts timestamp, v float)")
            .unwrap();
        db.execute("INSERT INTO e VALUES ('2015-01-01 00:00', NULL)")
            .unwrap();
        let q = db.execute("SELECT * FROM e").unwrap();
        assert!(decode_table(&q).unwrap_err().to_string().contains("NULL"));
    }
}
