//! Unified error type of the pgFMU extension.

use std::fmt;

use pgfmu_catalog::CatalogError;
use pgfmu_fmi::FmiError;
use pgfmu_modelica::ModelicaError;
use pgfmu_sqlmini::SqlError;

/// Convenient alias used across the crate.
pub type Result<T> = std::result::Result<T, PgFmuError>;

/// Any error surfacing from a pgFMU UDF.
#[derive(Debug)]
pub enum PgFmuError {
    /// SQL engine failure.
    Sql(SqlError),
    /// Catalogue failure.
    Catalog(CatalogError),
    /// FMI substrate failure.
    Fmi(FmiError),
    /// Modelica compilation failure.
    Modelica(ModelicaError),
    /// Invalid UDF arguments or unsupported model reference.
    Usage(String),
}

impl fmt::Display for PgFmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PgFmuError::Sql(e) => write!(f, "{e}"),
            PgFmuError::Catalog(e) => write!(f, "{e}"),
            PgFmuError::Fmi(e) => write!(f, "{e}"),
            PgFmuError::Modelica(e) => write!(f, "{e}"),
            PgFmuError::Usage(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for PgFmuError {}

impl From<SqlError> for PgFmuError {
    fn from(e: SqlError) -> Self {
        PgFmuError::Sql(e)
    }
}

impl From<CatalogError> for PgFmuError {
    fn from(e: CatalogError) -> Self {
        PgFmuError::Catalog(e)
    }
}

impl From<FmiError> for PgFmuError {
    fn from(e: FmiError) -> Self {
        PgFmuError::Fmi(e)
    }
}

impl From<ModelicaError> for PgFmuError {
    fn from(e: ModelicaError) -> Self {
        PgFmuError::Modelica(e)
    }
}

/// Convert a pgFMU error into the SQL error users see at the query level.
impl From<PgFmuError> for SqlError {
    fn from(e: PgFmuError) -> Self {
        match e {
            PgFmuError::Sql(s) => s,
            other => SqlError::Execution(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let e: PgFmuError = SqlError::UnknownTable("m".into()).into();
        assert!(e.to_string().contains("\"m\""));
        let s: SqlError = PgFmuError::Usage("bad arg".into()).into();
        assert!(s.to_string().contains("bad arg"));
        let s2: SqlError = PgFmuError::Sql(SqlError::Parse("x".into())).into();
        assert!(matches!(s2, SqlError::Parse(_)));
    }
}
