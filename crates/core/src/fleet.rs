//! Fleet execution: cross-instance fan-out of `fmu_simulate` and
//! `fmu_parest` over a worker pool.
//!
//! The paper's evaluation simulates and calibrates *fleets* of model
//! instances (§8: one heat-pump model per house). This module runs such
//! batches concurrently: one pooled task per instance, each reusing the
//! solver's per-thread [`Scratch`](pgfmu_fmi::solver::Scratch) slot and
//! writing its results through MVCC like any other session.
//!
//! ## Session rule
//!
//! Transaction sessions in the engine are keyed by *thread*. A pooled
//! worker is a long-lived thread that serves many unrelated tasks, so a
//! task that leaked an open transaction (bug, panic, early return)
//! would otherwise hand its successor a dirty session. Every fleet task
//! therefore runs under a [`WorkerSessionGuard`], which resets the
//! worker's transaction session on entry *and* on drop — tasks run
//! auto-commit, and no state crosses task boundaries.
//!
//! Long-lived pooled workers also interact well with the engine's
//! sharded version storage: each worker thread is assigned a *home
//! shard* on its first write and keeps it for life, so concurrent
//! fleet tasks appending results or catalogue state land in distinct
//! append arenas and proceed in parallel instead of serializing on one
//! table lock. Session resets do not disturb shard affinity — it is
//! keyed by thread identity, not transaction state.
//!
//! ## Determinism contract
//!
//! Fan-out never changes results: tasks are independent (each touches
//! only its own instance), outputs are collected in instance order, and
//! all estimation randomness is re-seeded per instance. Any worker
//! count — including 1 — produces byte-identical result tables and
//! parameter vectors; the serial-equivalence suite in
//! `crates/core/tests/fleet.rs` pins this.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use threadpool::ThreadPool;

use pgfmu_sqlmini::{Database, QueryResult};

use crate::error::{PgFmuError, Result};
use crate::parest::{run_parest_in, ParestReport};
use crate::session::Session;
use crate::simulate::{run_simulate, TimeSpec};

/// Resets a pooled worker's thread-keyed transaction session on entry
/// and again on drop, so tasks always start from — and leave behind — a
/// clean auto-commit session, even when the previous task leaked an
/// open transaction or unwound mid-write.
pub struct WorkerSessionGuard<'a> {
    db: &'a Database,
}

impl<'a> WorkerSessionGuard<'a> {
    /// Enter a task: roll back whatever transaction state the worker
    /// thread may have inherited.
    pub fn enter(db: &'a Database) -> Self {
        db.reset_session();
        WorkerSessionGuard { db }
    }
}

impl Drop for WorkerSessionGuard<'_> {
    fn drop(&mut self) {
        self.db.reset_session();
    }
}

/// Default fleet worker count: the machine's available parallelism,
/// capped at 8 (fleet tasks are solver-bound; more workers than cores
/// only adds scheduling noise).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Resolve a user-supplied worker-count argument: `None` or `0` means
/// [`default_workers`], anything else is taken as given (minimum 1).
pub fn resolve_workers(requested: Option<usize>) -> usize {
    match requested {
        None | Some(0) => default_workers(),
        Some(n) => n.max(1),
    }
}

/// Execute `fmu_simulate` for every instance of a fleet concurrently and
/// return the concatenated long output table, in instance order — byte
/// for byte what a serial loop of [`run_simulate`] calls produces.
///
/// Each task simulates one instance (persisting its final state back to
/// the catalogue, as always) under a [`WorkerSessionGuard`]. A panicking
/// task cancels the unstarted tail and surfaces as an error; completed
/// siblings' catalogue writes remain, like a failing statement inside a
/// serial batch.
pub fn run_simulate_fleet(
    session: &Session,
    instance_ids: &[String],
    input_sql: Option<&str>,
    time_from: Option<TimeSpec>,
    time_to: Option<TimeSpec>,
    workers: Option<usize>,
) -> Result<QueryResult> {
    if instance_ids.is_empty() {
        return Err(PgFmuError::Usage(
            "fmu_simulate_fleet: no model instances supplied".into(),
        ));
    }
    let workers = resolve_workers(workers);
    let pool = ThreadPool::new(workers);
    let task_ns = AtomicU64::new(0);
    let outputs = pool
        .run(instance_ids.len(), |i| {
            let _guard = WorkerSessionGuard::enter(&session.db);
            let t0 = Instant::now();
            let out = run_simulate(session, &instance_ids[i], input_sql, time_from, time_to);
            task_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            out
        })
        .map_err(|e| PgFmuError::Usage(format!("fmu_simulate_fleet: worker task panicked: {e}")))?;
    session.db.note_fleet(
        instance_ids.len() as u64,
        workers as u64,
        task_ns.load(Ordering::Relaxed),
    );
    // Concatenate in instance order (the pool already returns slots in
    // index order): identical to the serial loop's row stream.
    let mut iter = outputs.into_iter();
    let mut combined = iter.next().expect("at least one instance")?;
    for out in iter {
        combined.rows.extend(out?.rows);
    }
    Ok(combined)
}

/// Execute `fmu_parest` for a fleet with pooled estimation: the batch's
/// objective evaluations (GA populations, multi-start local searches,
/// MI instance tails) fan out over `workers` threads, and with MI
/// disabled whole instances are estimated concurrently. Reports come
/// back in instance order and are byte-identical to the serial path.
pub fn run_parest_fleet(
    session: &Session,
    instance_ids: &[String],
    input_sqls: &[String],
    pars: Option<&[String]>,
    threshold: Option<f64>,
    workers: Option<usize>,
) -> Result<Vec<ParestReport>> {
    let workers = resolve_workers(workers);
    let pool = ThreadPool::new(workers);
    let t0 = Instant::now();
    let reports = run_parest_in(
        session,
        instance_ids,
        input_sqls,
        pars,
        threshold,
        Some(&pool),
    )?;
    session.db.note_fleet(
        reports.len() as u64,
        workers as u64,
        t0.elapsed().as_nanos() as u64,
    );
    Ok(reports)
}
