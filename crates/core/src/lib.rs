//! # pgfmu — in-DBMS storage, simulation and calibration of FMU models
//!
//! A from-scratch Rust reproduction of *pgFMU: Integrating Data Management
//! with Physical System Modelling* (EDBT 2020). pgFMU extends a relational
//! DBMS with SQL UDFs for Functional Mock-up Units so that "cyber-physical
//! data scientists" can store, simulate and calibrate physical models
//! without leaving the database.
//!
//! ```
//! use pgfmu::PgFmu;
//!
//! let session = PgFmu::new().unwrap();
//! // Create an instance of a heat-pump model from inline Modelica source.
//! session.execute(
//!     "SELECT fmu_create('model decay \
//!        parameter Real k(min=0, max=10) = 0.5; \
//!        Real x(start = 8); \
//!      equation der(x) = -k*x; end decay;', 'Decay1')",
//! ).unwrap();
//! // Simulate it over the default experiment window.
//! let out = session
//!     .execute("SELECT * FROM fmu_simulate('Decay1') WHERE varname = 'x'")
//!     .unwrap();
//! assert_eq!(out.len(), 25);
//! ```
//!
//! The SQL surface follows the paper: [`PgFmu`] registers `fmu_create`,
//! `fmu_copy`, `fmu_variables`, `fmu_get`, `fmu_set_initial`,
//! `fmu_set_minimum`, `fmu_set_maximum`, `fmu_reset`,
//! `fmu_delete_instance`, `fmu_delete_model`, `fmu_parest` (with the
//! multi-instance optimization of §6) and `fmu_simulate` (§7), plus the
//! future-work `fmu_control` and the MADlib-like analytics UDFs of
//! `pgfmu-analytics`. Fleet-scale batches run concurrently through
//! `fmu_simulate_fleet` / `fmu_parest_fleet` (see [`fleet`]), with
//! results byte-identical to the serial loop for any worker count. All of them are declared through the typed UDF
//! builder ([`pgfmu_sqlmini::Database::udf`]), which centralizes argument
//! coercion and arity errors.
//!
//! ## Prepared statements and typed decoding
//!
//! Beyond `execute`, the session exposes the full prepare/bind/decode
//! surface of the engine — the paper's §7 "prepared SQL queries"
//! optimization as a client API. [`PgFmu::prepare`] parses once (cached
//! by text, bounded LRU); [`PgFmu::query`] binds `$1..$n` values without
//! literal quoting; [`PgFmu::query_as`] decodes rows into Rust types via
//! [`FromRow`]/[`FromValue`]; and [`pgfmu_sqlmini::Statement::query_rows`]
//! streams results. Engine counters (statement-cache hit rate, per-UDF
//! call counts) are queryable in SQL via `SELECT * FROM pgfmu_stats()`.
//!
//! ```
//! use pgfmu::PgFmu;
//! use pgfmu_sqlmini::params;
//!
//! let session = PgFmu::new().unwrap();
//! session.execute("CREATE TABLE m (ts timestamp, u float)").unwrap();
//! let insert = session.prepare("INSERT INTO m VALUES ($1, $2)").unwrap();
//! for (h, u) in [(0i64, 0.3), (1, 0.9)] {
//!     insert
//!         .query(params![format!("2015-02-01 0{h}:00"), u])
//!         .unwrap();
//! }
//! let rows: Vec<(i64, f64)> = session
//!     .query_as("SELECT count(*), max(u) FROM m WHERE u > $1", params![0.0])
//!     .unwrap();
//! assert_eq!(rows, vec![(2, 0.9)]);
//! ```
//!
//! ## Grouped analytics over simulated output
//!
//! `fmu_simulate` returns an ordinary long-format relation
//! `(simulationtime, instanceid, varname, value)`, so the engine's
//! grouped aggregation composes with it directly — the paper's
//! MADlib-style combos (per-variable, per-day, per-instance rollups)
//! are one statement each:
//!
//! ```
//! use pgfmu::{params, PgFmu};
//!
//! let session = PgFmu::new().unwrap();
//! session.execute("SELECT fmu_create('HP0', 'i')").unwrap();
//! let rollup: Vec<(String, i64)> = session
//!     .query_as(
//!         "SELECT varname, count(*) FROM fmu_simulate($1) \
//!          GROUP BY varname HAVING count(*) > $2 ORDER BY varname",
//!         params!["i", 0],
//!     )
//!     .unwrap();
//! assert!(!rollup.is_empty());
//! ```

pub mod arrays;
pub mod control;
pub mod convert;
pub mod error;
pub mod fleet;
pub mod parest;
pub mod session;
pub mod simulate;
pub mod udfs;

pub use error::{PgFmuError, Result};
pub use fleet::{default_workers, WorkerSessionGuard};
pub use parest::ParestReport;
pub use session::PgFmu;
pub use simulate::{SimRows, TimeSpec};

// Re-export the pieces users commonly touch alongside the session.
pub use pgfmu_estimation::{EstimationConfig, Strategy};
pub use pgfmu_sqlmini::{
    params, ArgKind, Args, FromRow, FromValue, NamedRow, NamedRows, OwnedNamedRow, QueryResult,
    Rows, Statement, Value,
};
