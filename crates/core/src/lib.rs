//! # pgfmu — in-DBMS storage, simulation and calibration of FMU models
//!
//! A from-scratch Rust reproduction of *pgFMU: Integrating Data Management
//! with Physical System Modelling* (EDBT 2020). pgFMU extends a relational
//! DBMS with SQL UDFs for Functional Mock-up Units so that "cyber-physical
//! data scientists" can store, simulate and calibrate physical models
//! without leaving the database.
//!
//! ```
//! use pgfmu::PgFmu;
//!
//! let session = PgFmu::new().unwrap();
//! // Create an instance of a heat-pump model from inline Modelica source.
//! session.execute(
//!     "SELECT fmu_create('model decay \
//!        parameter Real k(min=0, max=10) = 0.5; \
//!        Real x(start = 8); \
//!      equation der(x) = -k*x; end decay;', 'Decay1')",
//! ).unwrap();
//! // Simulate it over the default experiment window.
//! let out = session
//!     .execute("SELECT * FROM fmu_simulate('Decay1') WHERE varname = 'x'")
//!     .unwrap();
//! assert_eq!(out.len(), 25);
//! ```
//!
//! The SQL surface follows the paper: [`PgFmu`] registers `fmu_create`,
//! `fmu_copy`, `fmu_variables`, `fmu_get`, `fmu_set_initial`,
//! `fmu_set_minimum`, `fmu_set_maximum`, `fmu_reset`,
//! `fmu_delete_instance`, `fmu_delete_model`, `fmu_parest` (with the
//! multi-instance optimization of §6) and `fmu_simulate` (§7), plus the
//! future-work `fmu_control` and the MADlib-like analytics UDFs of
//! `pgfmu-analytics`.

pub mod arrays;
pub mod control;
pub mod convert;
pub mod error;
pub mod parest;
pub mod session;
pub mod simulate;
pub mod udfs;

pub use error::{PgFmuError, Result};
pub use parest::ParestReport;
pub use session::PgFmu;
pub use simulate::TimeSpec;

// Re-export the pieces users commonly touch alongside the session.
pub use pgfmu_estimation::{EstimationConfig, Strategy};
pub use pgfmu_sqlmini::{QueryResult, Value};
