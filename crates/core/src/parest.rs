//! `fmu_parest` — model parameter estimation (paper §6, Algorithms 2 & 3).

use std::sync::Arc;
use std::time::Duration;

use pgfmu_estimation::{
    estimate_mi_in, estimate_si, EstimationConfig, MiProblem, SimulationObjective, Strategy,
};
use threadpool::ThreadPool;

use crate::convert::decode_rows;
use crate::error::{PgFmuError, Result};
use crate::session::Session;

/// Per-instance estimation report — what the UDF surfaces, plus the
/// timing/effort breakdown the evaluation section analyses.
#[derive(Debug, Clone, PartialEq)]
pub struct ParestReport {
    /// Instance identifier.
    pub instance_id: String,
    /// Estimated parameter names (in estimation order).
    pub pars: Vec<String>,
    /// Estimated parameter values.
    pub params: Vec<f64>,
    /// Estimation RMSE (the UDF's return value).
    pub rmse: f64,
    /// G+LaG or LO.
    pub strategy: Strategy,
    /// Objective evaluations in the global phase.
    pub global_evals: u64,
    /// Objective evaluations in the local phase.
    pub local_evals: u64,
    /// Wall time of the global phase.
    pub global_time: Duration,
    /// Wall time of the local phase.
    pub local_time: Duration,
}

/// Execute `fmu_parest` for a batch of instances.
///
/// * `input_sqls` must have one query per instance, or a single query that
///   is reused for every instance.
/// * `pars` defaults to all tunable parameters of each instance's model
///   (paper §6: "By default, the function estimates all model
///   parameters").
/// * `threshold` overrides the MI similarity threshold (default 20 %).
///
/// With the session's MI optimization enabled (pgFMU+), multi-instance
/// batches follow Algorithm 3; otherwise (pgFMU−) every instance runs the
/// full G+LaG pipeline of Algorithm 2.
pub fn run_parest(
    session: &Session,
    instance_ids: &[String],
    input_sqls: &[String],
    pars: Option<&[String]>,
    threshold: Option<f64>,
) -> Result<Vec<ParestReport>> {
    run_parest_in(session, instance_ids, input_sqls, pars, threshold, None)
}

/// [`run_parest`] against a caller-provided worker pool (`None` =
/// serial). With a pool, MI batches fan their post-anchor tail out via
/// [`estimate_mi_in`], and non-MI batches estimate whole instances
/// concurrently. Reports come back in instance order and — because every
/// instance re-seeds its RNG from the shared config — are byte-identical
/// to the serial path for any pool width.
pub fn run_parest_in(
    session: &Session,
    instance_ids: &[String],
    input_sqls: &[String],
    pars: Option<&[String]>,
    threshold: Option<f64>,
    pool: Option<&ThreadPool>,
) -> Result<Vec<ParestReport>> {
    if instance_ids.is_empty() {
        return Err(PgFmuError::Usage(
            "fmu_parest: no model instances supplied".into(),
        ));
    }
    if input_sqls.len() != instance_ids.len() && input_sqls.len() != 1 {
        return Err(PgFmuError::Usage(format!(
            "fmu_parest: {} instances but {} input queries (need one per \
             instance, or a single shared query)",
            instance_ids.len(),
            input_sqls.len()
        )));
    }

    let mut cfg: EstimationConfig = *session.config.read();
    if let Some(t) = threshold {
        if !(t.is_finite() && t >= 0.0) {
            return Err(PgFmuError::Usage(format!(
                "fmu_parest: invalid similarity threshold {t}"
            )));
        }
        cfg.mi_threshold = t;
    }

    // Build one objective per instance.
    let mut problems: Vec<MiProblem> = Vec::with_capacity(instance_ids.len());
    let mut pars_per_instance: Vec<Vec<String>> = Vec::with_capacity(instance_ids.len());
    for (i, id) in instance_ids.iter().enumerate() {
        let sql = if input_sqls.len() == 1 {
            &input_sqls[0]
        } else {
            &input_sqls[i]
        };
        // Stream the user's input query row by row into the one-pass
        // decoder — the re-entrant result set is never materialized.
        let result_rows = session.db.query_rows(sql, &[])?;
        let cols = result_rows.columns().to_vec();
        let decoded = decode_rows(&cols, result_rows)?;
        let data = decoded.to_measurement_data()?;

        let instance_pars: Vec<String> = match pars {
            Some(p) if !p.is_empty() => p.to_vec(),
            _ => session.catalog.tunable_parameters(id)?,
        };
        if instance_pars.is_empty() {
            return Err(PgFmuError::Usage(format!(
                "fmu_parest: model of instance '{id}' has no tunable parameters"
            )));
        }
        let fmu = session.catalog.fmu_for_estimation(id)?;
        let (_, inst) = session.catalog.instantiate(id)?;
        let objective = SimulationObjective::new(
            Arc::clone(&fmu),
            inst.param_values(),
            inst.start_state(),
            &instance_pars,
            &data,
        )?;
        problems.push(MiProblem {
            instance_id: id.clone(),
            model_key: session.catalog.instance_model(id)?.to_string(),
            objective: Arc::new(objective),
            similarity_series: data.series_for_similarity(),
        });
        pars_per_instance.push(instance_pars);
    }

    // Estimate.
    let mi = session
        .mi_enabled
        .load(std::sync::atomic::Ordering::Relaxed)
        && problems.len() > 1;
    let outcomes = if mi {
        estimate_mi_in(&problems, &cfg, pool)
    } else {
        match pool {
            Some(pool) if problems.len() > 1 => pool
                .run(problems.len(), |i| {
                    estimate_si(problems[i].objective.as_ref(), &cfg)
                })
                .map_err(|e| PgFmuError::Usage(format!("fmu_parest: worker task panicked: {e}")))?,
            _ => problems
                .iter()
                .map(|p| estimate_si(p.objective.as_ref(), &cfg))
                .collect(),
        }
    };

    // Write estimates back to the catalogue and assemble reports.
    let mut reports = Vec::with_capacity(outcomes.len());
    for ((outcome, id), instance_pars) in outcomes
        .into_iter()
        .zip(instance_ids)
        .zip(pars_per_instance)
    {
        let updates: Vec<(String, f64)> = instance_pars
            .iter()
            .cloned()
            .zip(outcome.params.iter().copied())
            .collect();
        session.catalog.update_values(id, &updates)?;
        reports.push(ParestReport {
            instance_id: id.clone(),
            pars: instance_pars,
            params: outcome.params,
            rmse: outcome.rmse,
            strategy: outcome.strategy,
            global_evals: outcome.global_evals,
            local_evals: outcome.local_evals,
            global_time: outcome.global_time,
            local_time: outcome.local_time,
        });
    }
    Ok(reports)
}
