//! The pgFMU session: one database + catalogue + FMU storage + estimation
//! configuration, with every paper UDF registered and a typed Rust API.
//!
//! PostgreSQL gives extension UDFs a shared backend session; [`PgFmu`] is
//! that session object. Everything the SQL surface can do is also exposed
//! as a typed method (`fmu_create`, `fmu_parest`, …) so benchmarks and
//! library users can skip SQL parsing without changing semantics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use pgfmu_catalog::{Bound, FmuStorage, InstanceVariableRow, ModelCatalog, Uuid};
use pgfmu_estimation::EstimationConfig;
use pgfmu_fmi::Fmu;
use pgfmu_sqlmini::{Database, FromRow, QueryResult, Rows, Statement, Value};

use crate::error::{PgFmuError, Result};
use crate::parest::{run_parest, ParestReport};
use crate::simulate::{run_simulate, TimeSpec};
use crate::udfs;

/// Internal session state shared with the registered UDF closures.
pub struct Session {
    pub(crate) db: Arc<Database>,
    pub(crate) catalog: ModelCatalog,
    pub(crate) config: RwLock<EstimationConfig>,
    pub(crate) mi_enabled: AtomicBool,
}

/// The pgFMU extension session.
pub struct PgFmu {
    inner: Arc<Session>,
}

impl PgFmu {
    /// Create a session with FMU storage in a fresh temporary directory.
    pub fn new() -> Result<Self> {
        let storage = FmuStorage::open_temp()?;
        Self::with_storage(storage)
    }

    /// Create a session with explicit FMU storage.
    pub fn with_storage(storage: FmuStorage) -> Result<Self> {
        let db = Arc::new(Database::new());
        let catalog = ModelCatalog::new(Arc::clone(&db), Arc::new(storage))?;
        let inner = Arc::new(Session {
            db: Arc::clone(&db),
            catalog,
            config: RwLock::new(EstimationConfig::default()),
            mi_enabled: AtomicBool::new(true),
        });
        // UDF closures hold a Weak reference to avoid a session↔database
        // reference cycle.
        udfs::register_all(&db, Arc::downgrade(&inner));
        pgfmu_analytics::register_udfs(&db);
        Ok(PgFmu { inner })
    }

    /// The underlying database (catalogue tables + user tables + UDFs).
    pub fn db(&self) -> &Arc<Database> {
        &self.inner.db
    }

    /// The model catalogue.
    pub fn catalog(&self) -> &ModelCatalog {
        &self.inner.catalog
    }

    /// Execute SQL in this session.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        Ok(self.inner.db.execute(sql)?)
    }

    /// Prepare a statement in this session — the parsed plan is cached by
    /// query text, and `$1..$n` placeholders are bound per execution with
    /// [`Statement::query`] / [`Statement::query_rows`] /
    /// [`Statement::query_as`].
    ///
    /// ```
    /// use pgfmu::PgFmu;
    /// use pgfmu_sqlmini::params;
    ///
    /// let s = PgFmu::new().unwrap();
    /// let create = s.prepare("SELECT fmu_create($1, $2)").unwrap();
    /// create.query(params!["HP1", "HP1Instance1"]).unwrap();
    /// let n: Vec<i64> = s
    ///     .query_as(
    ///         "SELECT count(*) FROM fmu_variables($1)",
    ///         params!["HP1Instance1"],
    ///     )
    ///     .unwrap();
    /// assert_eq!(n, vec![8]);
    /// ```
    pub fn prepare(&self, sql: &str) -> Result<Statement<'_>> {
        Ok(self.inner.db.prepare(sql)?)
    }

    /// Prepare (with plan-cache reuse) and execute SQL with `$n` binds.
    pub fn query(&self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        Ok(self.inner.db.query(sql, params)?)
    }

    /// Prepare and execute SQL with binds, streaming result rows.
    pub fn query_rows(&self, sql: &str, params: &[Value]) -> Result<Rows<'_>> {
        Ok(self.inner.db.query_rows(sql, params)?)
    }

    /// Prepare, execute and decode each result row into `T` (scalars,
    /// `Option<T>`, tuples — see [`FromRow`]).
    pub fn query_as<T: FromRow>(&self, sql: &str, params: &[Value]) -> Result<Vec<T>> {
        Ok(self.inner.db.query_as(sql, params)?)
    }

    /// Enable/disable the multi-instance optimization — the switch between
    /// the paper's pgFMU+ and pgFMU− configurations.
    pub fn set_mi_enabled(&self, enabled: bool) {
        self.inner.mi_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Is the MI optimization enabled?
    pub fn mi_enabled(&self) -> bool {
        self.inner.mi_enabled.load(Ordering::Relaxed)
    }

    /// Replace the estimation configuration.
    pub fn set_estimation_config(&self, cfg: EstimationConfig) {
        *self.inner.config.write() = cfg;
    }

    /// The current estimation configuration.
    pub fn estimation_config(&self) -> EstimationConfig {
        *self.inner.config.read()
    }

    // ---- typed UDF API ---------------------------------------------------

    /// `fmu_create(modelRef, [instanceId])` — load/compile a model and
    /// create an instance (paper §5, Algorithm 1). Returns the instance id.
    pub fn fmu_create(&self, model_ref: &str, instance_id: Option<&str>) -> Result<String> {
        self.inner.fmu_create(model_ref, instance_id)
    }

    /// `fmu_copy(instanceId, [instanceId2])` — duplicate an instance.
    pub fn fmu_copy(&self, src: &str, dst: Option<&str>) -> Result<String> {
        Ok(self.inner.catalog.copy_instance(src, dst)?)
    }

    /// `fmu_variables(instanceId)` rows.
    pub fn fmu_variables(&self, instance_id: &str) -> Result<Vec<InstanceVariableRow>> {
        Ok(self.inner.catalog.variables(instance_id)?)
    }

    /// `fmu_get(instanceId, varName)` → (value, min, max).
    pub fn fmu_get(
        &self,
        instance_id: &str,
        var: &str,
    ) -> Result<(Option<f64>, Option<f64>, Option<f64>)> {
        Ok(self.inner.catalog.get_value(instance_id, var)?)
    }

    /// `fmu_set_initial(instanceId, varName, value)`.
    pub fn fmu_set_initial(&self, instance_id: &str, var: &str, value: f64) -> Result<()> {
        Ok(self.inner.catalog.set_value(instance_id, var, value)?)
    }

    /// `fmu_set_minimum(instanceId, varName, value)`.
    pub fn fmu_set_minimum(&self, instance_id: &str, var: &str, value: f64) -> Result<()> {
        Ok(self
            .inner
            .catalog
            .set_bound(instance_id, var, Bound::Min, value)?)
    }

    /// `fmu_set_maximum(instanceId, varName, value)`.
    pub fn fmu_set_maximum(&self, instance_id: &str, var: &str, value: f64) -> Result<()> {
        Ok(self
            .inner
            .catalog
            .set_bound(instance_id, var, Bound::Max, value)?)
    }

    /// `fmu_reset(instanceId)`.
    pub fn fmu_reset(&self, instance_id: &str) -> Result<()> {
        Ok(self.inner.catalog.reset_instance(instance_id)?)
    }

    /// `fmu_delete_instance(instanceId)`.
    pub fn fmu_delete_instance(&self, instance_id: &str) -> Result<()> {
        Ok(self.inner.catalog.delete_instance(instance_id)?)
    }

    /// `fmu_delete_model(modelId)` — accepts a UUID or a model name;
    /// cascades to all instances.
    pub fn fmu_delete_model(&self, model_ref: &str) -> Result<()> {
        self.inner.fmu_delete_model(model_ref)
    }

    /// `fmu_parest(instanceIds, input_sqls, [pars], [threshold])` —
    /// Algorithms 2 and 3. Returns one report per instance.
    pub fn fmu_parest(
        &self,
        instance_ids: &[String],
        input_sqls: &[String],
        pars: Option<&[String]>,
        threshold: Option<f64>,
    ) -> Result<Vec<ParestReport>> {
        run_parest(&self.inner, instance_ids, input_sqls, pars, threshold)
    }

    /// `fmu_simulate(instanceId, [input_sql], [time_from], [time_to])` —
    /// returns the long `(simulationTime, instanceId, varName, value)`
    /// table of paper Table 4.
    pub fn fmu_simulate(
        &self,
        instance_id: &str,
        input_sql: Option<&str>,
        time_from: Option<TimeSpec>,
        time_to: Option<TimeSpec>,
    ) -> Result<QueryResult> {
        run_simulate(&self.inner, instance_id, input_sql, time_from, time_to)
    }

    /// `fmu_simulate_fleet(instanceIds, [input_sql], [time_from],
    /// [time_to], [workers])` — simulate a whole fleet of instances
    /// concurrently over a worker pool and return the concatenated long
    /// output table, in instance order. `workers = None` (or 0) uses
    /// [`crate::fleet::default_workers`]; any worker count produces
    /// output byte-identical to a serial loop of [`PgFmu::fmu_simulate`]
    /// calls.
    pub fn fmu_simulate_fleet(
        &self,
        instance_ids: &[String],
        input_sql: Option<&str>,
        time_from: Option<TimeSpec>,
        time_to: Option<TimeSpec>,
        workers: Option<usize>,
    ) -> Result<QueryResult> {
        crate::fleet::run_simulate_fleet(
            &self.inner,
            instance_ids,
            input_sql,
            time_from,
            time_to,
            workers,
        )
    }

    /// `fmu_parest_fleet(instanceIds, input_sqls, [pars], [threshold],
    /// [workers])` — [`PgFmu::fmu_parest`] with the batch's objective
    /// evaluations fanned out over a worker pool. Reports come back in
    /// instance order, byte-identical to the serial path.
    pub fn fmu_parest_fleet(
        &self,
        instance_ids: &[String],
        input_sqls: &[String],
        pars: Option<&[String]>,
        threshold: Option<f64>,
        workers: Option<usize>,
    ) -> Result<Vec<ParestReport>> {
        crate::fleet::run_parest_fleet(
            &self.inner,
            instance_ids,
            input_sqls,
            pars,
            threshold,
            workers,
        )
    }

    /// Like [`PgFmu::fmu_simulate`], but streaming: the long output table
    /// is produced through a row-producing cursor, so consumers that
    /// filter, decode row by row, or stop early never materialize the
    /// whole result.
    ///
    /// ```
    /// use pgfmu::PgFmu;
    ///
    /// let s = PgFmu::new().unwrap();
    /// s.execute("SELECT fmu_create('HP0', 'i')").unwrap();
    /// let rows = s.fmu_simulate_rows("i", None, None, None).unwrap();
    /// let first = rows.into_named().next().unwrap().unwrap();
    /// assert_eq!(first.get::<String>("instanceid").unwrap(), "i");
    /// ```
    pub fn fmu_simulate_rows(
        &self,
        instance_id: &str,
        input_sql: Option<&str>,
        time_from: Option<TimeSpec>,
        time_to: Option<TimeSpec>,
    ) -> Result<Rows<'static>> {
        crate::simulate::run_simulate_rows(&self.inner, instance_id, input_sql, time_from, time_to)
    }

    /// `fmu_control(...)` — the future-work dynamic-optimization UDF; see
    /// [`crate::control`].
    pub fn fmu_control(
        &self,
        instance_id: &str,
        input_name: &str,
        horizon_hours: f64,
        intervals: usize,
        setpoint: f64,
        effort_weight: f64,
    ) -> Result<Vec<(f64, f64)>> {
        crate::control::run_control(
            &self.inner,
            instance_id,
            input_name,
            horizon_hours,
            intervals,
            setpoint,
            effort_weight,
        )
    }
}

impl Session {
    /// Resolve a model reference: `.fmu` archive path, `.mo` file path,
    /// inline Modelica source, or a builtin evaluation-model name.
    pub(crate) fn resolve_model_ref(&self, model_ref: &str) -> Result<Fmu> {
        if pgfmu_modelica::looks_like_inline_source(model_ref) {
            return Ok(pgfmu_modelica::compile_str(model_ref)?);
        }
        let trimmed = model_ref.trim();
        if trimmed.ends_with(".fmu") {
            return Ok(pgfmu_fmi::archive::read_from_path(std::path::Path::new(
                trimmed,
            ))?);
        }
        if trimmed.ends_with(".mo") {
            return Ok(pgfmu_modelica::compile_file(std::path::Path::new(trimmed))?);
        }
        if let Some(fmu) = pgfmu_fmi::builtin::by_name(trimmed) {
            return Ok(fmu);
        }
        Err(PgFmuError::Usage(format!(
            "cannot interpret '{model_ref}' as a model reference \
             (.fmu path, .mo path, inline Modelica, or builtin name)"
        )))
    }

    /// Does a string look like a model reference rather than an instance
    /// identifier? Used to tolerate the paper's swapped-argument examples.
    pub(crate) fn looks_like_model_ref(&self, s: &str) -> bool {
        let t = s.trim();
        t.ends_with(".fmu")
            || t.ends_with(".mo")
            || pgfmu_modelica::looks_like_inline_source(t)
            || pgfmu_fmi::builtin::by_name(t).is_some()
    }

    pub(crate) fn fmu_create(&self, model_ref: &str, instance_id: Option<&str>) -> Result<String> {
        let fmu = self.resolve_model_ref(model_ref)?;
        let uuid = self.catalog.register_model(fmu)?;
        Ok(self.catalog.create_instance(uuid, instance_id)?)
    }

    pub(crate) fn fmu_delete_model(&self, model_ref: &str) -> Result<()> {
        let uuid = if let Ok(uuid) = model_ref.parse::<Uuid>() {
            uuid
        } else if let Some(uuid) = self.catalog.find_model_by_name(model_ref)? {
            uuid
        } else {
            return Err(PgFmuError::Catalog(
                pgfmu_catalog::CatalogError::UnknownModel(model_ref.to_string()),
            ));
        };
        Ok(self.catalog.delete_model(uuid)?)
    }
}
