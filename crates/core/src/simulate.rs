//! `fmu_simulate` — model simulation with automatic input binding
//! (paper §7, Algorithm 4).

use pgfmu_fmi::{
    InputSeries, InputSet, Interpolation, SimulationOptions, SimulationResult, Variability,
};
use pgfmu_sqlmini::{QueryResult, Row, Rows, Value};

use crate::convert::decode_rows;
use crate::error::{PgFmuError, Result};
use crate::session::Session;

/// A point in time as accepted by `fmu_simulate`'s optional window
/// arguments: an absolute timestamp or relative hours.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeSpec {
    /// Absolute epoch seconds (timestamp literals).
    Epoch(i64),
    /// Hours on the model's simulation axis.
    Hours(f64),
}

impl TimeSpec {
    /// Decode from a SQL value.
    pub fn from_value(v: &Value) -> Result<TimeSpec> {
        match v {
            Value::Timestamp(t) => Ok(TimeSpec::Epoch(*t)),
            Value::Text(s) => Ok(TimeSpec::Epoch(
                pgfmu_sqlmini::parse_timestamp(s).map_err(PgFmuError::Sql)?,
            )),
            Value::Int(i) => Ok(TimeSpec::Hours(*i as f64)),
            Value::Float(f) => Ok(TimeSpec::Hours(*f)),
            other => Err(PgFmuError::Usage(format!(
                "cannot interpret {other} as a simulation time"
            ))),
        }
    }
}

/// Streaming long-format output of one simulation: yields the
/// `(simulationtime, instanceid, varname, value)` rows of paper Table 4
/// one at a time, in time-major order, straight from the solver's
/// trajectories — no intermediate `Vec<Row>` is built.
pub struct SimRows {
    result: SimulationResult,
    instance_id: String,
    anchor_epoch: i64,
    /// Next grid point.
    k: usize,
    /// Next variable at that grid point.
    v: usize,
}

impl Iterator for SimRows {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        if self.k >= self.result.len() || self.result.names().is_empty() {
            return None;
        }
        let t = self.result.times()[self.k];
        let name = &self.result.names()[self.v];
        let value = self.result.series_at(self.v)[self.k];
        let row = vec![
            Value::Timestamp(self.anchor_epoch + (t * 3600.0).round() as i64),
            Value::Text(self.instance_id.clone()),
            Value::Text(name.clone()),
            Value::Float(value),
        ];
        self.v += 1;
        if self.v >= self.result.names().len() {
            self.v = 0;
            self.k += 1;
        }
        Some(row)
    }
}

/// The output column names of `fmu_simulate` (paper Table 4).
fn sim_columns() -> Vec<String> {
    vec![
        "simulationtime".into(),
        "instanceid".into(),
        "varname".into(),
        "value".into(),
    ]
}

/// Execute `fmu_simulate` and return the long output table
/// `(simulationtime, instanceid, varname, value)` of paper Table 4.
pub fn run_simulate(
    session: &Session,
    instance_id: &str,
    input_sql: Option<&str>,
    time_from: Option<TimeSpec>,
    time_to: Option<TimeSpec>,
) -> Result<QueryResult> {
    let rows = run_simulate_rows(session, instance_id, input_sql, time_from, time_to)?;
    rows.into_result().map_err(PgFmuError::Sql)
}

/// Execute `fmu_simulate`, streaming the long output table through a
/// row-producing cursor: the solver result is rendered to SQL rows only
/// as the consumer iterates.
pub fn run_simulate_rows(
    session: &Session,
    instance_id: &str,
    input_sql: Option<&str>,
    time_from: Option<TimeSpec>,
    time_to: Option<TimeSpec>,
) -> Result<Rows<'static>> {
    let (fmu, inst) = session.catalog.instantiate(instance_id)?;
    let de = fmu.description.default_experiment;

    // Stage 1 (Algorithm 4): build the input object from the input SQL,
    // mapping columns to input variables via meta-data. The input result
    // set streams through the lazy cursor into the one-pass decoder.
    let (inputs, anchor_epoch, data_window, data_step) = match input_sql {
        Some(sql) => {
            let result_rows = session.db.query_rows(sql, &[])?;
            let cols = result_rows.columns().to_vec();
            let decoded = decode_rows(&cols, result_rows)?;
            let mut series = Vec::new();
            for input in fmu.input_names() {
                let col = decoded
                    .columns
                    .iter()
                    .find(|(n, _)| n == input)
                    .map(|(_, c)| c.clone())
                    .ok_or_else(|| {
                        PgFmuError::Fmi(pgfmu_fmi::FmiError::Simulation(format!(
                            "insufficient model input time series: input query \
                             has no column for input '{input}'"
                        )))
                    })?;
                let var = fmu.description.variable(input)?;
                let interp = match var.variability {
                    Variability::Discrete => Interpolation::Hold,
                    _ => Interpolation::Linear,
                };
                series.push(InputSeries::new(
                    input.clone(),
                    decoded.times_hours.clone(),
                    col,
                    interp,
                )?);
            }
            let names: Vec<&str> = fmu.input_names().iter().map(|s| s.as_str()).collect();
            let set = InputSet::bind(&names, series)?;
            let window = (decoded.times_hours[0], *decoded.times_hours.last().unwrap());
            let step = if decoded.times_hours.len() > 1 {
                decoded.times_hours[1] - decoded.times_hours[0]
            } else {
                de.step_size
            };
            (set, decoded.anchor_epoch, Some(window), step)
        }
        None => {
            if !fmu.input_names().is_empty() {
                return Err(PgFmuError::Fmi(pgfmu_fmi::FmiError::Simulation(format!(
                    "insufficient model input time series: model '{}' has \
                     inputs but no input query was provided",
                    fmu.name()
                ))));
            }
            // Anchor on the requested start when it is an absolute time.
            let anchor = match time_from {
                Some(TimeSpec::Epoch(t)) => t,
                _ => 0,
            };
            (InputSet::empty(), anchor, None, de.step_size)
        }
    };

    let to_hours = |spec: TimeSpec| match spec {
        TimeSpec::Epoch(t) => (t - anchor_epoch) as f64 / 3600.0,
        TimeSpec::Hours(h) => h,
    };
    // Window resolution (§7): user window, else the data window, else the
    // model's default experiment.
    let start = time_from
        .map(to_hours)
        .unwrap_or_else(|| data_window.map(|(s, _)| s).unwrap_or(de.start_time));
    let stop = time_to
        .map(to_hours)
        .unwrap_or_else(|| data_window.map(|(_, e)| e).unwrap_or(de.stop_time));

    // Stage 2: simulate.
    let result = inst.simulate(
        &inputs,
        &SimulationOptions {
            start: Some(start),
            stop: Some(stop),
            output_step: Some(data_step),
            ..Default::default()
        },
    )?;

    // Persist the final simulated state back into the catalogue (the
    // paper's italic `ModelInstanceValues` update after fmu_simulate).
    // States are the first `n_states` reported series, so no by-name
    // series search is needed.
    for (i, name) in fmu.state_names().iter().enumerate() {
        if let Some(last) = result.series_at(i).last() {
            session.catalog.set_value(instance_id, name, *last)?;
        }
    }

    Ok(Rows::streamed(
        sim_columns(),
        SimRows {
            result,
            instance_id: instance_id.to_string(),
            anchor_epoch,
            k: 0,
            v: 0,
        }
        .map(Ok),
    ))
}
