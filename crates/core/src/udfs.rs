//! Registration of the pgFMU UDFs into the SQL engine — the paper's
//! Challenge 1 ("how to integrate and expose FMUs in database queries").
//!
//! Scalar UDFs: `fmu_create`, `fmu_copy`, `fmu_set_initial`,
//! `fmu_set_minimum`, `fmu_set_maximum`, `fmu_reset`,
//! `fmu_delete_instance`, `fmu_delete_model`, `fmu_parest`,
//! `fmu_mi_optimization`.
//!
//! Set-returning UDFs (usable in `FROM`, including laterally):
//! `fmu_variables`, `fmu_get`, `fmu_simulate`, `fmu_parest_report`,
//! `fmu_control`.

use std::sync::{Arc, Weak};

use pgfmu_sqlmini::{Database, QueryResult, SqlError, Value};

use crate::arrays::{format_float_array, parse_ident_array, parse_sql_array};
use crate::session::Session;
use crate::simulate::TimeSpec;

type SqlResult<T> = std::result::Result<T, SqlError>;

fn session(weak: &Weak<Session>) -> SqlResult<Arc<Session>> {
    weak.upgrade()
        .ok_or_else(|| SqlError::Execution("pgFMU session has been closed".into()))
}

fn text_arg(args: &[Value], i: usize, fn_name: &str) -> SqlResult<String> {
    args.get(i)
        .ok_or_else(|| SqlError::Type(format!("{fn_name}: missing argument {}", i + 1)))?
        .as_str()
        .map(str::to_string)
        .map_err(|_| SqlError::Type(format!("{fn_name}: argument {} must be text", i + 1)))
}

fn f64_arg(args: &[Value], i: usize, fn_name: &str) -> SqlResult<f64> {
    args.get(i)
        .ok_or_else(|| SqlError::Type(format!("{fn_name}: missing argument {}", i + 1)))?
        .as_f64()
        .map_err(|_| SqlError::Type(format!("{fn_name}: argument {} must be numeric", i + 1)))
}

fn opt_f64(v: Option<f64>) -> Value {
    match v {
        Some(x) => Value::Float(x),
        None => Value::Null,
    }
}

/// Register every pgFMU UDF on the database.
pub(crate) fn register_all(db: &Database, weak: Weak<Session>) {
    // ---- fmu_create ---------------------------------------------------------
    let w = weak.clone();
    db.register_scalar("fmu_create", move |_db, args| {
        let s = session(&w)?;
        if args.is_empty() || args.len() > 2 {
            return Err(SqlError::Type(
                "fmu_create(modelRef, [instanceId]) takes one or two arguments".into(),
            ));
        }
        let a = text_arg(args, 0, "fmu_create")?;
        let instance = if args.len() == 2 {
            Some(text_arg(args, 1, "fmu_create")?)
        } else {
            None
        };
        // The paper's examples pass (modelRef, instanceId) and
        // (instanceId, modelRef) interchangeably; detect which is which.
        let (model_ref, instance_id) = match &instance {
            Some(b) if !s.looks_like_model_ref(&a) && s.looks_like_model_ref(b) => {
                (b.clone(), Some(a))
            }
            _ => (a, instance),
        };
        let id = s.fmu_create(&model_ref, instance_id.as_deref())?;
        Ok(Value::Text(id))
    });

    // ---- fmu_copy ------------------------------------------------------------
    let w = weak.clone();
    db.register_scalar("fmu_copy", move |_db, args| {
        let s = session(&w)?;
        let src = text_arg(args, 0, "fmu_copy")?;
        let dst = if args.len() > 1 {
            Some(text_arg(args, 1, "fmu_copy")?)
        } else {
            None
        };
        let id = s.catalog.copy_instance(&src, dst.as_deref())?;
        Ok(Value::Text(id))
    });

    // ---- setters / reset / deletes --------------------------------------------
    let w = weak.clone();
    db.register_scalar("fmu_set_initial", move |_db, args| {
        let s = session(&w)?;
        let id = text_arg(args, 0, "fmu_set_initial")?;
        let var = text_arg(args, 1, "fmu_set_initial")?;
        let value = f64_arg(args, 2, "fmu_set_initial")?;
        s.catalog.set_value(&id, &var, value)?;
        Ok(Value::Text(id))
    });
    let w = weak.clone();
    db.register_scalar("fmu_set_minimum", move |_db, args| {
        let s = session(&w)?;
        let id = text_arg(args, 0, "fmu_set_minimum")?;
        let var = text_arg(args, 1, "fmu_set_minimum")?;
        let value = f64_arg(args, 2, "fmu_set_minimum")?;
        s.catalog
            .set_bound(&id, &var, pgfmu_catalog::Bound::Min, value)?;
        Ok(Value::Text(id))
    });
    let w = weak.clone();
    db.register_scalar("fmu_set_maximum", move |_db, args| {
        let s = session(&w)?;
        let id = text_arg(args, 0, "fmu_set_maximum")?;
        let var = text_arg(args, 1, "fmu_set_maximum")?;
        let value = f64_arg(args, 2, "fmu_set_maximum")?;
        s.catalog
            .set_bound(&id, &var, pgfmu_catalog::Bound::Max, value)?;
        Ok(Value::Text(id))
    });
    let w = weak.clone();
    db.register_scalar("fmu_reset", move |_db, args| {
        let s = session(&w)?;
        let id = text_arg(args, 0, "fmu_reset")?;
        s.catalog.reset_instance(&id)?;
        Ok(Value::Text(id))
    });
    let w = weak.clone();
    db.register_scalar("fmu_delete_instance", move |_db, args| {
        let s = session(&w)?;
        let id = text_arg(args, 0, "fmu_delete_instance")?;
        s.catalog.delete_instance(&id)?;
        Ok(Value::Text(id))
    });
    let w = weak.clone();
    db.register_scalar("fmu_delete_model", move |_db, args| {
        let s = session(&w)?;
        let model = text_arg(args, 0, "fmu_delete_model")?;
        s.fmu_delete_model(&model)?;
        Ok(Value::Text(model))
    });

    // ---- MI switch (pgFMU+ / pgFMU−) -------------------------------------------
    let w = weak.clone();
    db.register_scalar("fmu_mi_optimization", move |_db, args| {
        let s = session(&w)?;
        let enabled = match args.first() {
            Some(Value::Bool(b)) => *b,
            Some(Value::Text(t)) => matches!(t.as_str(), "on" | "true" | "1"),
            _ => {
                return Err(SqlError::Type(
                    "fmu_mi_optimization(on|off) takes one boolean/text argument".into(),
                ))
            }
        };
        s.mi_enabled
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
        Ok(Value::Bool(enabled))
    });

    // ---- fmu_variables ----------------------------------------------------------
    let w = weak.clone();
    db.register_table_fn("fmu_variables", move |_db, args| {
        let s = session(&w)?;
        let id = text_arg(args, 0, "fmu_variables")?;
        let rows = s.catalog.variables(&id)?;
        let mut q = QueryResult::new(vec![
            "instanceid".into(),
            "varname".into(),
            "vartype".into(),
            "initialvalue".into(),
            "minvalue".into(),
            "maxvalue".into(),
        ]);
        for r in rows {
            q.rows.push(vec![
                Value::Text(r.instance_id),
                Value::Text(r.var_name),
                Value::Text(r.var_type),
                opt_f64(r.value),
                opt_f64(r.min_value),
                opt_f64(r.max_value),
            ]);
        }
        Ok(q)
    });

    // ---- fmu_get -------------------------------------------------------------------
    let w = weak.clone();
    db.register_table_fn("fmu_get", move |_db, args| {
        let s = session(&w)?;
        let id = text_arg(args, 0, "fmu_get")?;
        let var = text_arg(args, 1, "fmu_get")?;
        let (value, min, max) = s.catalog.get_value(&id, &var)?;
        let mut q = QueryResult::new(vec![
            "initialvalue".into(),
            "minvalue".into(),
            "maxvalue".into(),
        ]);
        q.rows
            .push(vec![opt_f64(value), opt_f64(min), opt_f64(max)]);
        Ok(q)
    });

    // ---- fmu_parest (scalar, the paper's surface) -----------------------------------
    let w = weak.clone();
    db.register_scalar("fmu_parest", move |_db, args| {
        let s = session(&w)?;
        let ids = parse_ident_array(&text_arg(args, 0, "fmu_parest")?);
        let sqls = parse_sql_array(&text_arg(args, 1, "fmu_parest")?);
        let pars = if args.len() > 2 {
            let parsed = parse_ident_array(&text_arg(args, 2, "fmu_parest")?);
            if parsed.is_empty() {
                None
            } else {
                Some(parsed)
            }
        } else {
            None
        };
        let threshold = if args.len() > 3 {
            Some(f64_arg(args, 3, "fmu_parest")?)
        } else {
            None
        };
        let reports = crate::parest::run_parest(&s, &ids, &sqls, pars.as_deref(), threshold)?;
        if reports.len() == 1 {
            Ok(Value::Float(reports[0].rmse))
        } else {
            Ok(Value::Text(format_float_array(
                &reports.iter().map(|r| r.rmse).collect::<Vec<_>>(),
            )))
        }
    });

    // ---- fmu_parest_report (table form with strategy details) -------------------------
    let w = weak.clone();
    db.register_table_fn("fmu_parest_report", move |_db, args| {
        let s = session(&w)?;
        let ids = parse_ident_array(&text_arg(args, 0, "fmu_parest_report")?);
        let sqls = parse_sql_array(&text_arg(args, 1, "fmu_parest_report")?);
        let pars = if args.len() > 2 {
            let parsed = parse_ident_array(&text_arg(args, 2, "fmu_parest_report")?);
            if parsed.is_empty() {
                None
            } else {
                Some(parsed)
            }
        } else {
            None
        };
        let threshold = if args.len() > 3 {
            Some(f64_arg(args, 3, "fmu_parest_report")?)
        } else {
            None
        };
        let reports = crate::parest::run_parest(&s, &ids, &sqls, pars.as_deref(), threshold)?;
        let mut q = QueryResult::new(vec![
            "instanceid".into(),
            "estimationerror".into(),
            "strategy".into(),
            "globalevals".into(),
            "localevals".into(),
        ]);
        for r in reports {
            q.rows.push(vec![
                Value::Text(r.instance_id),
                Value::Float(r.rmse),
                Value::Text(
                    match r.strategy {
                        pgfmu_estimation::Strategy::GlobalLocal => "G+LaG",
                        pgfmu_estimation::Strategy::LocalOnly => "LO",
                    }
                    .into(),
                ),
                Value::Int(r.global_evals as i64),
                Value::Int(r.local_evals as i64),
            ]);
        }
        Ok(q)
    });

    // ---- fmu_simulate -------------------------------------------------------------------
    let w = weak.clone();
    db.register_table_fn("fmu_simulate", move |_db, args| {
        let s = session(&w)?;
        let id = text_arg(args, 0, "fmu_simulate")?;
        let input_sql = match args.get(1) {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .map_err(|_| SqlError::Type("fmu_simulate: input_sql must be text".into()))?
                    .to_string(),
            ),
        };
        let time_from = match args.get(2) {
            None | Some(Value::Null) => None,
            Some(v) => Some(TimeSpec::from_value(v)?),
        };
        let time_to = match args.get(3) {
            None | Some(Value::Null) => None,
            Some(v) => Some(TimeSpec::from_value(v)?),
        };
        Ok(crate::simulate::run_simulate(
            &s,
            &id,
            input_sql.as_deref(),
            time_from,
            time_to,
        )?)
    });

    // ---- fmu_control (future-work MPC) -----------------------------------------------------
    let w = weak;
    db.register_table_fn("fmu_control", move |_db, args| {
        let s = session(&w)?;
        let id = text_arg(args, 0, "fmu_control")?;
        let input = text_arg(args, 1, "fmu_control")?;
        let horizon = f64_arg(args, 2, "fmu_control")?;
        let intervals = f64_arg(args, 3, "fmu_control")? as usize;
        let setpoint = f64_arg(args, 4, "fmu_control")?;
        let weight = if args.len() > 5 {
            f64_arg(args, 5, "fmu_control")?
        } else {
            0.01
        };
        let plan =
            crate::control::run_control(&s, &id, &input, horizon, intervals, setpoint, weight)?;
        let mut q = QueryResult::new(vec!["hours".into(), "value".into()]);
        for (t, u) in plan {
            q.rows.push(vec![Value::Float(t), Value::Float(u)]);
        }
        Ok(q)
    });
}
