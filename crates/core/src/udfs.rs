//! Registration of the pgFMU UDFs into the SQL engine — the paper's
//! Challenge 1 ("how to integrate and expose FMUs in database queries").
//!
//! Scalar UDFs: `fmu_create`, `fmu_copy`, `fmu_set_initial`,
//! `fmu_set_minimum`, `fmu_set_maximum`, `fmu_reset`,
//! `fmu_delete_instance`, `fmu_delete_model`, `fmu_parest`,
//! `fmu_mi_optimization`.
//!
//! Set-returning UDFs (usable in `FROM`, including laterally):
//! `fmu_variables`, `fmu_get`, `fmu_simulate`, `fmu_parest_report`,
//! `fmu_simulate_fleet`, `fmu_parest_fleet`, `fmu_control`.
//!
//! Every UDF is declared through the typed builder
//! ([`Database::udf`]) with its argument signature, so argument coercion
//! and arity/type errors are produced centrally (PostgreSQL-style
//! messages) instead of per-UDF parsing code, and call counts surface in
//! `pgfmu_stats()`.

use std::sync::{Arc, Weak};

use pgfmu_sqlmini::{ArgKind, Args, Database, QueryResult, SqlError, Value};

use crate::arrays::{format_float_array, parse_ident_array, parse_sql_array};
use crate::session::Session;
use crate::simulate::TimeSpec;

type SqlResult<T> = std::result::Result<T, SqlError>;

fn session(weak: &Weak<Session>) -> SqlResult<Arc<Session>> {
    weak.upgrade()
        .ok_or_else(|| SqlError::Execution("pgFMU session has been closed".into()))
}

fn opt_f64(v: Option<f64>) -> Value {
    match v {
        Some(x) => Value::Float(x),
        None => Value::Null,
    }
}

/// Decode the shared `(instanceIds, input_sqls, [pars], [threshold])`
/// argument block of `fmu_parest` / `fmu_parest_report`.
type ParestArgs = (Vec<String>, Vec<String>, Option<Vec<String>>, Option<f64>);

fn parest_args(args: &Args) -> ParestArgs {
    let ids = parse_ident_array(args.text(0));
    let sqls = parse_sql_array(args.text(1));
    let pars = args
        .opt_text(2)
        .map(parse_ident_array)
        .filter(|p| !p.is_empty());
    let threshold = args.opt_f64(3);
    (ids, sqls, pars, threshold)
}

/// Register every pgFMU UDF on the database.
pub(crate) fn register_all(db: &Database, weak: Weak<Session>) {
    // ---- fmu_create ---------------------------------------------------------
    let w = weak.clone();
    db.udf("fmu_create")
        .arg("modelref", ArgKind::Text)
        .opt_arg("instanceid", ArgKind::Text)
        .scalar(move |_db, args| {
            let s = session(&w)?;
            let a = args.text(0).to_string();
            let instance = args.opt_text(1).map(str::to_string);
            // The paper's examples pass (modelRef, instanceId) and
            // (instanceId, modelRef) interchangeably; detect which is which.
            let (model_ref, instance_id) = match &instance {
                Some(b) if !s.looks_like_model_ref(&a) && s.looks_like_model_ref(b) => {
                    (b.clone(), Some(a))
                }
                _ => (a, instance),
            };
            let id = s.fmu_create(&model_ref, instance_id.as_deref())?;
            Ok(Value::Text(id))
        });

    // ---- fmu_copy ------------------------------------------------------------
    let w = weak.clone();
    db.udf("fmu_copy")
        .arg("instanceid", ArgKind::Text)
        .opt_arg("instanceid2", ArgKind::Text)
        .scalar(move |_db, args| {
            let s = session(&w)?;
            let id = s.catalog.copy_instance(args.text(0), args.opt_text(1))?;
            Ok(Value::Text(id))
        });

    // ---- setters / reset / deletes --------------------------------------------
    let w = weak.clone();
    db.udf("fmu_set_initial")
        .arg("instanceid", ArgKind::Text)
        .arg("varname", ArgKind::Text)
        .arg("value", ArgKind::Float)
        .scalar(move |_db, args| {
            let s = session(&w)?;
            s.catalog
                .set_value(args.text(0), args.text(1), args.f64(2))?;
            Ok(Value::Text(args.text(0).to_string()))
        });
    let w = weak.clone();
    db.udf("fmu_set_minimum")
        .arg("instanceid", ArgKind::Text)
        .arg("varname", ArgKind::Text)
        .arg("value", ArgKind::Float)
        .scalar(move |_db, args| {
            let s = session(&w)?;
            s.catalog.set_bound(
                args.text(0),
                args.text(1),
                pgfmu_catalog::Bound::Min,
                args.f64(2),
            )?;
            Ok(Value::Text(args.text(0).to_string()))
        });
    let w = weak.clone();
    db.udf("fmu_set_maximum")
        .arg("instanceid", ArgKind::Text)
        .arg("varname", ArgKind::Text)
        .arg("value", ArgKind::Float)
        .scalar(move |_db, args| {
            let s = session(&w)?;
            s.catalog.set_bound(
                args.text(0),
                args.text(1),
                pgfmu_catalog::Bound::Max,
                args.f64(2),
            )?;
            Ok(Value::Text(args.text(0).to_string()))
        });
    let w = weak.clone();
    db.udf("fmu_reset")
        .arg("instanceid", ArgKind::Text)
        .scalar(move |_db, args| {
            let s = session(&w)?;
            s.catalog.reset_instance(args.text(0))?;
            Ok(Value::Text(args.text(0).to_string()))
        });
    let w = weak.clone();
    db.udf("fmu_delete_instance")
        .arg("instanceid", ArgKind::Text)
        .scalar(move |_db, args| {
            let s = session(&w)?;
            s.catalog.delete_instance(args.text(0))?;
            Ok(Value::Text(args.text(0).to_string()))
        });
    let w = weak.clone();
    db.udf("fmu_delete_model")
        .arg("modelref", ArgKind::Text)
        .scalar(move |_db, args| {
            let s = session(&w)?;
            s.fmu_delete_model(args.text(0))?;
            Ok(Value::Text(args.text(0).to_string()))
        });

    // ---- MI switch (pgFMU+ / pgFMU−) -------------------------------------------
    let w = weak.clone();
    db.udf("fmu_mi_optimization")
        .arg("enabled", ArgKind::Bool)
        .scalar(move |_db, args| {
            let s = session(&w)?;
            let enabled = args.boolean(0);
            s.mi_enabled
                .store(enabled, std::sync::atomic::Ordering::Relaxed);
            Ok(Value::Bool(enabled))
        });

    // ---- fmu_variables ----------------------------------------------------------
    let w = weak.clone();
    db.udf("fmu_variables")
        .arg("instanceid", ArgKind::Text)
        .table(move |_db, args| {
            let s = session(&w)?;
            let rows = s.catalog.variables(args.text(0))?;
            let mut q = QueryResult::new(vec![
                "instanceid".into(),
                "varname".into(),
                "vartype".into(),
                "initialvalue".into(),
                "minvalue".into(),
                "maxvalue".into(),
            ]);
            for r in rows {
                q.rows.push(vec![
                    Value::Text(r.instance_id),
                    Value::Text(r.var_name),
                    Value::Text(r.var_type),
                    opt_f64(r.value),
                    opt_f64(r.min_value),
                    opt_f64(r.max_value),
                ]);
            }
            Ok(q)
        });

    // ---- fmu_get -------------------------------------------------------------------
    let w = weak.clone();
    db.udf("fmu_get")
        .arg("instanceid", ArgKind::Text)
        .arg("varname", ArgKind::Text)
        .table(move |_db, args| {
            let s = session(&w)?;
            let (value, min, max) = s.catalog.get_value(args.text(0), args.text(1))?;
            let mut q = QueryResult::new(vec![
                "initialvalue".into(),
                "minvalue".into(),
                "maxvalue".into(),
            ]);
            q.rows
                .push(vec![opt_f64(value), opt_f64(min), opt_f64(max)]);
            Ok(q)
        });

    // ---- fmu_parest (scalar, the paper's surface) -----------------------------------
    let w = weak.clone();
    db.udf("fmu_parest")
        .arg("instanceids", ArgKind::Text)
        .arg("input_sqls", ArgKind::Text)
        .opt_arg("pars", ArgKind::Text)
        .opt_arg("threshold", ArgKind::Float)
        .scalar(move |_db, args| {
            let s = session(&w)?;
            let (ids, sqls, pars, threshold) = parest_args(args);
            let reports = crate::parest::run_parest(&s, &ids, &sqls, pars.as_deref(), threshold)?;
            if reports.len() == 1 {
                Ok(Value::Float(reports[0].rmse))
            } else {
                Ok(Value::Text(format_float_array(
                    &reports.iter().map(|r| r.rmse).collect::<Vec<_>>(),
                )))
            }
        });

    // ---- fmu_parest_report (table form with strategy details) -------------------------
    let w = weak.clone();
    db.udf("fmu_parest_report")
        .arg("instanceids", ArgKind::Text)
        .arg("input_sqls", ArgKind::Text)
        .opt_arg("pars", ArgKind::Text)
        .opt_arg("threshold", ArgKind::Float)
        .table(move |_db, args| {
            let s = session(&w)?;
            let (ids, sqls, pars, threshold) = parest_args(args);
            let reports = crate::parest::run_parest(&s, &ids, &sqls, pars.as_deref(), threshold)?;
            let mut q = QueryResult::new(vec![
                "instanceid".into(),
                "estimationerror".into(),
                "strategy".into(),
                "globalevals".into(),
                "localevals".into(),
            ]);
            for r in reports {
                q.rows.push(vec![
                    Value::Text(r.instance_id),
                    Value::Float(r.rmse),
                    Value::Text(
                        match r.strategy {
                            pgfmu_estimation::Strategy::GlobalLocal => "G+LaG",
                            pgfmu_estimation::Strategy::LocalOnly => "LO",
                        }
                        .into(),
                    ),
                    Value::Int(r.global_evals as i64),
                    Value::Int(r.local_evals as i64),
                ]);
            }
            Ok(q)
        });

    // ---- fmu_simulate -------------------------------------------------------------------
    let w = weak.clone();
    db.udf("fmu_simulate")
        .arg("instanceid", ArgKind::Text)
        .opt_arg("input_sql", ArgKind::Text)
        .opt_arg("time_from", ArgKind::Any)
        .opt_arg("time_to", ArgKind::Any)
        .table(move |_db, args| {
            let s = session(&w)?;
            let time_from = match args.value(2) {
                Value::Null => None,
                v => Some(TimeSpec::from_value(v)?),
            };
            let time_to = match args.value(3) {
                Value::Null => None,
                v => Some(TimeSpec::from_value(v)?),
            };
            Ok(crate::simulate::run_simulate(
                &s,
                args.text(0),
                args.opt_text(1),
                time_from,
                time_to,
            )?)
        });

    // ---- fmu_simulate_fleet (cross-instance fan-out) ----------------------------------------
    let w = weak.clone();
    db.udf("fmu_simulate_fleet")
        .arg("instanceids", ArgKind::Text)
        .opt_arg("input_sql", ArgKind::Text)
        .opt_arg("time_from", ArgKind::Any)
        .opt_arg("time_to", ArgKind::Any)
        .opt_arg("workers", ArgKind::Int)
        .table(move |_db, args| {
            let s = session(&w)?;
            let ids = parse_ident_array(args.text(0));
            let time_from = match args.value(2) {
                Value::Null => None,
                v => Some(TimeSpec::from_value(v)?),
            };
            let time_to = match args.value(3) {
                Value::Null => None,
                v => Some(TimeSpec::from_value(v)?),
            };
            let workers = args.opt_i64(4).map(|n| n.max(0) as usize);
            Ok(crate::fleet::run_simulate_fleet(
                &s,
                &ids,
                args.opt_text(1),
                time_from,
                time_to,
                workers,
            )?)
        });

    // ---- fmu_parest_fleet (pooled estimation) -----------------------------------------------
    let w = weak.clone();
    db.udf("fmu_parest_fleet")
        .arg("instanceids", ArgKind::Text)
        .arg("input_sqls", ArgKind::Text)
        .opt_arg("pars", ArgKind::Text)
        .opt_arg("threshold", ArgKind::Float)
        .opt_arg("workers", ArgKind::Int)
        .table(move |_db, args| {
            let s = session(&w)?;
            let (ids, sqls, pars, threshold) = parest_args(args);
            let workers = args.opt_i64(4).map(|n| n.max(0) as usize);
            let reports = crate::fleet::run_parest_fleet(
                &s,
                &ids,
                &sqls,
                pars.as_deref(),
                threshold,
                workers,
            )?;
            let mut q = QueryResult::new(vec![
                "instanceid".into(),
                "estimationerror".into(),
                "strategy".into(),
                "globalevals".into(),
                "localevals".into(),
            ]);
            for r in reports {
                q.rows.push(vec![
                    Value::Text(r.instance_id),
                    Value::Float(r.rmse),
                    Value::Text(
                        match r.strategy {
                            pgfmu_estimation::Strategy::GlobalLocal => "G+LaG",
                            pgfmu_estimation::Strategy::LocalOnly => "LO",
                        }
                        .into(),
                    ),
                    Value::Int(r.global_evals as i64),
                    Value::Int(r.local_evals as i64),
                ]);
            }
            Ok(q)
        });

    // ---- fmu_control (future-work MPC) -----------------------------------------------------
    let w = weak;
    db.udf("fmu_control")
        .arg("instanceid", ArgKind::Text)
        .arg("input_name", ArgKind::Text)
        .arg("horizon_hours", ArgKind::Float)
        .arg("intervals", ArgKind::Int)
        .arg("setpoint", ArgKind::Float)
        .opt_arg("effort_weight", ArgKind::Float)
        .table(move |_db, args| {
            let s = session(&w)?;
            let plan = crate::control::run_control(
                &s,
                args.text(0),
                args.text(1),
                args.f64(2),
                args.i64(3) as usize,
                args.f64(4),
                args.opt_f64(5).unwrap_or(0.01),
            )?;
            let mut q = QueryResult::new(vec!["hours".into(), "value".into()]);
            for (t, u) in plan {
                q.rows.push(vec![Value::Float(t), Value::Float(u)]);
            }
            Ok(q)
        });
}
