//! Serial-equivalence suite for fleet execution: `fmu_simulate_fleet`
//! and `fmu_parest_fleet` must produce byte-identical result tables,
//! catalogue states and parameter vectors at every worker count — plus
//! the pooled-worker session-hygiene regression tests.
//!
//! The worker counts exercised are 1, 2 and 8 (and whatever
//! `PGFMU_FLEET_WORKERS` adds, so CI can sweep a matrix).

use pgfmu::{EstimationConfig, PgFmu, Strategy, Value, WorkerSessionGuard};
use pgfmu_datagen::hp::hp1_dataset;
use threadpool::ThreadPool;

const INPUT: &str = "SELECT * FROM measurements";

/// Worker counts under test: the fixed {1, 2, 8} ladder plus an optional
/// CI-matrix extra from `PGFMU_FLEET_WORKERS`.
fn worker_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 8];
    if let Ok(extra) = std::env::var("PGFMU_FLEET_WORKERS") {
        if let Ok(n) = extra.trim().parse::<usize>() {
            if !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

/// A session with a fast estimation config, the HP1 measurement table,
/// and `n` copies of an HP1 instance.
fn fleet_session(n: usize) -> (PgFmu, Vec<String>) {
    let s = PgFmu::new().unwrap();
    s.set_estimation_config(EstimationConfig {
        population: 8,
        generations: 2,
        local_max_iters: 4,
        ..EstimationConfig::fast()
    });
    hp1_dataset(1)
        .slice(0, 48)
        .load_into(s.db(), "measurements")
        .unwrap();
    let ids: Vec<String> = (1..=n).map(|i| format!("HP1Instance{i}")).collect();
    s.fmu_create("HP1", Some(&ids[0])).unwrap();
    for id in &ids[1..] {
        s.fmu_copy(&ids[0], Some(id)).unwrap();
    }
    (s, ids)
}

/// Snapshot of every instance's catalogue values (the state
/// `fmu_simulate` persists and `fmu_parest` writes estimates into).
fn catalog_snapshot(s: &PgFmu, ids: &[String]) -> Vec<(String, String, Option<f64>)> {
    let mut snap = Vec::new();
    for id in ids {
        for row in s.fmu_variables(id).unwrap() {
            snap.push((row.instance_id, row.var_name, row.value));
        }
    }
    snap
}

#[test]
fn fleet_simulate_is_byte_identical_to_the_serial_loop() {
    let (s, ids) = fleet_session(5);

    // Serial reference: one fmu_simulate per instance, concatenated.
    let mut serial = s.fmu_simulate(&ids[0], Some(INPUT), None, None).unwrap();
    for id in &ids[1..] {
        serial
            .rows
            .extend(s.fmu_simulate(id, Some(INPUT), None, None).unwrap().rows);
    }
    let serial_state = catalog_snapshot(&s, &ids);

    for workers in worker_counts() {
        // fmu_simulate persists final states — rewind the fleet so every
        // run starts from the same declared initial values.
        for id in &ids {
            s.fmu_reset(id).unwrap();
        }
        let fleet = s
            .fmu_simulate_fleet(&ids, Some(INPUT), None, None, Some(workers))
            .unwrap();
        assert_eq!(fleet.columns, serial.columns, "workers={workers}");
        assert_eq!(
            fleet.rows, serial.rows,
            "fleet output diverged from the serial loop at workers={workers}"
        );
        assert_eq!(
            catalog_snapshot(&s, &ids),
            serial_state,
            "persisted catalogue state diverged at workers={workers}"
        );
    }
}

#[test]
fn fleet_parest_pins_the_serial_parameter_vectors() {
    let (s, ids) = fleet_session(3);
    s.set_mi_enabled(true);
    let sqls = vec![INPUT.to_string()];

    let serial = s.fmu_parest(&ids, &sqls, None, None).unwrap();
    // Copies share identical measurements: the anchor runs G+LaG, the
    // tail takes the LO fast path — the exact split the pool fans out.
    assert_eq!(serial[0].strategy, Strategy::GlobalLocal);
    assert!(serial[1..]
        .iter()
        .all(|r| r.strategy == Strategy::LocalOnly));

    for workers in worker_counts() {
        for id in &ids {
            s.fmu_reset(id).unwrap();
        }
        let fleet = s
            .fmu_parest_fleet(&ids, &sqls, None, None, Some(workers))
            .unwrap();
        assert_eq!(fleet.len(), serial.len());
        for (a, b) in serial.iter().zip(&fleet) {
            assert_eq!(a.instance_id, b.instance_id, "workers={workers}");
            assert_eq!(
                a.params, b.params,
                "parameter vector diverged for '{}' at workers={workers}",
                a.instance_id
            );
            assert_eq!(a.rmse, b.rmse, "workers={workers}");
            assert_eq!(a.strategy, b.strategy, "workers={workers}");
            assert_eq!(a.global_evals, b.global_evals, "workers={workers}");
            assert_eq!(a.local_evals, b.local_evals, "workers={workers}");
        }
    }
}

#[test]
fn fleet_parest_without_mi_is_equally_pinned() {
    let (s, ids) = fleet_session(3);
    s.set_mi_enabled(false);
    let sqls = vec![INPUT.to_string()];
    let serial = s.fmu_parest(&ids, &sqls, None, None).unwrap();
    assert!(serial.iter().all(|r| r.strategy == Strategy::GlobalLocal));
    for workers in worker_counts() {
        let fleet = s
            .fmu_parest_fleet(&ids, &sqls, None, None, Some(workers))
            .unwrap();
        for (a, b) in serial.iter().zip(&fleet) {
            assert_eq!(a.params, b.params, "workers={workers}");
            assert_eq!(a.rmse, b.rmse, "workers={workers}");
        }
    }
}

/// The thread-keyed-transaction regression: a pooled worker that
/// inherits a leaked open transaction from a previous task must start
/// its next task on a clean auto-commit session.
#[test]
fn worker_session_guard_resets_a_leaked_transaction_between_tasks() {
    let s = PgFmu::new().unwrap();
    s.execute("CREATE TABLE t (x int)").unwrap();
    let db = s.db();
    let pool = ThreadPool::new(1);

    // Task 0 misbehaves: BEGINs, writes, and never commits — the open
    // transaction stays pinned to the worker thread.
    pool.run(1, |_| {
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
    })
    .unwrap();

    // Task 1 lands on the same worker thread. Under the guard it must
    // observe a clean session: no open transaction, leaked write gone.
    let observed = pool
        .run(1, |_| {
            let _g = WorkerSessionGuard::enter(db);
            (db.in_transaction(), {
                let q = db.execute("SELECT count(*) FROM t").unwrap();
                q.rows[0][0].clone()
            })
        })
        .unwrap();
    assert_eq!(observed[0], (false, Value::Int(0)));

    // And the guard's drop half: a task that BEGINs under the guard and
    // unwinds before committing leaves nothing behind either.
    let _ = pool.run(1, |_| {
        let _g = WorkerSessionGuard::enter(db);
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO t VALUES (2)").unwrap();
        panic!("task dies mid-transaction");
    });
    let count = pool
        .run(1, |_| {
            let _g = WorkerSessionGuard::enter(db);
            db.execute("SELECT count(*) FROM t").unwrap().rows[0][0].clone()
        })
        .unwrap();
    assert_eq!(
        count[0],
        Value::Int(0),
        "mid-transaction panic leaked a write"
    );
}

#[test]
fn fleet_counters_surface_in_pgfmu_stats() {
    let (s, ids) = fleet_session(4);
    s.fmu_simulate_fleet(&ids, Some(INPUT), None, None, Some(2))
        .unwrap();
    let stat = |name: &str| -> i64 {
        let q = s
            .execute(&format!(
                "SELECT value FROM pgfmu_stats() WHERE stat = '{name}'"
            ))
            .unwrap();
        match q.rows[0][0] {
            Value::Int(n) => n,
            ref other => panic!("unexpected stat value {other:?}"),
        }
    };
    assert_eq!(stat("fleet_tasks"), 4);
    assert_eq!(stat("fleet_workers"), 2);
    assert!(stat("fleet_task_ns") > 0, "per-task wall time not recorded");
}

#[test]
fn fleet_udfs_are_callable_from_sql() {
    let (s, ids) = fleet_session(2);
    let direct = s
        .fmu_simulate_fleet(&ids, Some(INPUT), None, None, Some(2))
        .unwrap();
    for id in &ids {
        s.fmu_reset(id).unwrap();
    }
    let via_sql = s
        .execute(
            "SELECT * FROM fmu_simulate_fleet('{HP1Instance1, HP1Instance2}', \
             'SELECT * FROM measurements')",
        )
        .unwrap();
    assert_eq!(via_sql, direct);

    let report = s
        .execute(
            "SELECT * FROM fmu_parest_fleet('{HP1Instance1, HP1Instance2}', \
             'SELECT * FROM measurements')",
        )
        .unwrap();
    assert_eq!(report.len(), 2);
    assert_eq!(
        report.columns,
        vec![
            "instanceid",
            "estimationerror",
            "strategy",
            "globalevals",
            "localevals"
        ]
    );
    for row in &report.rows {
        match &row[1] {
            Value::Float(rmse) => assert!(rmse.is_finite()),
            other => panic!("unexpected estimationerror {other:?}"),
        }
    }
}

#[test]
fn fleet_simulate_validates_inputs_and_surfaces_task_errors() {
    let (s, ids) = fleet_session(2);

    let err = s
        .fmu_simulate_fleet(&[], Some(INPUT), None, None, Some(2))
        .unwrap_err();
    assert!(
        err.to_string().contains("no model instances"),
        "unexpected error: {err}"
    );

    // An unknown instance inside the batch fails the whole call with the
    // instance's own error, not a panic.
    let mut bad = ids.clone();
    bad.push("NoSuchInstance".into());
    let err = s
        .fmu_simulate_fleet(&bad, Some(INPUT), None, None, Some(2))
        .unwrap_err();
    assert!(
        err.to_string().contains("NoSuchInstance"),
        "unexpected error: {err}"
    );
}
