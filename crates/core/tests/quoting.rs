//! Quoted-string escaping through the whole `fmu_create` path: the SQL
//! lexer unescapes `''`, the Modelica compiler receives the literal quote,
//! and the catalogue re-escapes it when materializing `modelvariable`
//! rows — so a description containing an apostrophe must survive intact
//! and stay queryable.

use pgfmu::{PgFmu, Value};

const QUOTED_SOURCE: &str = "model quoted \
     parameter Real k(min = 0, max = 10) = 0.5 \"O''Brien''s decay rate\"; \
     Real x(start = 8) \"what''s left\"; \
   equation der(x) = -k * x; end quoted;";

#[test]
fn fmu_create_preserves_escaped_quotes_in_descriptions() {
    let s = PgFmu::new().unwrap();
    let q = s
        .execute(&format!(
            "SELECT fmu_create('{QUOTED_SOURCE}', 'QuotedInstance')"
        ))
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Text("QuotedInstance".into()));

    // The apostrophes must be stored unescaped in the catalogue…
    let q = s
        .execute("SELECT description FROM modelvariable WHERE varname = 'k'")
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Text("O'Brien's decay rate".into()));

    // …and the stored value must be reachable with an escaped literal,
    // proving the catalogue's own generated SQL re-escaped correctly.
    let q = s
        .execute(
            "SELECT count(*) FROM modelvariable \
             WHERE description = 'O''Brien''s decay rate'",
        )
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Int(1));
}

#[test]
fn quoted_model_still_simulates() {
    let s = PgFmu::new().unwrap();
    s.execute(&format!(
        "SELECT fmu_create('{QUOTED_SOURCE}', 'QuotedSim')"
    ))
    .unwrap();
    let q = s
        .execute("SELECT count(*) FROM fmu_simulate('QuotedSim')")
        .unwrap();
    assert!(q.rows[0][0].as_i64().unwrap() > 0);
}

#[test]
fn instance_names_with_escaped_quotes_round_trip() {
    let s = PgFmu::new().unwrap();
    let q = s
        .execute("SELECT fmu_create('HP1', 'it''s-an-instance')")
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Text("it's-an-instance".into()));
    let q = s
        .execute(
            "SELECT count(*) FROM modelinstance \
             WHERE instanceid = 'it''s-an-instance'",
        )
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Int(1));
}
