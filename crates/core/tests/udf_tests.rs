//! End-to-end tests of the pgFMU SQL surface, mirroring the paper's
//! example queries (§5–§7).

use pgfmu::{EstimationConfig, PgFmu, Value};
use pgfmu_datagen::hp::hp1_dataset;

/// A session with a fast estimation configuration and the HP1 measurement
/// table loaded (72 hourly samples — enough for parameter recovery while
/// keeping tests quick).
fn session_with_measurements() -> PgFmu {
    let s = PgFmu::new().unwrap();
    s.set_estimation_config(EstimationConfig::fast());
    let data = hp1_dataset(1).slice(0, 72);
    data.load_into(s.db(), "measurements").unwrap();
    s
}

#[test]
fn fmu_create_from_builtin_name() {
    let s = PgFmu::new().unwrap();
    let q = s
        .execute("SELECT fmu_create('HP1', 'HP1Instance1')")
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Text("HP1Instance1".into()));
    // Catalogue rows materialized (Figure 4).
    let models = s.execute("SELECT count(*) FROM model").unwrap();
    assert_eq!(models.rows[0][0], Value::Int(1));
    let vars = s.execute("SELECT count(*) FROM modelvariable").unwrap();
    assert_eq!(vars.rows[0][0], Value::Int(8));
    let vals = s
        .execute("SELECT count(*) FROM modelinstancevalues")
        .unwrap();
    assert_eq!(vals.rows[0][0], Value::Int(6)); // 5 params + 1 state
}

#[test]
fn fmu_create_from_inline_modelica() {
    let s = PgFmu::new().unwrap();
    let q = s
        .execute(
            "SELECT fmu_create('model heatpump \
               parameter Real A(min=-10, max=10) = 0; \
               parameter Real B(min=-20, max=20) = 0; \
               parameter Real E(min=-20, max=20) = 0; \
               parameter Real C = 0; parameter Real D = 7.8; \
               input Real u(min=0, max=1); output Real y; \
               Real x(start = 20.75); \
             equation der(x) = A*x + B*u + E; y = C*x + D*u; end heatpump;', \
             'HP0Instance1')",
        )
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Text("HP0Instance1".into()));
}

#[test]
fn fmu_create_tolerates_swapped_argument_order() {
    // The paper's §5 second example passes (instanceId, modelRef).
    let s = PgFmu::new().unwrap();
    let q = s.execute("SELECT fmu_create('MyInstance', 'HP0')").unwrap();
    assert_eq!(q.rows[0][0], Value::Text("MyInstance".into()));
}

#[test]
fn fmu_copy_shares_the_parent_model() {
    let s = PgFmu::new().unwrap();
    s.execute("SELECT fmu_create('HP1', 'HP1Instance1')")
        .unwrap();
    let q = s
        .execute("SELECT fmu_copy('HP1Instance1', 'HP1Instance2')")
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Text("HP1Instance2".into()));
    // Still exactly one model in the catalogue and in FMU storage.
    let models = s.execute("SELECT count(*) FROM model").unwrap();
    assert_eq!(models.rows[0][0], Value::Int(1));
    let instances = s.execute("SELECT count(*) FROM modelinstance").unwrap();
    assert_eq!(instances.rows[0][0], Value::Int(2));
}

#[test]
fn fmu_variables_filtered_to_parameters_matches_table3() {
    let s = PgFmu::new().unwrap();
    s.execute("SELECT fmu_create('heatpump', 'HP1Instance1')")
        .unwrap();
    let q = s
        .execute(
            "SELECT * FROM fmu_variables('HP1Instance1') AS f \
             WHERE f.varType = 'parameter' ORDER BY f.varName",
        )
        .unwrap();
    assert_eq!(
        q.columns,
        vec![
            "instanceid",
            "varname",
            "vartype",
            "initialvalue",
            "minvalue",
            "maxvalue"
        ]
    );
    let names: Vec<String> = q.rows.iter().map(|r| r[1].to_string()).collect();
    assert_eq!(names, ["A", "B", "C", "D", "E"]);
    // Paper Table 3: A has bounds [-10, 10] and initial value 0.
    let a = &q.rows[0];
    assert_eq!(a[3], Value::Float(0.0));
    assert_eq!(a[4], Value::Float(-10.0));
    assert_eq!(a[5], Value::Float(10.0));
}

#[test]
fn set_initial_min_max_get_and_reset() {
    let s = PgFmu::new().unwrap();
    s.execute("SELECT fmu_create('heatpump', 'HP1Instance1')")
        .unwrap();
    // Paper §5 example queries.
    s.execute("SELECT fmu_set_initial('HP1Instance1', 'A', 0)")
        .unwrap();
    s.execute("SELECT fmu_set_minimum('HP1Instance1', 'A', -10)")
        .unwrap();
    s.execute("SELECT fmu_set_maximum('HP1Instance1', 'A', 10)")
        .unwrap();
    s.execute("SELECT fmu_set_initial('HP1Instance1', 'A', 3.5)")
        .unwrap();
    let q = s
        .execute("SELECT * FROM fmu_get('HP1Instance1', 'A')")
        .unwrap();
    assert_eq!(q.columns, vec!["initialvalue", "minvalue", "maxvalue"]);
    assert_eq!(q.rows[0][0], Value::Float(3.5));
    s.execute("SELECT fmu_reset('HP1Instance1')").unwrap();
    let q = s
        .execute("SELECT * FROM fmu_get('HP1Instance1', 'A')")
        .unwrap();
    assert_eq!(q.rows[0][0], Value::Float(0.0));
}

#[test]
fn delete_instance_and_model() {
    let s = PgFmu::new().unwrap();
    s.execute("SELECT fmu_create('HP1', 'a')").unwrap();
    s.execute("SELECT fmu_copy('a', 'b')").unwrap();
    s.execute("SELECT fmu_delete_instance('a')").unwrap();
    assert!(s.execute("SELECT * FROM fmu_variables('a')").is_err());
    // Deleting the model by name cascades to 'b'.
    s.execute("SELECT fmu_delete_model('HP1')").unwrap();
    assert!(s.execute("SELECT * FROM fmu_variables('b')").is_err());
    let q = s.execute("SELECT count(*) FROM modelinstance").unwrap();
    assert_eq!(q.rows[0][0], Value::Int(0));
}

#[test]
fn fmu_simulate_long_output_matches_table4_shape() {
    let s = session_with_measurements();
    s.execute("SELECT fmu_create('HP1', 'HP1Instance1')")
        .unwrap();
    let q = s
        .execute(
            "SELECT simulationTime, instanceId, varName, value \
             FROM fmu_simulate('HP1Instance1', 'SELECT * FROM measurements') \
             WHERE varName IN ('y', 'x')",
        )
        .unwrap();
    // 72 grid points x 2 variables.
    assert_eq!(q.len(), 144);
    assert_eq!(q.rows[0][1], Value::Text("HP1Instance1".into()));
    assert_eq!(q.rows[0][2], Value::Text("x".into()));
    // Simulation times are real timestamps from the measurement grid.
    assert_eq!(q.rows[0][0].to_string(), "2015-02-01 00:00:00");
    // fmu_simulate persists the final state back into the catalogue
    // (the paper's italic ModelInstanceValues update).
    let x = s
        .execute(
            "SELECT value FROM modelinstancevalues \
             WHERE instanceid = 'HP1Instance1' AND varname = 'x'",
        )
        .unwrap();
    assert_ne!(x.rows[0][0], Value::Float(20.75));
}

#[test]
fn fmu_simulate_multi_instance_lateral_join() {
    let s = session_with_measurements();
    s.execute("SELECT fmu_create('HP1', 'HP1Instance1')")
        .unwrap();
    s.execute("SELECT fmu_copy('HP1Instance1', 'HP1Instance2')")
        .unwrap();
    s.execute("SELECT fmu_copy('HP1Instance1', 'HP1Instance3')")
        .unwrap();
    // The paper's §7 multi-instance pattern.
    let q = s
        .execute(
            "SELECT * FROM generate_series(1, 3) AS id, \
             LATERAL fmu_simulate('HP1Instance' || id::text, \
                                  'SELECT * FROM measurements') AS f \
             WHERE f.varName = 'x'",
        )
        .unwrap();
    assert_eq!(q.len(), 3 * 72);
}

#[test]
fn fmu_simulate_time_window() {
    let s = session_with_measurements();
    s.execute("SELECT fmu_create('HP1', 'i')").unwrap();
    let q = s
        .execute(
            "SELECT * FROM fmu_simulate('i', 'SELECT * FROM measurements', \
             timestamp '2015-02-01 10:00', timestamp '2015-02-01 20:00') \
             WHERE varname = 'x'",
        )
        .unwrap();
    assert_eq!(q.len(), 11);
    assert_eq!(q.rows[0][0].to_string(), "2015-02-01 10:00:00");
    assert_eq!(q.rows[10][0].to_string(), "2015-02-01 20:00:00");
}

#[test]
fn fmu_simulate_without_inputs_uses_default_experiment() {
    let s = PgFmu::new().unwrap();
    s.execute("SELECT fmu_create('HP0', 'h')").unwrap();
    let q = s
        .execute("SELECT * FROM fmu_simulate('h') WHERE varname = 'x'")
        .unwrap();
    // HP0's default experiment: 0..24h at 1h steps.
    assert_eq!(q.len(), 25);
}

#[test]
fn fmu_simulate_error_paths() {
    let s = session_with_measurements();
    s.execute("SELECT fmu_create('HP1', 'i')").unwrap();
    // Model has inputs but no input query.
    let err = s.execute("SELECT * FROM fmu_simulate('i')").unwrap_err();
    assert!(err.to_string().contains("insufficient"), "{err}");
    // Window outside the provided series.
    let err = s
        .execute(
            "SELECT * FROM fmu_simulate('i', 'SELECT * FROM measurements', \
             timestamp '2015-03-01 00:00', timestamp '2015-03-02 00:00')",
        )
        .unwrap_err();
    assert!(err.to_string().contains("insufficient"), "{err}");
    // Reversed window.
    let err = s
        .execute(
            "SELECT * FROM fmu_simulate('i', 'SELECT * FROM measurements', \
             timestamp '2015-02-01 10:00', timestamp '2015-02-01 10:00')",
        )
        .unwrap_err();
    assert!(err.to_string().contains("incomplete"), "{err}");
    // Unknown instance.
    assert!(s.execute("SELECT * FROM fmu_simulate('ghost')").is_err());
}

#[test]
fn fmu_parest_single_instance_recovers_parameters() {
    let s = session_with_measurements();
    s.execute("SELECT fmu_create('HP1', 'HP1Instance1')")
        .unwrap();
    // Paper §6 example (estimating a subset of parameters by name).
    let q = s
        .execute(
            "SELECT fmu_parest('{HP1Instance1}', \
             '{SELECT * FROM measurements}', '{Cp, R}')",
        )
        .unwrap();
    let rmse = q.rows[0][0].as_f64().unwrap();
    assert!(rmse < 1.0, "estimation rmse too large: {rmse}");
    // The catalogue now holds the estimated values (italic rows in the
    // paper's Figure 4): near the ground truth Cp = R = 1.5.
    let cp = s
        .execute(
            "SELECT value FROM modelinstancevalues \
             WHERE instanceid = 'HP1Instance1' AND varname = 'Cp'",
        )
        .unwrap();
    let cp = cp.rows[0][0].as_f64().unwrap();
    assert!((cp - 1.5).abs() < 0.4, "Cp estimate {cp}");
}

#[test]
fn fmu_parest_defaults_to_all_tunable_parameters() {
    let s = session_with_measurements();
    s.execute("SELECT fmu_create('HP1', 'i')").unwrap();
    let q = s
        .execute("SELECT fmu_parest('i', 'SELECT * FROM measurements')")
        .unwrap();
    assert!(q.rows[0][0].as_f64().unwrap() < 1.5);
}

#[test]
fn fmu_parest_multi_instance_uses_lo_for_similar_datasets() {
    let s = session_with_measurements();
    s.execute("SELECT fmu_create('HP1', 'HP1Instance1')")
        .unwrap();
    s.execute("SELECT fmu_copy('HP1Instance1', 'HP1Instance2')")
        .unwrap();
    // A 5%-scaled second dataset (similar under the 20% threshold).
    let scaled = pgfmu_datagen::scale_dataset(&hp1_dataset(1).slice(0, 72), 1.05);
    scaled.load_into(s.db(), "measurements2").unwrap();

    let q = s
        .execute(
            "SELECT * FROM fmu_parest_report('{HP1Instance1, HP1Instance2}', \
             '{SELECT * FROM measurements, SELECT * FROM measurements2}', '{Cp, R}')",
        )
        .unwrap();
    assert_eq!(q.len(), 2);
    assert_eq!(q.rows[0][2], Value::Text("G+LaG".into()));
    assert_eq!(q.rows[1][2], Value::Text("LO".into()));
    // LO spends far fewer objective evaluations.
    let full = q.rows[0][3].as_i64().unwrap() + q.rows[0][4].as_i64().unwrap();
    let lo = q.rows[1][3].as_i64().unwrap() + q.rows[1][4].as_i64().unwrap();
    assert!(lo * 2 < full, "LO {lo} vs full {full}");
}

#[test]
fn fmu_parest_mi_disabled_runs_full_pipeline_everywhere() {
    let s = session_with_measurements();
    s.execute("SELECT fmu_create('HP1', 'a')").unwrap();
    s.execute("SELECT fmu_copy('a', 'b')").unwrap();
    s.set_mi_enabled(false); // pgFMU− configuration
    let q = s
        .execute(
            "SELECT * FROM fmu_parest_report('{a, b}', \
             '{SELECT * FROM measurements, SELECT * FROM measurements}', '{Cp, R}')",
        )
        .unwrap();
    assert_eq!(q.rows[0][2], Value::Text("G+LaG".into()));
    assert_eq!(q.rows[1][2], Value::Text("G+LaG".into()));
    // The SQL switch flips it back on.
    s.execute("SELECT fmu_mi_optimization('on')").unwrap();
    assert!(s.mi_enabled());
}

#[test]
fn fmu_parest_dissimilar_dataset_falls_back_to_global() {
    let s = session_with_measurements();
    s.execute("SELECT fmu_create('HP1', 'a')").unwrap();
    s.execute("SELECT fmu_copy('a', 'b')").unwrap();
    let scaled = pgfmu_datagen::scale_dataset(&hp1_dataset(1).slice(0, 72), 1.6);
    scaled.load_into(s.db(), "m_far").unwrap();
    let q = s
        .execute(
            "SELECT * FROM fmu_parest_report('{a, b}', \
             '{SELECT * FROM measurements, SELECT * FROM m_far}', '{Cp, R}')",
        )
        .unwrap();
    assert_eq!(q.rows[1][2], Value::Text("G+LaG".into()));
}

#[test]
fn fmu_parest_error_paths() {
    let s = session_with_measurements();
    s.execute("SELECT fmu_create('HP1', 'i')").unwrap();
    // Mismatched arrays.
    let err = s
        .execute(
            "SELECT fmu_parest('{i}', \
             '{SELECT * FROM measurements, SELECT * FROM measurements, \
               SELECT * FROM measurements}')",
        )
        .unwrap_err();
    assert!(err.to_string().contains("input queries"), "{err}");
    // Unknown instance.
    assert!(s
        .execute("SELECT fmu_parest('ghost', 'SELECT * FROM measurements')")
        .is_err());
    // Unknown parameter.
    assert!(s
        .execute("SELECT fmu_parest('i', 'SELECT * FROM measurements', '{Zp}')")
        .is_err());
    // Input query with no matching columns.
    s.execute("CREATE TABLE junk (ts timestamp, foo float)")
        .unwrap();
    s.execute("INSERT INTO junk VALUES ('2015-02-01 00:00', 1.0), ('2015-02-01 01:00', 2.0)")
        .unwrap();
    assert!(s
        .execute("SELECT fmu_parest('i', 'SELECT * FROM junk', '{Cp}')")
        .is_err());
}

#[test]
fn fmu_control_heats_toward_setpoint() {
    let s = PgFmu::new().unwrap();
    s.execute("SELECT fmu_create('HP1', 'i')").unwrap();
    // Start cold; ask the controller to reach 18 degrees over 12 hours.
    s.execute("SELECT fmu_set_initial('i', 'x', 5.0)").unwrap();
    let q = s
        .execute("SELECT * FROM fmu_control('i', 'u', 12.0, 6, 18.0, 0.001)")
        .unwrap();
    assert_eq!(q.len(), 6);
    let us: Vec<f64> = q.rows.iter().map(|r| r[1].as_f64().unwrap()).collect();
    assert!(us.iter().all(|u| (0.0..=1.0).contains(u)));
    // Heating must be substantial to climb from 5 toward 18 degrees.
    let mean_u = us.iter().sum::<f64>() / us.len() as f64;
    assert!(mean_u > 0.5, "controller barely heats: {us:?}");
}

#[test]
fn export_predictions_back_into_a_table() {
    // Figure 1 step 6 as a single INSERT..SELECT — no external tool.
    let s = session_with_measurements();
    s.execute("SELECT fmu_create('HP1', 'i')").unwrap();
    s.execute(
        "CREATE TABLE predictions (ts timestamp, instanceid text, varname text, value float)",
    )
    .unwrap();
    s.execute(
        "INSERT INTO predictions \
         SELECT * FROM fmu_simulate('i', 'SELECT * FROM measurements') \
         WHERE varname = 'x'",
    )
    .unwrap();
    let q = s.execute("SELECT count(*) FROM predictions").unwrap();
    assert_eq!(q.rows[0][0], Value::Int(72));
    // Further analysis in plain SQL (Figure 1 step 7).
    let q = s
        .execute("SELECT avg(value), min(value), max(value) FROM predictions")
        .unwrap();
    let avg = q.rows[0][0].as_f64().unwrap();
    assert!((0.0..25.0).contains(&avg), "implausible mean temp {avg}");
}

#[test]
fn prepared_binds_drive_udf_reentrant_estimation() {
    // The full extended-protocol path from the session surface: a prepared
    // statement whose binds include the input_sql that fmu_parest executes
    // re-entrantly — no literal quoting anywhere.
    let s = session_with_measurements();
    s.query(
        "SELECT fmu_create($1, $2)",
        pgfmu::params!["HP1", "HP1Instance1"],
    )
    .unwrap();
    let parest = s.prepare("SELECT fmu_parest($1, $2, $3)").unwrap();
    assert_eq!(parest.n_params(), 3);
    let q = parest
        .query(pgfmu::params![
            "HP1Instance1",
            "SELECT * FROM measurements",
            "{Cp, R}"
        ])
        .unwrap();
    assert!(q.rows[0][0].as_f64().unwrap() < 1.0);

    // Re-executing the same handle re-enters without re-parsing, and the
    // statement cache hit is observable through pgfmu_stats().
    let hits_before: Vec<i64> = s
        .query_as(
            "SELECT value FROM pgfmu_stats() WHERE stat = $1",
            pgfmu::params!["cache_hits"],
        )
        .unwrap();
    parest
        .query(pgfmu::params![
            "HP1Instance1",
            "SELECT * FROM measurements WHERE x IS NOT NULL",
            "{Cp, R}"
        ])
        .unwrap();
    let hits_after: Vec<i64> = s
        .query_as(
            "SELECT value FROM pgfmu_stats() WHERE stat = $1",
            pgfmu::params!["cache_hits"],
        )
        .unwrap();
    // The re-entrant input_sql and the stats query itself both hit the
    // cache on their second run.
    assert!(hits_after[0] > hits_before[0]);

    // Typed decoding of a catalogue join, through the same bound surface.
    let rows: Vec<(String, f64)> = s
        .query_as(
            "SELECT varname, value FROM modelinstancevalues \
             WHERE instanceid = $1 AND varname = $2",
            pgfmu::params!["HP1Instance1", "Cp"],
        )
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].0, "Cp");
    assert!((rows[0].1 - 1.5).abs() < 0.4, "Cp estimate {}", rows[0].1);
}
