//! Minimal CSV I/O for the baseline workflow.
//!
//! The traditional stack exports measurements from the database into text
//! files and imports predictions back (paper Figure 1 / Table 1 steps 2
//! and 6); this module is the file format those steps use.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use pgfmu_sqlmini::{format_timestamp, parse_timestamp};

use crate::dataset::Dataset;

/// Write a dataset as CSV (timestamp column first).
pub fn write_csv(data: &Dataset, path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    let mut header = vec![data.time_column.clone()];
    header.extend(data.columns.iter().map(|(n, _)| n.clone()));
    writeln!(w, "{}", header.join(","))?;
    for i in 0..data.len() {
        let mut row = vec![format_timestamp(data.timestamps[i])];
        for (_, c) in &data.columns {
            row.push(format!("{:?}", c[i]));
        }
        writeln!(w, "{}", row.join(","))?;
    }
    w.flush()
}

/// Read a dataset back from CSV.
pub fn read_csv(path: &Path) -> std::io::Result<Dataset> {
    let file = std::fs::File::open(path)?;
    let mut lines = std::io::BufReader::new(file).lines();
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let header = lines.next().ok_or_else(|| bad("empty CSV"))??;
    let names: Vec<String> = header.split(',').map(str::to_string).collect();
    if names.is_empty() {
        return Err(bad("CSV header has no columns"));
    }
    let mut timestamps = Vec::new();
    let mut columns: Vec<(String, Vec<f64>)> =
        names[1..].iter().map(|n| (n.clone(), Vec::new())).collect();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != names.len() {
            return Err(bad(&format!(
                "row has {} cells, header has {}",
                cells.len(),
                names.len()
            )));
        }
        timestamps
            .push(parse_timestamp(cells[0]).map_err(|e| bad(&format!("bad timestamp: {e}")))?);
        for (j, cell) in cells[1..].iter().enumerate() {
            columns[j].1.push(
                cell.trim()
                    .parse::<f64>()
                    .map_err(|_| bad(&format!("bad number '{cell}' in column {}", names[j + 1])))?,
            );
        }
    }
    if timestamps.is_empty() {
        return Err(bad("CSV has no data rows"));
    }
    Ok(Dataset::new(names[0].clone(), timestamps, columns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hp::hp1_dataset;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pgfmu-csv-{}-{name}", std::process::id()))
    }

    #[test]
    fn round_trip() {
        let data = hp1_dataset(17);
        let path = temp_path("roundtrip.csv");
        write_csv(&data, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.time_column, data.time_column);
        assert_eq!(back.timestamps, data.timestamps);
        assert_eq!(back.columns.len(), data.columns.len());
        for ((na, ca), (nb, cb)) in data.columns.iter().zip(&back.columns) {
            assert_eq!(na, nb);
            for (a, b) in ca.iter().zip(cb) {
                assert!((a - b).abs() < 1e-12);
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_inputs_error() {
        let path = temp_path("bad.csv");
        std::fs::write(&path, "").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::write(&path, "ts,x\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::write(&path, "ts,x\n2015-02-01 00:00,1.0,9.9\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::write(&path, "ts,x\nnot-a-time,1.0\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::write(&path, "ts,x\n2015-02-01 00:00,banana\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
