//! The dataset container shared by generators, loaders and the baseline.

use pgfmu_sqlmini::{timestamp_from_parts, Database, Value};

/// A measurement dataset: a timestamp grid plus named numeric columns
/// (paper Table 6 shape).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Name of the timestamp column (conventionally `ts`).
    pub time_column: String,
    /// Epoch-second timestamps, strictly increasing, uniform.
    pub timestamps: Vec<i64>,
    /// Named numeric series, each as long as `timestamps`.
    pub columns: Vec<(String, Vec<f64>)>,
}

impl Dataset {
    /// Create a dataset, panicking on shape mismatches (generator bug).
    pub fn new(
        time_column: impl Into<String>,
        timestamps: Vec<i64>,
        columns: Vec<(String, Vec<f64>)>,
    ) -> Self {
        for (name, col) in &columns {
            assert_eq!(
                col.len(),
                timestamps.len(),
                "column '{name}' length mismatch"
            );
        }
        assert!(
            timestamps.windows(2).all(|w| w[1] > w[0]),
            "timestamps must be strictly increasing"
        );
        Dataset {
            time_column: time_column.into(),
            timestamps,
            columns,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// A named column.
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.as_slice())
    }

    /// Sample times in hours relative to the first timestamp.
    pub fn times_hours(&self) -> Vec<f64> {
        let t0 = self.timestamps[0];
        self.timestamps
            .iter()
            .map(|t| (t - t0) as f64 / 3600.0)
            .collect()
    }

    /// Slice the dataset to the half-open index range `[from, to)`.
    pub fn slice(&self, from: usize, to: usize) -> Dataset {
        Dataset {
            time_column: self.time_column.clone(),
            timestamps: self.timestamps[from..to].to_vec(),
            columns: self
                .columns
                .iter()
                .map(|(n, c)| (n.clone(), c[from..to].to_vec()))
                .collect(),
        }
    }

    /// Load the dataset into a (new) table of the given database.
    pub fn load_into(&self, db: &Database, table: &str) -> Result<(), pgfmu_sqlmini::SqlError> {
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|(n, _)| format!("{n} float"))
            .collect();
        db.execute(&format!(
            "CREATE TABLE {table} ({} timestamp, {})",
            self.time_column,
            cols.join(", ")
        ))?;
        let rows: Vec<Vec<Value>> = (0..self.len())
            .map(|i| {
                let mut row = Vec::with_capacity(1 + self.columns.len());
                row.push(Value::Timestamp(self.timestamps[i]));
                for (_, c) in &self.columns {
                    row.push(Value::Float(c[i]));
                }
                row
            })
            .collect();
        db.insert_rows(table, rows)?;
        Ok(())
    }
}

/// Hourly timestamp grid starting at a civil date, `n` samples,
/// `step_minutes` apart.
pub fn timestamp_grid(y: i64, mo: u32, d: u32, h: u32, n: usize, step_minutes: u32) -> Vec<i64> {
    let t0 = timestamp_from_parts(y, mo, d, h, 0, 0);
    (0..n)
        .map(|i| t0 + (i as i64) * (step_minutes as i64) * 60)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::new(
            "ts",
            timestamp_grid(2015, 2, 1, 0, 3, 60),
            vec![("x".into(), vec![1.0, 2.0, 3.0])],
        )
    }

    #[test]
    fn times_hours_are_relative() {
        assert_eq!(tiny().times_hours(), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn slicing() {
        let d = tiny().slice(1, 3);
        assert_eq!(d.len(), 2);
        assert_eq!(d.column("x").unwrap(), &[2.0, 3.0]);
    }

    #[test]
    fn load_into_database() {
        let db = Database::new();
        tiny().load_into(&db, "measurements").unwrap();
        let q = db
            .execute("SELECT count(*), avg(x) FROM measurements")
            .unwrap();
        assert_eq!(q.rows[0][0], Value::Int(3));
        assert_eq!(q.rows[0][1].as_f64().unwrap(), 2.0);
        let q = db
            .execute("SELECT ts FROM measurements ORDER BY ts LIMIT 1")
            .unwrap();
        assert_eq!(q.rows[0][0].to_string(), "2015-02-01 00:00:00");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn shape_mismatch_panics() {
        Dataset::new(
            "ts",
            timestamp_grid(2015, 2, 1, 0, 3, 60),
            vec![("x".into(), vec![1.0])],
        );
    }

    #[test]
    fn grid_step_minutes() {
        let g = timestamp_grid(2018, 4, 4, 8, 4, 30);
        assert_eq!(g[1] - g[0], 1800);
        assert_eq!(g.len(), 4);
    }
}
