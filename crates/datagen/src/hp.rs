//! NIST-like heat-pump datasets (paper Table 6, top).
//!
//! The traces are produced by closed-loop simulation of the ground-truth
//! HP1 physics (`Cp = 1.5`, `R = 1.5`, `P = 7.8`, `η = 2.65`,
//! `θa = −10 °C`): a thermostat tracks a day/night setpoint schedule and
//! occasional one-hour excitation pulses ("no heating" / "heating at max
//! power", the paper's §1 scenarios) enrich the signal for system
//! identification. Measurement noise is added to the indoor temperature.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pgfmu_fmi::builtin::{
    HP0_CONSTANT_RATE, HP_COP, HP_OUTDOOR_TEMP, HP_RATED_POWER, HP_TRUE_CP, HP_TRUE_R,
};

use crate::dataset::{timestamp_grid, Dataset};
use crate::noise::add_noise;

/// Measurement noise on the HP1 indoor temperature (°C); tuned so the
/// validation RMSE lands near the paper's 0.5445 °C (Table 7).
pub const HP1_NOISE_SIGMA: f64 = 0.54;
/// Measurement noise on the HP0 indoor temperature (°C); paper RMSE
/// 0.7701 °C.
pub const HP0_NOISE_SIGMA: f64 = 0.77;
/// Number of hourly samples: Feb 1 – Feb 28, 2015 (paper §8.2).
pub const HP_SAMPLES: usize = 28 * 24;

/// Ground-truth single-step derivative of the heat-pump house.
fn hp_derivative(x: f64, u: f64) -> f64 {
    (HP_OUTDOOR_TEMP - x) / (HP_TRUE_R * HP_TRUE_CP) + HP_RATED_POWER * HP_COP * u / HP_TRUE_CP
}

/// Integrate one hour with sub-stepped RK4 under constant `u`.
fn advance_one_hour(x: f64, u: f64) -> f64 {
    let mut x = x;
    let h = 0.05;
    let mut t = 0.0;
    while t < 1.0 - 1e-12 {
        let k1 = hp_derivative(x, u);
        let k2 = hp_derivative(x + 0.5 * h * k1, u);
        let k3 = hp_derivative(x + 0.5 * h * k2, u);
        let k4 = hp_derivative(x + h * k3, u);
        x += h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
        t += h;
    }
    x
}

/// Day/night setpoint schedule (°C).
fn setpoint(hour_of_day: usize) -> f64 {
    if (7..22).contains(&hour_of_day) {
        20.0
    } else {
        16.0
    }
}

/// The HP1 dataset: columns `x` (noisy indoor temperature), `y` (HP power
/// consumption) and `u` (power rating setting in [0, 1]).
pub fn hp1_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4850_3100);
    let timestamps = timestamp_grid(2015, 2, 1, 0, HP_SAMPLES, 60);
    let mut x = 20.75_f64;
    let mut xs = Vec::with_capacity(HP_SAMPLES);
    let mut us = Vec::with_capacity(HP_SAMPLES);
    for k in 0..HP_SAMPLES {
        let hour_of_day = k % 24;
        // Occasional one-hour excitation pulse (5% of hours).
        let u = if rng.gen::<f64>() < 0.05 {
            if rng.gen::<bool>() {
                1.0
            } else {
                0.0
            }
        } else {
            // Proportional thermostat + feed-forward toward the setpoint.
            let sp = setpoint(hour_of_day);
            let feed_forward = (sp - HP_OUTDOOR_TEMP) / (HP_RATED_POWER * HP_COP * HP_TRUE_R);
            (feed_forward + 0.25 * (sp - x)).clamp(0.0, 1.0)
        };
        xs.push(x);
        us.push(u);
        x = advance_one_hour(x, u);
    }
    add_noise(&mut xs, HP1_NOISE_SIGMA, &mut rng);
    let ys: Vec<f64> = us.iter().map(|u| HP_RATED_POWER * u).collect();
    Dataset::new(
        "ts",
        timestamps,
        vec![("x".into(), xs), ("y".into(), ys), ("u".into(), us)],
    )
}

/// The HP0 dataset: the same house with the heat pump held at the constant
/// 1.38 % rate (paper §8.2); columns `x` and `y` only (HP0 has no inputs).
pub fn hp0_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4850_3000);
    let timestamps = timestamp_grid(2015, 2, 1, 0, HP_SAMPLES, 60);
    let mut x = 20.75_f64;
    let mut xs = Vec::with_capacity(HP_SAMPLES);
    for _ in 0..HP_SAMPLES {
        xs.push(x);
        x = advance_one_hour(x, HP0_CONSTANT_RATE);
    }
    add_noise(&mut xs, HP0_NOISE_SIGMA, &mut rng);
    let y = HP_RATED_POWER * HP0_CONSTANT_RATE;
    let ys = vec![y; HP_SAMPLES];
    Dataset::new("ts", timestamps, vec![("x".into(), xs), ("y".into(), ys)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hp1_shape_and_determinism() {
        let a = hp1_dataset(42);
        let b = hp1_dataset(42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 672);
        assert_eq!(a.columns.len(), 3);
        assert_ne!(a, hp1_dataset(43));
    }

    #[test]
    fn hp1_respects_physical_constraints() {
        let d = hp1_dataset(1);
        let u = d.column("u").unwrap();
        assert!(u.iter().all(|v| (0.0..=1.0).contains(v)));
        let y = d.column("y").unwrap();
        for (ui, yi) in u.iter().zip(y) {
            assert!((yi - HP_RATED_POWER * ui).abs() < 1e-12, "y must be P*u");
        }
        // Indoor temperatures stay in a plausible band.
        let x = d.column("x").unwrap();
        assert!(
            x.iter().all(|v| (-15.0..=30.0).contains(v)),
            "x out of band"
        );
    }

    #[test]
    fn hp1_has_excitation_variance() {
        let d = hp1_dataset(7);
        let u = d.column("u").unwrap();
        let mean = u.iter().sum::<f64>() / u.len() as f64;
        let var = u.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / u.len() as f64;
        assert!(
            var > 0.005,
            "control signal too flat for identification: {var}"
        );
    }

    #[test]
    fn hp0_decays_to_equilibrium() {
        let d = hp0_dataset(5);
        let x = d.column("x").unwrap();
        let eq = HP_OUTDOOR_TEMP + HP_RATED_POWER * HP_COP * HP_TRUE_R * HP0_CONSTANT_RATE;
        // Warm start, cold finish near the analytic equilibrium.
        assert!(x[0] > 15.0);
        let tail_mean: f64 = x[x.len() - 100..].iter().sum::<f64>() / 100.0;
        assert!(
            (tail_mean - eq).abs() < 0.3,
            "tail {tail_mean} vs equilibrium {eq}"
        );
    }

    #[test]
    fn hp0_output_is_constant_power() {
        let d = hp0_dataset(5);
        let y = d.column("y").unwrap();
        assert!(y
            .iter()
            .all(|v| (v - HP_RATED_POWER * HP0_CONSTANT_RATE).abs() < 1e-12));
    }
}
