//! # pgfmu-datagen — synthetic measurement datasets for the evaluation
//!
//! The paper calibrates against two real datasets we cannot redistribute:
//! the NIST Net-Zero Energy Residential Test Facility traces (HP0/HP1) and
//! classroom measurements from the SDU Odense O44 building. Following the
//! substitution rule in DESIGN.md, this crate synthesizes equivalents by
//! simulating the *ground-truth* models of `pgfmu_fmi::builtin` under
//! realistic exogenous profiles and adding Gaussian measurement noise whose
//! magnitude is tuned to land validation RMSEs in the paper's ranges
//! (≈0.77 °C HP0, ≈0.54 °C HP1, ≈1.64 °C Classroom — Table 7).
//!
//! The multi-instance datasets follow the paper's own synthetic procedure
//! (§8.1): "We multiply the original dataset time series values with a
//! constant delta from the numerical range δ ∈ {0.8, …, 1.2} … while
//! ensuring … the physical constraints of the real-world systems."

pub mod classroom;
pub mod csvio;
pub mod dataset;
pub mod hp;
pub mod mi;
pub mod noise;

pub use dataset::Dataset;
pub use mi::{scale_dataset, synthetic_instances};
