//! Multi-instance synthetic datasets (paper §8.1).
//!
//! "For experimental evaluation within the MI scenario, we construct 100
//! synthetic datasets for each FMU model. We multiply the original dataset
//! time series values with a constant delta from the numerical range
//! δ ∈ {0.8, …, 1.2} … while ensuring the same data distribution as the
//! original datasets. We also ensure that the datasets respect the
//! physical constraints of the real-world systems."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

/// Physical clamp ranges by column name (constraints of the real systems).
fn clamp_range(column: &str) -> Option<(f64, f64)> {
    match column {
        "u" => Some((0.0, 1.0)),
        "dpos" | "vpos" => Some((0.0, 100.0)),
        "solrad" => Some((0.0, f64::INFINITY)),
        "occ" => Some((0.0, f64::INFINITY)),
        _ => None,
    }
}

/// Scale every series of a dataset by `delta`, clamping columns with hard
/// physical ranges and keeping integer-valued columns integral.
pub fn scale_dataset(base: &Dataset, delta: f64) -> Dataset {
    let columns = base
        .columns
        .iter()
        .map(|(name, col)| {
            let integral = col.iter().all(|v| v.fract() == 0.0);
            let scaled: Vec<f64> = col
                .iter()
                .map(|v| {
                    let mut x = v * delta;
                    if let Some((lo, hi)) = clamp_range(name) {
                        x = x.clamp(lo, hi);
                    }
                    if integral {
                        x = x.round();
                    }
                    x
                })
                .collect();
            (name.clone(), scaled)
        })
        .collect();
    Dataset {
        time_column: base.time_column.clone(),
        timestamps: base.timestamps.clone(),
        columns,
    }
}

/// Generate `n` per-instance datasets with deltas drawn uniformly from
/// `[0.8, 1.2]` (instance 0 keeps δ = 1, mirroring the paper's original
/// dataset as the first instance). Returns `(delta, dataset)` pairs.
pub fn synthetic_instances(base: &Dataset, n: usize, seed: u64) -> Vec<(f64, Dataset)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0DE1_7A00);
    (0..n)
        .map(|i| {
            let delta = if i == 0 {
                1.0
            } else {
                rng.gen_range(0.8..=1.2)
            };
            (delta, scale_dataset(base, delta))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hp::hp1_dataset;

    #[test]
    fn scaling_multiplies_unclamped_series() {
        let base = hp1_dataset(1);
        let scaled = scale_dataset(&base, 1.1);
        let x0 = base.column("x").unwrap();
        let x1 = scaled.column("x").unwrap();
        for (a, b) in x0.iter().zip(x1) {
            assert!((b - a * 1.1).abs() < 1e-12);
        }
    }

    #[test]
    fn scaling_respects_u_constraint() {
        let base = hp1_dataset(2);
        let scaled = scale_dataset(&base, 1.2);
        assert!(scaled
            .column("u")
            .unwrap()
            .iter()
            .all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn instances_are_deterministic_and_first_is_identity() {
        let base = hp1_dataset(3);
        let a = synthetic_instances(&base, 10, 99);
        let b = synthetic_instances(&base, 10, 99);
        assert_eq!(a, b);
        assert_eq!(a[0].0, 1.0);
        assert_eq!(a[0].1, base);
        for (delta, _) in &a {
            assert!((0.8..=1.2).contains(delta));
        }
    }

    #[test]
    fn occupancy_stays_integral_under_scaling() {
        let base = crate::classroom::classroom_dataset(1);
        let scaled = scale_dataset(&base, 1.17);
        assert!(scaled
            .column("occ")
            .unwrap()
            .iter()
            .all(|v| v.fract() == 0.0 && *v >= 0.0));
    }
}
