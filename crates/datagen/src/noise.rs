//! Deterministic Gaussian noise (Box–Muller over a seeded PRNG).

use rand::rngs::StdRng;
use rand::Rng;

/// Draw one standard-normal deviate.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    // Box–Muller; u1 in (0, 1] avoids ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Add N(0, sigma²) noise to a series in place.
pub fn add_noise(series: &mut [f64], sigma: f64, rng: &mut StdRng) {
    for v in series {
        *v += sigma * standard_normal(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn moments_are_approximately_standard() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..5)
                .map(|_| standard_normal(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn add_noise_scales_with_sigma() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = vec![0.0; 10_000];
        add_noise(&mut a, 0.5, &mut rng);
        let var: f64 = a.iter().map(|v| v * v).sum::<f64>() / a.len() as f64;
        assert!((var.sqrt() - 0.5).abs() < 0.02);
        let mut b = vec![1.0; 4];
        add_noise(&mut b, 0.0, &mut rng);
        assert_eq!(b, vec![1.0; 4]);
    }
}
