//! Estimation configuration.

/// Knobs for the G + LaG / LO estimation pipeline.
///
/// Defaults are tuned so that the global phase dominates the runtime
/// (the paper measures G at ≈ 90 % of estimation time, §8.2/Figure 6),
/// which is the property the MI optimization exploits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimationConfig {
    /// GA population size.
    pub population: usize,
    /// GA generation count.
    pub generations: usize,
    /// Tournament size for GA selection.
    pub tournament: usize,
    /// GA mutation probability per gene.
    pub mutation_prob: f64,
    /// GA mutation scale as a fraction of each parameter's range.
    pub mutation_scale: f64,
    /// Elite individuals carried over unchanged per generation.
    pub elitism: usize,
    /// Maximum local-search iterations (same budget for LaG and LO — the
    /// paper stresses LO *is* LaG with different initial values).
    pub local_max_iters: usize,
    /// Local-search convergence tolerance on the objective decrease.
    pub local_tol: f64,
    /// MI similarity threshold on relative L2 dissimilarity; the paper
    /// settles on 20 % (§8.2).
    pub mi_threshold: f64,
    /// LO neighbourhood radius, as a fraction of each parameter's range.
    /// The MI fast path is justified by the optima of similar instances
    /// lying "within the same neighbourhood" (paper Figure 5); LO searches
    /// only that neighbourhood around the warm start. Warm starts from
    /// dissimilar datasets therefore under-perform G+LaG — the Figure-6
    /// divergence.
    pub lo_neighborhood: f64,
    /// RNG seed ("fixed randomly derived seed" in the paper, §8.1).
    pub seed: u64,
    /// Worker threads for objective-evaluation fan-out (GA population
    /// sweeps, multi-start local searches, MI instance tails). `0` or
    /// `1` means serial. Any value produces byte-identical results: all
    /// randomness stays on the driving thread and parallel evaluations
    /// are reduced in deterministic (index) order.
    pub workers: usize,
    /// Local searches launched after the global phase, started from the
    /// GA's best `local_starts` individuals (lowest cost wins, earliest
    /// start breaking ties). `1` reproduces the classic single LaG
    /// refinement exactly; more starts buy robustness against the local
    /// stage stalling in a side valley, and run concurrently under
    /// `workers`.
    pub local_starts: usize,
}

impl Default for EstimationConfig {
    fn default() -> Self {
        EstimationConfig {
            population: 40,
            generations: 25,
            tournament: 3,
            mutation_prob: 0.25,
            mutation_scale: 0.15,
            elitism: 2,
            local_max_iters: 20,
            local_tol: 1e-10,
            mi_threshold: 0.20,
            lo_neighborhood: 0.023,
            seed: 0xB10C_5EED,
            workers: 1,
            local_starts: 1,
        }
    }
}

impl EstimationConfig {
    /// A cheap configuration for unit tests.
    pub fn fast() -> Self {
        EstimationConfig {
            population: 16,
            generations: 10,
            local_max_iters: 12,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_put_global_cost_well_above_local() {
        let c = EstimationConfig::default();
        let global_evals = c.population * c.generations;
        // Local search on a 4-parameter model: ~(2*dim + line search) per iter.
        let local_evals = c.local_max_iters * (2 * 4 + 3);
        assert!(
            global_evals as f64 / local_evals as f64 > 4.0,
            "global phase must dominate: {global_evals} vs {local_evals}"
        );
    }
}
