//! Estimation drivers: Algorithm 2 (`fmu_parest_SI`) and Algorithm 3
//! (`fmu_parest_MI`) from the paper.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use threadpool::ThreadPool;

use crate::config::EstimationConfig;
use crate::ga::run_ga_in;
use crate::local::{run_local, LocalOutcome};
use crate::metrics::dissimilarity;
use crate::objective::Objective;

/// Which estimation strategy produced an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Global search followed by local refinement (G + LaG, Algorithm 2).
    GlobalLocal,
    /// Local search only, warm-started from a similar instance's optimum
    /// (LO, the MI optimization of Algorithm 3).
    LocalOnly,
}

/// The result of estimating one instance's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimationOutcome {
    /// Estimated parameter values (aligned with the objective's bounds).
    pub params: Vec<f64>,
    /// Final objective value — the estimation RMSE the UDF returns.
    pub rmse: f64,
    /// Strategy used.
    pub strategy: Strategy,
    /// Objective evaluations spent in the global phase.
    pub global_evals: u64,
    /// Objective evaluations spent in the local phase.
    pub local_evals: u64,
    /// Wall-clock time of the global phase.
    pub global_time: Duration,
    /// Wall-clock time of the local phase.
    pub local_time: Duration,
}

impl EstimationOutcome {
    /// Total wall-clock time.
    pub fn total_time(&self) -> Duration {
        self.global_time + self.local_time
    }
}

/// Algorithm 2: single-instance estimation — run G, then LaG from G's best.
/// Spins up a private evaluation pool when `cfg.workers > 1`.
pub fn estimate_si(obj: &dyn Objective, cfg: &EstimationConfig) -> EstimationOutcome {
    let pool = (cfg.workers > 1).then(|| ThreadPool::new(cfg.workers));
    estimate_si_in(obj, cfg, pool.as_ref())
}

/// Algorithm 2 against a caller-provided evaluation pool (`None` =
/// serial). The RNG is re-seeded from `cfg.seed` per call and both the
/// GA sweeps and the multi-start local stage reduce in deterministic
/// order, so the outcome is byte-identical for any pool width.
pub fn estimate_si_in(
    obj: &dyn Objective,
    cfg: &EstimationConfig,
    pool: Option<&ThreadPool>,
) -> EstimationOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let t0 = Instant::now();
    let ga = run_ga_in(obj, cfg, &mut rng, pool);
    let global_time = t0.elapsed();
    let t1 = Instant::now();
    // Multi-start LaG: one bounded local search per GA elite (the single
    // default start reproduces the classic pipeline exactly), fanned out
    // over the pool when one is available.
    let locals: Vec<LocalOutcome> = match pool {
        Some(pool) if ga.elites.len() > 1 => pool
            .run(ga.elites.len(), |i| run_local(obj, &ga.elites[i], cfg))
            .unwrap_or_else(|e| panic!("local refinement failed: {e}")),
        _ => ga
            .elites
            .iter()
            .map(|start| run_local(obj, start, cfg))
            .collect(),
    };
    let local_time = t1.elapsed();
    let local_evals = locals.iter().map(|l| l.evals).sum();
    // Deterministic reduction: strictly lowest cost wins, the earliest
    // start breaking ties — independent of completion order.
    let mut best = 0;
    for i in 1..locals.len() {
        if locals[i].cost < locals[best].cost {
            best = i;
        }
    }
    let mut locals = locals;
    let local = locals.swap_remove(best);
    // The local stage can only improve on the GA point; keep the better.
    let (params, rmse) = if local.cost <= ga.cost {
        (local.params, local.cost)
    } else {
        (ga.params, ga.cost)
    };
    EstimationOutcome {
        params,
        rmse,
        strategy: Strategy::GlobalLocal,
        global_evals: ga.evals,
        local_evals,
        global_time,
        local_time,
    }
}

/// An objective restricted to a neighbourhood box around a warm start —
/// the formalization of the paper's Figure-5 premise that similar
/// instances' optima "lie within the same neighbourhood".
struct NeighborhoodObjective<'a> {
    inner: &'a dyn Objective,
    bounds: Vec<crate::objective::ParamSpec>,
}

impl Objective for NeighborhoodObjective<'_> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn bounds(&self) -> &[crate::objective::ParamSpec] {
        &self.bounds
    }
    fn eval(&self, params: &[f64]) -> f64 {
        self.inner.eval(params)
    }
    fn eval_count(&self) -> u64 {
        self.inner.eval_count()
    }
}

/// LO: local-only estimation from a warm start (the MI fast path). This is
/// the *same* local algorithm as LaG, started from the similar instance's
/// optimum and searching within its neighbourhood
/// (`cfg.lo_neighborhood` × parameter range around the warm start).
pub fn estimate_lo(
    obj: &dyn Objective,
    warm_start: &[f64],
    cfg: &EstimationConfig,
) -> EstimationOutcome {
    let bounds = obj
        .bounds()
        .iter()
        .zip(warm_start)
        .map(|(spec, &w)| {
            let radius = cfg.lo_neighborhood.max(1e-6) * (spec.upper - spec.lower);
            crate::objective::ParamSpec {
                name: spec.name.clone(),
                lower: (w - radius).max(spec.lower),
                upper: (w + radius).min(spec.upper),
            }
        })
        .collect();
    let restricted = NeighborhoodObjective { inner: obj, bounds };
    let t0 = Instant::now();
    let local = run_local(&restricted, warm_start, cfg);
    let local_time = t0.elapsed();
    EstimationOutcome {
        params: local.params,
        rmse: local.cost,
        strategy: Strategy::LocalOnly,
        global_evals: 0,
        local_evals: local.evals,
        global_time: Duration::ZERO,
        local_time,
    }
}

/// One instance of a multi-instance estimation batch.
pub struct MiProblem {
    /// Instance identifier (for reporting).
    pub instance_id: String,
    /// Parent model key — MI reuse only applies between instances of the
    /// same parent FMU (Algorithm 3, line 8).
    pub model_key: String,
    /// The instance's objective.
    pub objective: Arc<dyn Objective>,
    /// Measurement series fingerprint for the L2 similarity check.
    pub similarity_series: Vec<Vec<f64>>,
}

/// Algorithm 3: multi-instance estimation.
///
/// The first instance is estimated with G+LaG. Every later instance of the
/// same parent model whose measurements lie within `cfg.mi_threshold`
/// relative L2 distance of the *first* instance's measurements is estimated
/// with LO warm-started at the first instance's optimum; all others fall
/// back to G+LaG.
pub fn estimate_mi(problems: &[MiProblem], cfg: &EstimationConfig) -> Vec<EstimationOutcome> {
    estimate_mi_in(problems, cfg, None)
}

/// Algorithm 3 with cross-instance fan-out. Only the *anchor* (first)
/// instance is sequential — it decides every later instance's LO
/// eligibility. Each tail instance depends solely on the anchor's
/// outcome and its own data, and every `estimate_si`/`estimate_lo` call
/// re-seeds its RNG from `cfg.seed`; evaluating the tail concurrently on
/// `pool` and collecting in input order is therefore outcome-for-outcome
/// identical to the serial loop.
pub fn estimate_mi_in(
    problems: &[MiProblem],
    cfg: &EstimationConfig,
    pool: Option<&ThreadPool>,
) -> Vec<EstimationOutcome> {
    let Some((first, tail)) = problems.split_first() else {
        return Vec::new();
    };
    let anchor = estimate_si(first.objective.as_ref(), cfg);
    let solve_tail = |p: &MiProblem| {
        let use_lo = p.model_key == first.model_key
            && anchor.params.len() == p.objective.dim()
            && dissimilarity(&p.similarity_series, &first.similarity_series) < cfg.mi_threshold;
        if use_lo {
            estimate_lo(p.objective.as_ref(), &anchor.params, cfg)
        } else {
            estimate_si(p.objective.as_ref(), cfg)
        }
    };
    let rest: Vec<EstimationOutcome> = match pool {
        Some(pool) if tail.len() > 1 => pool
            .run(tail.len(), |i| solve_tail(&tail[i]))
            .unwrap_or_else(|e| panic!("multi-instance estimation failed: {e}")),
        _ => tail.iter().map(solve_tail).collect(),
    };
    let mut outcomes = Vec::with_capacity(problems.len());
    outcomes.push(anchor);
    outcomes.extend(rest);
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{MeasurementData, SimulationObjective};
    use pgfmu_fmi::{builtin, InputSeries, InputSet, Interpolation, SimulationOptions};

    /// Ground-truth HP1 dataset with optional scaling delta and noise-free
    /// measurements (fast and deterministic for unit tests).
    fn hp1_data(cp: f64, r: f64, delta: f64) -> MeasurementData {
        let fmu = Arc::new(builtin::hp1());
        let mut inst = fmu.instantiate();
        inst.set("Cp", cp).unwrap();
        inst.set("R", r).unwrap();
        let times: Vec<f64> = (0..72).map(|i| i as f64).collect();
        let u: Vec<f64> = times
            .iter()
            .map(|t| (0.55 + 0.35 * (t * 0.37).sin()).clamp(0.0, 1.0))
            .collect();
        let series = InputSeries::new("u", times.clone(), u.clone(), Interpolation::Hold).unwrap();
        let inputs = InputSet::bind(&["u"], vec![series]).unwrap();
        let res = inst
            .simulate(
                &inputs,
                &SimulationOptions {
                    start: Some(0.0),
                    stop: Some(71.0),
                    output_step: Some(1.0),
                    ..Default::default()
                },
            )
            .unwrap();
        let x: Vec<f64> = res.series("x").unwrap().iter().map(|v| v * delta).collect();
        MeasurementData::new(times, vec![("x".into(), x), ("u".into(), u)]).unwrap()
    }

    fn objective_for(data: &MeasurementData) -> SimulationObjective {
        let fmu = Arc::new(builtin::hp1());
        let inst = fmu.instantiate();
        SimulationObjective::new(
            Arc::clone(&fmu),
            inst.param_values(),
            inst.start_state(),
            &["Cp".into(), "R".into()],
            data,
        )
        .unwrap()
    }

    #[test]
    fn si_recovers_ground_truth_parameters() {
        let data = hp1_data(1.5, 1.5, 1.0);
        let obj = objective_for(&data);
        let cfg = EstimationConfig::fast();
        let out = estimate_si(&obj, &cfg);
        assert!(
            (out.params[0] - 1.5).abs() < 0.1,
            "Cp estimate {:?}",
            out.params
        );
        assert!(
            (out.params[1] - 1.5).abs() < 0.1,
            "R estimate {:?}",
            out.params
        );
        assert!(out.rmse < 0.05, "rmse {}", out.rmse);
        assert_eq!(out.strategy, Strategy::GlobalLocal);
        assert!(out.global_evals > out.local_evals);
    }

    #[test]
    fn lo_with_warm_start_matches_si_on_similar_data() {
        let cfg = EstimationConfig::fast();
        let base = hp1_data(1.5, 1.5, 1.0);
        let si = estimate_si(&objective_for(&base), &cfg);

        // 5% scaled dataset: optimum nearby, LO from SI's optimum must be
        // as accurate as a full G+LaG.
        let scaled = hp1_data(1.5, 1.5, 1.05);
        let lo = estimate_lo(&objective_for(&scaled), &si.params, &cfg);
        let full = estimate_si(&objective_for(&scaled), &cfg);
        assert!(
            lo.rmse <= full.rmse * 1.25 + 1e-6,
            "LO rmse {} vs full {}",
            lo.rmse,
            full.rmse
        );
        // LO must be substantially cheaper than the full G+LaG pipeline
        // (under the production-scale default config the ratio is ~0.1;
        // the fast test config shrinks the GA so the gap narrows).
        let full_total = full.global_evals + full.local_evals;
        assert!(
            lo.local_evals * 2 < full_total,
            "LO evals {} vs full {}",
            lo.local_evals,
            full_total
        );
    }

    #[test]
    fn mi_uses_lo_below_threshold_and_si_above() {
        let cfg = EstimationConfig {
            mi_threshold: 0.2,
            ..EstimationConfig::fast()
        };
        let problems: Vec<MiProblem> = [1.0, 1.05, 1.6]
            .iter()
            .enumerate()
            .map(|(i, &delta)| {
                let data = hp1_data(1.5, 1.5, delta);
                MiProblem {
                    instance_id: format!("HP1Instance{}", i + 1),
                    model_key: "HP1".into(),
                    similarity_series: data.series_for_similarity(),
                    objective: Arc::new(objective_for(&data)),
                }
            })
            .collect();
        let outcomes = estimate_mi(&problems, &cfg);
        assert_eq!(outcomes[0].strategy, Strategy::GlobalLocal);
        assert_eq!(outcomes[1].strategy, Strategy::LocalOnly);
        // delta=1.6 is ~60% dissimilar -> falls back to G+LaG.
        assert_eq!(outcomes[2].strategy, Strategy::GlobalLocal);
    }

    #[test]
    fn mi_never_reuses_across_different_models() {
        let cfg = EstimationConfig::fast();
        let d1 = hp1_data(1.5, 1.5, 1.0);
        let d2 = hp1_data(1.5, 1.5, 1.01);
        let problems = vec![
            MiProblem {
                instance_id: "a".into(),
                model_key: "HP1".into(),
                similarity_series: d1.series_for_similarity(),
                objective: Arc::new(objective_for(&d1)),
            },
            MiProblem {
                instance_id: "b".into(),
                model_key: "OtherModel".into(),
                similarity_series: d2.series_for_similarity(),
                objective: Arc::new(objective_for(&d2)),
            },
        ];
        let outcomes = estimate_mi(&problems, &cfg);
        assert_eq!(outcomes[1].strategy, Strategy::GlobalLocal);
    }

    #[test]
    fn estimation_is_deterministic_for_fixed_seed() {
        let data = hp1_data(1.5, 1.5, 1.0);
        let cfg = EstimationConfig::fast();
        let a = estimate_si(&objective_for(&data), &cfg);
        let b = estimate_si(&objective_for(&data), &cfg);
        assert_eq!(a.params, b.params);
        assert_eq!(a.rmse, b.rmse);
    }

    #[test]
    fn global_phase_dominates_wall_clock() {
        let data = hp1_data(1.5, 1.5, 1.0);
        let out = estimate_si(&objective_for(&data), &EstimationConfig::default());
        let g = out.global_time.as_secs_f64();
        let l = out.local_time.as_secs_f64();
        // Paper: G takes ~90% of execution time. Allow a generous band.
        assert!(
            g / (g + l) > 0.7,
            "global phase share too small: {}",
            g / (g + l)
        );
    }
}
