//! Genetic algorithm — the Global search (G).
//!
//! Mirrors ModestPy's GA stage: a real-coded GA with tournament selection,
//! BLX-α blend crossover, range-scaled Gaussian mutation and elitism, run
//! over the box-constrained parameter space with initial individuals drawn
//! uniformly at random between the bounds (paper §6: "We set the initial
//! parameter values to random numbers between the lower and the upper
//! bounds").
//!
//! **Determinism contract.** The RNG touches only population *generation*
//! (initialization, selection, crossover, mutation) and always runs on
//! the driving thread. Fitness sweeps are pure, independent per
//! individual, and RNG-free — so evaluating them on a worker pool with
//! index-ordered result slots is byte-identical to the serial
//! `iter().map(eval)` sweep, for any worker count.

use rand::rngs::StdRng;
use rand::Rng;
use threadpool::ThreadPool;

use crate::config::EstimationConfig;
use crate::objective::Objective;

/// Result of a GA run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaOutcome {
    /// Best parameter vector found.
    pub params: Vec<f64>,
    /// Objective value at `params`.
    pub cost: f64,
    /// Number of objective evaluations spent.
    pub evals: u64,
    /// Best fitness after each evaluation sweep: the initial population
    /// first, then one entry per generation. The serial-vs-parallel
    /// equivalence suite pins this whole trajectory, not just the final
    /// point.
    pub trajectory: Vec<f64>,
    /// The final population's best `cfg.local_starts` individuals
    /// (best-first; `elites[0]` is `params`), used as starting points
    /// for the multi-start local refinement stage.
    pub elites: Vec<Vec<f64>>,
}

/// Evaluate a population, either serially or fanned out over a pool.
/// Slot `i` of the result always belongs to individual `i`, so both
/// paths produce the same vector bit for bit.
fn eval_population(
    obj: &dyn Objective,
    population: &[Vec<f64>],
    pool: Option<&ThreadPool>,
) -> Vec<f64> {
    match pool {
        Some(pool) => pool
            .run(population.len(), |i| obj.eval(&population[i]))
            .unwrap_or_else(|e| panic!("GA population evaluation failed: {e}")),
        None => population.iter().map(|p| obj.eval(p)).collect(),
    }
}

/// Index of the fittest individual (the exact tie-break of `min_by` over
/// `partial_cmp`, shared by every selection site).
fn best_index(fitness: &[f64]) -> usize {
    (0..fitness.len())
        .min_by(|&a, &b| fitness[a].partial_cmp(&fitness[b]).unwrap())
        .expect("population is non-empty")
}

fn clamp_to_bounds(p: &mut [f64], obj: &dyn Objective) {
    for (v, spec) in p.iter_mut().zip(obj.bounds()) {
        *v = v.clamp(spec.lower, spec.upper);
    }
}

/// Run the genetic algorithm, spinning up a private evaluation pool when
/// `cfg.workers > 1`.
pub fn run_ga(obj: &dyn Objective, cfg: &EstimationConfig, rng: &mut StdRng) -> GaOutcome {
    let pool = (cfg.workers > 1).then(|| ThreadPool::new(cfg.workers));
    run_ga_in(obj, cfg, rng, pool.as_ref())
}

/// Run the genetic algorithm with a caller-provided evaluation pool
/// (`None` = serial sweeps). See the module docs for why the pooled and
/// serial paths are byte-identical.
pub fn run_ga_in(
    obj: &dyn Objective,
    cfg: &EstimationConfig,
    rng: &mut StdRng,
    pool: Option<&ThreadPool>,
) -> GaOutcome {
    let dim = obj.dim();
    let bounds = obj.bounds();
    assert!(dim > 0, "GA requires at least one parameter");
    let pop_size = cfg.population.max(4);
    let evals_before = obj.eval_count();

    // Initial population: uniform over the box.
    let mut population: Vec<Vec<f64>> = (0..pop_size)
        .map(|_| {
            (0..dim)
                .map(|d| rng.gen_range(bounds[d].lower..=bounds[d].upper))
                .collect()
        })
        .collect();
    let mut fitness: Vec<f64> = eval_population(obj, &population, pool);
    let mut trajectory = Vec::with_capacity(cfg.generations + 1);
    trajectory.push(fitness[best_index(&fitness)]);

    let tournament = |rng: &mut StdRng, fitness: &[f64]| -> usize {
        let mut best = rng.gen_range(0..pop_size);
        for _ in 1..cfg.tournament.max(2) {
            let challenger = rng.gen_range(0..pop_size);
            if fitness[challenger] < fitness[best] {
                best = challenger;
            }
        }
        best
    };

    for _gen in 0..cfg.generations {
        // Sort indices by fitness for elitism.
        let mut order: Vec<usize> = (0..pop_size).collect();
        order.sort_by(|&a, &b| fitness[a].partial_cmp(&fitness[b]).unwrap());

        let mut next: Vec<Vec<f64>> = Vec::with_capacity(pop_size);
        for &i in order.iter().take(cfg.elitism.min(pop_size)) {
            next.push(population[i].clone());
        }
        while next.len() < pop_size {
            let a = &population[tournament(rng, &fitness)];
            let b = &population[tournament(rng, &fitness)];
            // BLX-0.3 blend crossover.
            let alpha = 0.3;
            let mut child: Vec<f64> = (0..dim)
                .map(|d| {
                    let (lo, hi) = (a[d].min(b[d]), a[d].max(b[d]));
                    let span = (hi - lo).max(1e-12);
                    rng.gen_range((lo - alpha * span)..=(hi + alpha * span))
                })
                .collect();
            // Gaussian-ish mutation scaled to the parameter range.
            for d in 0..dim {
                if rng.gen::<f64>() < cfg.mutation_prob {
                    let range = bounds[d].upper - bounds[d].lower;
                    // Sum of uniforms approximates a normal deviate.
                    let z: f64 = (0..4).map(|_| rng.gen::<f64>()).sum::<f64>() / 2.0 - 1.0;
                    child[d] += z * cfg.mutation_scale * range;
                }
            }
            clamp_to_bounds(&mut child, obj);
            next.push(child);
        }
        population = next;
        fitness = eval_population(obj, &population, pool);
        trajectory.push(fitness[best_index(&fitness)]);
    }

    let best = best_index(&fitness);
    // The best individual first, then the runners-up in fitness order —
    // the seeds for multi-start local refinement. `local_starts = 1`
    // degenerates to exactly the classic single-start outcome.
    let mut elites = vec![population[best].clone()];
    if cfg.local_starts > 1 {
        let mut order: Vec<usize> = (0..pop_size).filter(|&i| i != best).collect();
        order.sort_by(|&a, &b| fitness[a].partial_cmp(&fitness[b]).unwrap());
        elites.extend(
            order
                .into_iter()
                .take(cfg.local_starts - 1)
                .map(|i| population[i].clone()),
        );
    }
    GaOutcome {
        params: population[best].clone(),
        cost: fitness[best],
        evals: obj.eval_count() - evals_before,
        trajectory,
        elites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ParamSpec;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Non-convex 2-D test objective (Himmelblau-like): several local
    /// minima; global optimum value is 0.
    struct Himmelblau {
        bounds: Vec<ParamSpec>,
        evals: AtomicU64,
    }

    impl Himmelblau {
        fn new() -> Self {
            Himmelblau {
                bounds: vec![
                    ParamSpec {
                        name: "x".into(),
                        lower: -5.0,
                        upper: 5.0,
                    },
                    ParamSpec {
                        name: "y".into(),
                        lower: -5.0,
                        upper: 5.0,
                    },
                ],
                evals: AtomicU64::new(0),
            }
        }
    }

    impl Objective for Himmelblau {
        fn dim(&self) -> usize {
            2
        }
        fn bounds(&self) -> &[ParamSpec] {
            &self.bounds
        }
        fn eval(&self, p: &[f64]) -> f64 {
            self.evals.fetch_add(1, Ordering::Relaxed);
            let (x, y) = (p[0], p[1]);
            (x * x + y - 11.0).powi(2) + (x + y * y - 7.0).powi(2)
        }
        fn eval_count(&self) -> u64 {
            self.evals.load(Ordering::Relaxed)
        }
    }

    #[test]
    fn ga_finds_a_near_global_minimum() {
        let obj = Himmelblau::new();
        let cfg = EstimationConfig::default();
        let mut rng = StdRng::seed_from_u64(7);
        let out = run_ga(&obj, &cfg, &mut rng);
        assert!(out.cost < 0.5, "GA cost too high: {}", out.cost);
        assert!(out.params.iter().all(|v| (-5.0..=5.0).contains(v)));
    }

    #[test]
    fn ga_is_deterministic_under_a_fixed_seed() {
        let cfg = EstimationConfig::fast();
        let run = || {
            let obj = Himmelblau::new();
            let mut rng = StdRng::seed_from_u64(42);
            run_ga(&obj, &cfg, &mut rng)
        };
        let a = run();
        let b = run();
        assert_eq!(a.params, b.params);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn ga_eval_budget_matches_population_times_generations() {
        let obj = Himmelblau::new();
        let cfg = EstimationConfig::fast();
        let mut rng = StdRng::seed_from_u64(1);
        let out = run_ga(&obj, &cfg, &mut rng);
        // Initial population + one evaluation sweep per generation.
        let expected = (cfg.population * (cfg.generations + 1)) as u64;
        assert_eq!(out.evals, expected);
    }

    #[test]
    fn ga_respects_bounds_tightly() {
        struct Edge {
            bounds: Vec<ParamSpec>,
            evals: AtomicU64,
        }
        impl Objective for Edge {
            fn dim(&self) -> usize {
                1
            }
            fn bounds(&self) -> &[ParamSpec] {
                &self.bounds
            }
            fn eval(&self, p: &[f64]) -> f64 {
                self.evals.fetch_add(1, Ordering::Relaxed);
                assert!(
                    (0.0..=1.0).contains(&p[0]),
                    "evaluated out of bounds: {}",
                    p[0]
                );
                // Optimum at the upper bound.
                1.0 - p[0]
            }
            fn eval_count(&self) -> u64 {
                self.evals.load(Ordering::Relaxed)
            }
        }
        let obj = Edge {
            bounds: vec![ParamSpec {
                name: "k".into(),
                lower: 0.0,
                upper: 1.0,
            }],
            evals: AtomicU64::new(0),
        };
        let mut rng = StdRng::seed_from_u64(3);
        let out = run_ga(&obj, &EstimationConfig::fast(), &mut rng);
        assert!(out.params[0] > 0.95, "should push to the bound");
    }

    #[test]
    fn pooled_evaluation_is_byte_identical_to_serial() {
        let serial = EstimationConfig::fast();
        let pooled = EstimationConfig {
            workers: 4,
            ..serial
        };
        let run = |cfg: &EstimationConfig| {
            let obj = Himmelblau::new();
            let mut rng = StdRng::seed_from_u64(42);
            run_ga(&obj, cfg, &mut rng)
        };
        let a = run(&serial);
        let b = run(&pooled);
        assert_eq!(a, b, "any worker count must reproduce the serial run");
    }

    #[test]
    fn trajectory_tracks_every_sweep_and_never_worsens() {
        let obj = Himmelblau::new();
        let cfg = EstimationConfig::fast();
        let mut rng = StdRng::seed_from_u64(11);
        let out = run_ga(&obj, &cfg, &mut rng);
        assert_eq!(out.trajectory.len(), cfg.generations + 1);
        assert!(
            out.trajectory.windows(2).all(|w| w[1] <= w[0]),
            "elitism keeps the best fitness monotone: {:?}",
            out.trajectory
        );
        assert_eq!(*out.trajectory.last().unwrap(), out.cost);
        assert_eq!(out.elites, vec![out.params.clone()]);
    }

    #[test]
    fn extra_elites_are_distinct_and_fitness_ordered() {
        let obj = Himmelblau::new();
        let cfg = EstimationConfig {
            local_starts: 3,
            ..EstimationConfig::fast()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let out = run_ga(&obj, &cfg, &mut rng);
        assert_eq!(out.elites.len(), 3);
        assert_eq!(out.elites[0], out.params);
        let costs: Vec<f64> = out.elites.iter().map(|e| obj.eval(e)).collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]), "{costs:?}");
    }
}
