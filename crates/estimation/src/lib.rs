//! # pgfmu-estimation — ModestPy-like parameter estimation for FMUs
//!
//! The paper calibrates FMU parameters with the ModestPy pattern: a
//! **Global search (G)** — a genetic algorithm exploring the box-constrained
//! parameter space — followed by a **Local search after Global (LaG)** — a
//! gradient-based method (SQP in the paper) fine-tuning the GA's best point.
//! pgFMU's multi-instance (MI) optimization replaces G+LaG with **Local
//! Only (LO)** — the *same* local algorithm warm-started from a similar
//! instance's optimum — whenever the L2 distance between the instances'
//! measurement series is below a threshold (paper §6, Algorithm 3).
//!
//! This crate implements all of it:
//!
//! * [`objective`] — the simulation-backed RMSE objective built from FMU
//!   meta-data and measurement tables;
//! * [`ga`] — the genetic algorithm (G);
//! * [`local`] — bounded quasi-Newton local search with numerical gradients
//!   (LaG / LO; the scikit-SQP stand-in);
//! * [`drivers`] — Algorithm 2 (`estimate_si`) and Algorithm 3
//!   (`estimate_mi`) plus warm-started `estimate_lo`;
//! * [`metrics`] — RMSE / MAE and the relative-L2 time-series
//!   dissimilarity used for the MI invocation condition.
//!
//! Every stage can fan its objective evaluations out over a worker pool
//! (`EstimationConfig::workers`, or the `*_in` driver variants taking an
//! explicit [`threadpool::ThreadPool`]) with a hard determinism
//! contract: randomness stays on the driving thread and parallel results
//! reduce in index order, so any worker count produces byte-identical
//! parameter vectors and best-fitness trajectories.

// Numeric-kernel idioms: indexed loops mirror textbook formulas; negated
// comparisons (`!(a > b)`) deliberately catch NaNs.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod config;
pub mod drivers;
pub mod ga;
pub mod local;
pub mod metrics;
pub mod objective;

pub use config::EstimationConfig;
pub use drivers::{
    estimate_lo, estimate_mi, estimate_mi_in, estimate_si, estimate_si_in, EstimationOutcome,
    MiProblem, Strategy,
};
pub use ga::{run_ga, run_ga_in, GaOutcome};
pub use metrics::{dissimilarity, mae, rmse};
pub use objective::{MeasurementData, Objective, ParamSpec, SimulationObjective};
