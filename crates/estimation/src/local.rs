//! Bounded local search — LaG ("Local after Global") and LO ("Local Only").
//!
//! The paper uses scikit-learn's SQP for the local stage. Our stand-in is a
//! projected quasi-Newton method: central-difference gradients, a BFGS-style
//! inverse-Hessian update, backtracking line search and projection onto the
//! box constraints. LaG and LO are *the same algorithm*; only the starting
//! point differs (GA's best point vs. another instance's optimum), exactly
//! as the paper defines them (§6).

use crate::config::EstimationConfig;
use crate::objective::Objective;

/// Result of a local-search run.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalOutcome {
    /// Best parameter vector found.
    pub params: Vec<f64>,
    /// Objective value at `params`.
    pub cost: f64,
    /// Number of objective evaluations spent.
    pub evals: u64,
    /// Iterations actually performed.
    pub iterations: usize,
}

fn project(p: &mut [f64], obj: &dyn Objective) {
    for (v, spec) in p.iter_mut().zip(obj.bounds()) {
        *v = v.clamp(spec.lower, spec.upper);
    }
}

/// Central-difference gradient with bound-aware steps.
fn gradient(obj: &dyn Objective, p: &[f64], f0: f64) -> Vec<f64> {
    let dim = obj.dim();
    let mut g = vec![0.0; dim];
    for d in 0..dim {
        let spec = &obj.bounds()[d];
        let range = (spec.upper - spec.lower).max(1e-9);
        let h = (1e-6 * range).max(1e-9);
        let mut hi = p.to_vec();
        let mut lo = p.to_vec();
        hi[d] = (p[d] + h).min(spec.upper);
        lo[d] = (p[d] - h).max(spec.lower);
        let span = hi[d] - lo[d];
        if span <= 0.0 {
            g[d] = 0.0;
            continue;
        }
        let fhi = obj.eval(&hi);
        let flo = if lo[d] == p[d] { f0 } else { obj.eval(&lo) };
        g[d] = (fhi - flo) / span;
    }
    g
}

/// Counts one search's own evaluations. `Objective::eval_count` is a
/// counter shared by every user of the objective, so a start/end delta
/// over it also absorbs whatever *concurrent* searches evaluate in
/// between — the pooled multi-start stage would report interleaving-
/// dependent `evals`. Wrapping the objective gives each search a
/// private count that is identical at any pool width.
struct CountedObjective<'a> {
    inner: &'a dyn Objective,
    evals: std::sync::atomic::AtomicU64,
}

impl Objective for CountedObjective<'_> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn bounds(&self) -> &[crate::objective::ParamSpec] {
        self.inner.bounds()
    }
    fn eval(&self, params: &[f64]) -> f64 {
        self.evals
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.eval(params)
    }
    fn eval_count(&self) -> u64 {
        self.evals.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Run the local search from `start`.
pub fn run_local(obj: &dyn Objective, start: &[f64], cfg: &EstimationConfig) -> LocalOutcome {
    let counted = CountedObjective {
        inner: obj,
        evals: std::sync::atomic::AtomicU64::new(0),
    };
    let obj: &dyn Objective = &counted;
    let dim = obj.dim();
    assert_eq!(start.len(), dim, "start point dimension mismatch");

    let mut x = start.to_vec();
    project(&mut x, obj);
    let mut fx = obj.eval(&x);

    // Inverse Hessian approximation (identity scaled per-parameter range).
    let ranges: Vec<f64> = obj
        .bounds()
        .iter()
        .map(|s| (s.upper - s.lower).max(1e-9))
        .collect();
    // Initial curvature guess: steps of ~5% of each parameter's range for
    // unit-magnitude gradients. BFGS updates refine this quickly.
    let h0: Vec<f64> = ranges.iter().map(|r| (0.05 * r) * (0.05 * r)).collect();
    let mut h_inv: Vec<Vec<f64>> = (0..dim)
        .map(|i| (0..dim).map(|j| if i == j { h0[i] } else { 0.0 }).collect())
        .collect();

    let mut g = gradient(obj, &x, fx);
    let mut iterations = 0usize;

    for _ in 0..cfg.local_max_iters {
        iterations += 1;
        // Search direction d = -H g.
        let mut dir = vec![0.0; dim];
        for i in 0..dim {
            for j in 0..dim {
                dir[i] -= h_inv[i][j] * g[j];
            }
        }
        // Ensure descent; fall back to steepest descent if the quasi-Newton
        // direction has lost descent (can happen after projections).
        let mut slope: f64 = dir.iter().zip(&g).map(|(d, gi)| d * gi).sum();
        if slope >= 0.0 {
            for i in 0..dim {
                dir[i] = -g[i] * h0[i];
            }
            slope = dir.iter().zip(&g).map(|(d, gi)| d * gi).sum();
            if slope >= 0.0 {
                break; // zero gradient — converged
            }
        }

        // Backtracking line search with an Armijo sufficient-decrease
        // condition; a symmetric overshoot (f(cand) == f(x)) must not be
        // accepted, or the improvement test below would stop prematurely.
        const C1: f64 = 1e-4;
        let mut step = 1.0;
        let mut accepted: Option<(Vec<f64>, f64)> = None;
        let mut best_seen: Option<(Vec<f64>, f64)> = None;
        for attempt in 0..12 {
            let mut cand: Vec<f64> = x.iter().zip(&dir).map(|(xi, di)| xi + step * di).collect();
            project(&mut cand, obj);
            let fc = obj.eval(&cand);
            if fc < fx && best_seen.as_ref().is_none_or(|(_, fb)| fc < *fb) {
                best_seen = Some((cand.clone(), fc));
            }
            if fc <= fx + C1 * step * slope {
                accepted = Some((cand, fc));
                // On a first-try acceptance, probe a doubled step once —
                // helps crossing shallow valleys under a small budget.
                if attempt == 0 {
                    let mut wide: Vec<f64> = x
                        .iter()
                        .zip(&dir)
                        .map(|(xi, di)| xi + 2.0 * step * di)
                        .collect();
                    project(&mut wide, obj);
                    let fw = obj.eval(&wide);
                    if fw < fc {
                        accepted = Some((wide, fw));
                    }
                }
                break;
            }
            step *= 0.5;
        }
        let Some((x_new, f_new)) = accepted.or(best_seen) else {
            break; // no descent found — converged (or at a bound corner)
        };

        let improvement = fx - f_new;
        let g_new = gradient(obj, &x_new, f_new);

        // BFGS update on the inverse Hessian.
        let s: Vec<f64> = x_new.iter().zip(&x).map(|(a, b)| a - b).collect();
        let y: Vec<f64> = g_new.iter().zip(&g).map(|(a, b)| a - b).collect();
        let sy: f64 = s.iter().zip(&y).map(|(a, b)| a * b).sum();
        if sy > 1e-12 {
            let rho = 1.0 / sy;
            // H = (I - rho s y^T) H (I - rho y s^T) + rho s s^T
            let mut hy = vec![0.0; dim];
            for i in 0..dim {
                for j in 0..dim {
                    hy[i] += h_inv[i][j] * y[j];
                }
            }
            let yhy: f64 = y.iter().zip(&hy).map(|(a, b)| a * b).sum();
            for i in 0..dim {
                for j in 0..dim {
                    h_inv[i][j] +=
                        (sy + yhy) * rho * rho * s[i] * s[j] - rho * (hy[i] * s[j] + s[i] * hy[j]);
                }
            }
        }

        x = x_new;
        fx = f_new;
        g = g_new;

        if improvement < cfg.local_tol * (1.0 + fx.abs()) {
            break;
        }
    }

    LocalOutcome {
        params: x,
        cost: fx,
        evals: counted.eval_count(),
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ParamSpec;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Quadratic {
        bounds: Vec<ParamSpec>,
        center: Vec<f64>,
        evals: AtomicU64,
    }

    impl Quadratic {
        fn new(center: Vec<f64>, lo: f64, hi: f64) -> Self {
            let bounds = center
                .iter()
                .enumerate()
                .map(|(i, _)| ParamSpec {
                    name: format!("p{i}"),
                    lower: lo,
                    upper: hi,
                })
                .collect();
            Quadratic {
                bounds,
                center,
                evals: AtomicU64::new(0),
            }
        }
    }

    impl Objective for Quadratic {
        fn dim(&self) -> usize {
            self.center.len()
        }
        fn bounds(&self) -> &[ParamSpec] {
            &self.bounds
        }
        fn eval(&self, p: &[f64]) -> f64 {
            self.evals.fetch_add(1, Ordering::Relaxed);
            p.iter()
                .zip(&self.center)
                .enumerate()
                .map(|(i, (x, c))| (1.0 + i as f64) * (x - c) * (x - c))
                .sum()
        }
        fn eval_count(&self) -> u64 {
            self.evals.load(Ordering::Relaxed)
        }
    }

    #[test]
    fn converges_on_quadratic() {
        let obj = Quadratic::new(vec![1.2, -0.7], -5.0, 5.0);
        let out = run_local(&obj, &[4.0, 4.0], &EstimationConfig::default());
        assert!(out.cost < 1e-6, "cost {}", out.cost);
        assert!((out.params[0] - 1.2).abs() < 1e-3);
        assert!((out.params[1] + 0.7).abs() < 1e-3);
    }

    #[test]
    fn interior_optimum_outside_box_lands_on_boundary() {
        // Optimum at 7, box is [-5, 5] -> should converge to 5.
        let obj = Quadratic::new(vec![7.0], -5.0, 5.0);
        let out = run_local(&obj, &[0.0], &EstimationConfig::default());
        assert!((out.params[0] - 5.0).abs() < 1e-6, "{:?}", out.params);
    }

    #[test]
    fn warm_start_near_optimum_converges() {
        let cfg = EstimationConfig::default();
        let obj_far = Quadratic::new(vec![1.0, 1.0, 1.0, 1.0], -5.0, 5.0);
        let far = run_local(&obj_far, &[-4.0, -4.0, -4.0, -4.0], &cfg);
        let obj_near = Quadratic::new(vec![1.0, 1.0, 1.0, 1.0], -5.0, 5.0);
        let near = run_local(&obj_near, &[1.01, 0.99, 1.0, 1.0], &cfg);
        assert!(near.cost <= 1e-8, "near-start cost {}", near.cost);
        assert!(far.cost <= 1e-6, "far-start cost {}", far.cost);
        // Either way the local stage stays far below the global budget.
        let cap = (cfg.local_max_iters * (2 * 4 + 16)) as u64;
        assert!(near.evals <= cap && far.evals <= cap);
    }

    #[test]
    fn never_evaluates_outside_bounds() {
        struct Checked(Quadratic);
        impl Objective for Checked {
            fn dim(&self) -> usize {
                self.0.dim()
            }
            fn bounds(&self) -> &[ParamSpec] {
                self.0.bounds()
            }
            fn eval(&self, p: &[f64]) -> f64 {
                for (v, s) in p.iter().zip(self.0.bounds()) {
                    assert!(
                        *v >= s.lower - 1e-12 && *v <= s.upper + 1e-12,
                        "out of bounds: {v}"
                    );
                }
                self.0.eval(p)
            }
            fn eval_count(&self) -> u64 {
                self.0.eval_count()
            }
        }
        let obj = Checked(Quadratic::new(vec![0.9, -0.9], -1.0, 1.0));
        let out = run_local(&obj, &[-1.0, 1.0], &EstimationConfig::default());
        assert!(out.cost < 1e-5);
    }

    #[test]
    fn iteration_budget_is_respected() {
        let cfg = EstimationConfig {
            local_max_iters: 3,
            ..EstimationConfig::default()
        };
        let obj = Quadratic::new(vec![1.0], -100.0, 100.0);
        let out = run_local(&obj, &[-90.0], &cfg);
        assert!(out.iterations <= 3);
    }
}
