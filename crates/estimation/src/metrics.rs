//! Error metrics and the time-series similarity measure.

/// Root mean square error between two equal-length series.
///
/// The paper prefers RMSE over MAE because it penalizes large errors more
/// strongly (§8.2, citing Chai & Draxler).
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse over unequal-length series");
    if a.is_empty() {
        return 0.0;
    }
    let ss: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (ss / a.len() as f64).sqrt()
}

/// Mean absolute error between two equal-length series.
pub fn mae(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mae over unequal-length series");
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Relative L2 dissimilarity between two sets of measurement series — the
/// MI invocation condition of Algorithm 3 ("we only invoke the MI
/// optimization after ensuring similarity (by calculating the L2 norm)
/// between the input (and output) measurements").
///
/// For every pair of matched series the relative distance
/// `‖a_k − b_k‖₂ / max(‖b_k‖₂, ε)` is computed over their common prefix;
/// the *maximum* across series is returned, so a 20 % threshold means *no*
/// series deviates by more than 20 %. Series sets of different arity are
/// maximally dissimilar (`+∞`).
pub fn dissimilarity(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    let mut worst = 0.0_f64;
    for (sa, sb) in a.iter().zip(b) {
        let n = sa.len().min(sb.len());
        if n == 0 {
            return f64::INFINITY;
        }
        let mut dist2 = 0.0;
        let mut ref2 = 0.0;
        for i in 0..n {
            let d = sa[i] - sb[i];
            dist2 += d * d;
            ref2 += sb[i] * sb[i];
        }
        let rel = dist2.sqrt() / ref2.sqrt().max(1e-12);
        worst = worst.max(rel);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_known_values() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5_f64).sqrt()).abs() < 1e-12);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn mae_known_values() {
        assert_eq!(mae(&[1.0, 2.0], &[2.0, 4.0]), 1.5);
        assert_eq!(mae(&[], &[]), 0.0);
    }

    #[test]
    fn rmse_penalizes_outliers_more_than_mae() {
        // One large error vs many small: RMSE > MAE (the paper's rationale
        // for preferring RMSE).
        let truth = vec![0.0; 10];
        let mut pred = vec![0.1; 10];
        pred[0] = 5.0;
        assert!(rmse(&truth, &pred) > mae(&truth, &pred));
    }

    #[test]
    #[should_panic(expected = "unequal-length")]
    fn rmse_rejects_mismatched_lengths() {
        rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn dissimilarity_of_scaled_series_matches_delta() {
        // The paper's MI datasets multiply series by δ ∈ [0.8, 1.2]; the
        // relative L2 distance of δ·x from x is exactly |δ − 1|.
        let base: Vec<f64> = (0..100).map(|i| 15.0 + (i as f64 * 0.1).sin()).collect();
        for delta in [0.8, 0.95, 1.0, 1.1, 1.2] {
            let scaled: Vec<f64> = base.iter().map(|v| v * delta).collect();
            let d = dissimilarity(std::slice::from_ref(&scaled), std::slice::from_ref(&base));
            assert!(
                (d - (delta - 1.0_f64).abs()).abs() < 1e-9,
                "delta {delta}: got {d}"
            );
        }
    }

    #[test]
    fn dissimilarity_takes_worst_series() {
        let a = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        let b = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let d = dissimilarity(&a, &b);
        assert!((d - (2.0_f64).sqrt() / (2.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn dissimilarity_arity_mismatch_is_infinite() {
        assert!(dissimilarity(&[vec![1.0]], &[]).is_infinite());
        assert!(dissimilarity(&[vec![]], &[vec![]]).is_infinite());
    }
}
