//! The simulation-backed estimation objective.
//!
//! `fmu_parest` minimizes "the sum of squared errors between the measured
//! and simulated indoor temperatures" (paper §2) — i.e. the RMSE between
//! measured series and the model's simulated states/outputs, as a function
//! of the estimated parameters. The objective is assembled automatically
//! from FMU meta-data (Challenge 2): measurement columns matching model
//! *inputs* become the simulation input object, columns matching *states or
//! outputs* become calibration targets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pgfmu_fmi::{
    Causality, FmiError, Fmu, InputSeries, InputSet, Interpolation, SimulationOptions, Variability,
};

use crate::metrics::rmse;

/// One estimated parameter with its search bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter name.
    pub name: String,
    /// Lower search bound.
    pub lower: f64,
    /// Upper search bound.
    pub upper: f64,
}

/// A black-box objective over a box-constrained parameter vector.
pub trait Objective: Send + Sync {
    /// Number of estimated parameters.
    fn dim(&self) -> usize;
    /// Bounds per parameter.
    fn bounds(&self) -> &[ParamSpec];
    /// Cost at a parameter vector (lower is better). Must be finite; use
    /// a large penalty for simulation failures.
    fn eval(&self, params: &[f64]) -> f64;
    /// Number of evaluations so far (for the G-vs-LO cost accounting).
    fn eval_count(&self) -> u64;
}

/// Measurement data as handed to `fmu_parest`: a time grid plus named
/// columns (model inputs and measured states/outputs).
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementData {
    /// Sample times in hours (relative to the series start), strictly
    /// increasing and (approximately) uniform.
    pub times: Vec<f64>,
    /// Named measurement series, each as long as `times`.
    pub columns: Vec<(String, Vec<f64>)>,
}

impl MeasurementData {
    /// Construct from a time grid and named columns, with validation.
    pub fn new(times: Vec<f64>, columns: Vec<(String, Vec<f64>)>) -> Result<Self, FmiError> {
        if times.len() < 2 {
            return Err(FmiError::Simulation(
                "measurement data needs at least two samples".into(),
            ));
        }
        for w in times.windows(2) {
            if !(w[1] > w[0]) {
                return Err(FmiError::Simulation(
                    "measurement times must be strictly increasing".into(),
                ));
            }
        }
        for (name, col) in &columns {
            if col.len() != times.len() {
                return Err(FmiError::Simulation(format!(
                    "measurement column '{name}' has {} samples for {} times",
                    col.len(),
                    times.len()
                )));
            }
            if col.iter().any(|v| !v.is_finite()) {
                return Err(FmiError::Simulation(format!(
                    "measurement column '{name}' contains non-finite values"
                )));
            }
        }
        Ok(MeasurementData { times, columns })
    }

    /// A named column, if present.
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.as_slice())
    }

    /// The (median) sampling step.
    pub fn step(&self) -> f64 {
        let mut diffs: Vec<f64> = self.times.windows(2).map(|w| w[1] - w[0]).collect();
        diffs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        diffs[diffs.len() / 2]
    }

    /// All series (in column order) — the fingerprint used by the MI
    /// similarity check.
    pub fn series_for_similarity(&self) -> Vec<Vec<f64>> {
        self.columns.iter().map(|(_, c)| c.clone()).collect()
    }
}

/// RMSE-of-simulation objective for one FMU instance and one dataset.
pub struct SimulationObjective {
    fmu: Arc<Fmu>,
    /// Full parameter vector; estimated entries are overwritten per eval.
    base_params: Vec<f64>,
    /// Positions of the estimated parameters within `base_params`.
    estimated_idx: Vec<usize>,
    specs: Vec<ParamSpec>,
    inputs: InputSet,
    start_state: Vec<f64>,
    targets: Vec<(usize, Vec<f64>)>, // (result column by name index), measured
    target_names: Vec<String>,
    opts: SimulationOptions,
    evals: AtomicU64,
}

impl std::fmt::Debug for SimulationObjective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationObjective")
            .field("model", &self.fmu.name())
            .field("estimated", &self.specs)
            .field("targets", &self.target_names)
            .finish_non_exhaustive()
    }
}

impl SimulationObjective {
    /// Build the objective.
    ///
    /// * `instance_params` — the instance's current full parameter vector
    ///   (fixed parameters keep these values during estimation).
    /// * `pars` — names of the parameters to estimate; they must be
    ///   parameters with both bounds available (from the meta-data).
    /// * `data` — the measurement table; columns matching input names feed
    ///   the simulation, columns matching state/output names are targets.
    pub fn new(
        fmu: Arc<Fmu>,
        instance_params: &[f64],
        start_state: &[f64],
        pars: &[String],
        data: &MeasurementData,
    ) -> Result<Self, FmiError> {
        if instance_params.len() != fmu.param_names().len() {
            return Err(FmiError::Simulation(format!(
                "instance parameter vector has {} entries, model has {}",
                instance_params.len(),
                fmu.param_names().len()
            )));
        }
        let mut estimated_idx = Vec::with_capacity(pars.len());
        let mut specs = Vec::with_capacity(pars.len());
        for name in pars {
            let idx = fmu.param_index(name)?;
            let var = fmu.description.variable(name)?;
            let (lower, upper) = match (var.min, var.max) {
                (Some(lo), Some(hi)) => (lo, hi),
                _ => {
                    return Err(FmiError::Simulation(format!(
                        "parameter '{name}' has no min/max bounds; estimation \
                         requires a bounded search space"
                    )))
                }
            };
            estimated_idx.push(idx);
            specs.push(ParamSpec {
                name: name.clone(),
                lower,
                upper,
            });
        }

        // Bind inputs by name (Challenge 2 auto-mapping).
        let mut series = Vec::new();
        for input in fmu.input_names() {
            let col = data.column(input).ok_or_else(|| {
                FmiError::Simulation(format!(
                    "measurement data has no column for model input '{input}'"
                ))
            })?;
            let var = fmu.description.variable(input)?;
            let interp = match var.variability {
                Variability::Discrete => Interpolation::Hold,
                _ => Interpolation::Linear,
            };
            series.push(InputSeries::new(
                input.clone(),
                data.times.clone(),
                col.to_vec(),
                interp,
            )?);
        }
        let input_names: Vec<&str> = fmu.input_names().iter().map(|s| s.as_str()).collect();
        let inputs = InputSet::bind(&input_names, series)?;

        // Calibration targets: measured states and outputs. The reported
        // series order is states-then-outputs, so each target's series
        // index is resolved here, once — the RMSE loop never looks a
        // variable up by name again.
        let mut targets = Vec::new();
        let mut target_names = Vec::new();
        for (name, col) in &data.columns {
            let Ok(var) = fmu.description.variable(name) else {
                continue;
            };
            if matches!(var.causality, Causality::Local | Causality::Output) {
                let idx = fmu
                    .state_names()
                    .iter()
                    .chain(fmu.output_names())
                    .position(|n| n == name)
                    .expect("state/output variable is always reported");
                targets.push((idx, col.clone()));
                target_names.push(name.clone());
            }
        }
        if targets.is_empty() {
            return Err(FmiError::Simulation(
                "measurement data contains no column matching a model state \
                 or output — nothing to calibrate against"
                    .into(),
            ));
        }

        // Initial state: if a state variable is measured, start from its
        // first sample (standard system-identification practice).
        let mut start_state = start_state.to_vec();
        for (i, sname) in fmu.state_names().iter().enumerate() {
            if let Some(col) = data.column(sname) {
                start_state[i] = col[0];
            }
        }

        let opts = SimulationOptions {
            start: Some(data.times[0]),
            stop: Some(*data.times.last().unwrap()),
            output_step: Some(data.step()),
            ..Default::default()
        };

        Ok(SimulationObjective {
            fmu,
            base_params: instance_params.to_vec(),
            estimated_idx,
            specs,
            inputs,
            start_state,
            targets,
            target_names,
            opts,
            evals: AtomicU64::new(0),
        })
    }

    /// Simulate with explicit parameter values and return RMSE against the
    /// measured targets (also used for validation of a final estimate).
    pub fn rmse_at(&self, params: &[f64]) -> f64 {
        self.evals.fetch_add(1, Ordering::Relaxed);
        let mut full = self.base_params.clone();
        for (i, &idx) in self.estimated_idx.iter().enumerate() {
            full[idx] = params[i];
        }
        let mut inst = self.fmu.instantiate();
        if inst.set_params(&full).is_err() {
            return 1e9;
        }
        if inst.set_start_states(&self.start_state).is_err() {
            return 1e9;
        }
        let result = match inst.simulate(&self.inputs, &self.opts) {
            Ok(r) => r,
            Err(_) => return 1e9,
        };
        let mut total_sq = 0.0;
        let mut n = 0usize;
        for (idx, measured) in &self.targets {
            let sim = result.series_at(*idx);
            let m = sim.len().min(measured.len());
            let r = rmse(&sim[..m], &measured[..m]);
            total_sq += r * r * m as f64;
            n += m;
        }
        if n == 0 {
            1e9
        } else {
            (total_sq / n as f64).sqrt()
        }
    }

    /// The measured target names (for reporting).
    pub fn target_names(&self) -> &[String] {
        &self.target_names
    }
}

impl Objective for SimulationObjective {
    fn dim(&self) -> usize {
        self.specs.len()
    }

    fn bounds(&self) -> &[ParamSpec] {
        &self.specs
    }

    fn eval(&self, params: &[f64]) -> f64 {
        self.rmse_at(params)
    }

    fn eval_count(&self) -> u64 {
        self.evals.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgfmu_fmi::builtin;

    fn hp1_dataset(cp: f64, r: f64) -> MeasurementData {
        // Simulate ground truth with known params and use it as "measured".
        let fmu = Arc::new(builtin::hp1());
        let mut inst = fmu.instantiate();
        inst.set("Cp", cp).unwrap();
        inst.set("R", r).unwrap();
        let times: Vec<f64> = (0..48).map(|i| i as f64).collect();
        let u: Vec<f64> = times.iter().map(|t| 0.5 + 0.4 * (t * 0.3).sin()).collect();
        let series = InputSeries::new("u", times.clone(), u.clone(), Interpolation::Hold).unwrap();
        let inputs = InputSet::bind(&["u"], vec![series]).unwrap();
        let res = inst
            .simulate(
                &inputs,
                &SimulationOptions {
                    start: Some(0.0),
                    stop: Some(47.0),
                    output_step: Some(1.0),
                    ..Default::default()
                },
            )
            .unwrap();
        MeasurementData::new(
            times,
            vec![
                ("x".into(), res.series("x").unwrap().to_vec()),
                ("u".into(), u),
            ],
        )
        .unwrap()
    }

    #[test]
    fn objective_is_zero_at_ground_truth() {
        let fmu = Arc::new(builtin::hp1());
        let inst = fmu.instantiate();
        let data = hp1_dataset(1.5, 1.5);
        let obj = SimulationObjective::new(
            Arc::clone(&fmu),
            inst.param_values(),
            inst.start_state(),
            &["Cp".into(), "R".into()],
            &data,
        )
        .unwrap();
        let at_truth = obj.eval(&[1.5, 1.5]);
        assert!(at_truth < 1e-6, "RMSE at truth: {at_truth}");
        let off = obj.eval(&[2.5, 0.7]);
        assert!(off > at_truth + 0.01, "off-truth RMSE {off} too small");
        assert_eq!(obj.eval_count(), 2);
        assert_eq!(obj.dim(), 2);
        assert_eq!(obj.bounds()[0].name, "Cp");
    }

    #[test]
    fn missing_input_column_errors() {
        let fmu = Arc::new(builtin::hp1());
        let inst = fmu.instantiate();
        let data =
            MeasurementData::new(vec![0.0, 1.0], vec![("x".into(), vec![20.0, 20.1])]).unwrap();
        let err = SimulationObjective::new(
            Arc::clone(&fmu),
            inst.param_values(),
            inst.start_state(),
            &["Cp".into()],
            &data,
        );
        assert!(err.unwrap_err().to_string().contains("input 'u'"));
    }

    #[test]
    fn no_target_column_errors() {
        let fmu = Arc::new(builtin::hp1());
        let inst = fmu.instantiate();
        let data =
            MeasurementData::new(vec![0.0, 1.0], vec![("u".into(), vec![0.5, 0.5])]).unwrap();
        let err = SimulationObjective::new(
            Arc::clone(&fmu),
            inst.param_values(),
            inst.start_state(),
            &["Cp".into()],
            &data,
        );
        assert!(err
            .unwrap_err()
            .to_string()
            .contains("nothing to calibrate"));
    }

    #[test]
    fn unbounded_parameter_rejected() {
        let fmu = Arc::new(builtin::hp1());
        let inst = fmu.instantiate();
        let data = hp1_dataset(1.5, 1.5);
        // P is a fixed parameter without bounds.
        let err = SimulationObjective::new(
            Arc::clone(&fmu),
            inst.param_values(),
            inst.start_state(),
            &["P".into()],
            &data,
        );
        assert!(err.unwrap_err().to_string().contains("bounds"));
    }

    #[test]
    fn measurement_data_validation() {
        assert!(MeasurementData::new(vec![0.0], vec![]).is_err());
        assert!(MeasurementData::new(vec![0.0, 0.0], vec![]).is_err());
        assert!(MeasurementData::new(vec![0.0, 1.0], vec![("x".into(), vec![1.0])]).is_err());
        assert!(
            MeasurementData::new(vec![0.0, 1.0], vec![("x".into(), vec![1.0, f64::NAN])]).is_err()
        );
        let ok = MeasurementData::new(vec![0.0, 0.5, 1.0], vec![("x".into(), vec![1.0, 2.0, 3.0])])
            .unwrap();
        assert_eq!(ok.step(), 0.5);
        assert_eq!(ok.column("x").unwrap()[2], 3.0);
        assert!(ok.column("y").is_none());
    }

    #[test]
    fn simulation_failure_yields_large_penalty() {
        let fmu = Arc::new(builtin::hp1());
        let inst = fmu.instantiate();
        let data = hp1_dataset(1.5, 1.5);
        let obj = SimulationObjective::new(
            Arc::clone(&fmu),
            inst.param_values(),
            inst.start_state(),
            &["Cp".into(), "R".into()],
            &data,
        )
        .unwrap();
        // Cp near zero makes the system explosively stiff -> penalty.
        let v = obj.eval(&[1e-9, 1e-9]);
        assert!(v >= 1e6, "expected penalty, got {v}");
    }
}
