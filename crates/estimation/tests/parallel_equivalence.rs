//! Property tests for the fleet determinism contract: pooled GA
//! population evaluation must pin the *entire* serial best-fitness
//! trajectory (same seed ⇒ same generations, bit for bit), and a panic
//! inside a pooled task must surface as an error without poisoning the
//! pool for subsequent batches.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use threadpool::ThreadPool;

use pgfmu_estimation::ga::{run_ga, run_ga_in};
use pgfmu_estimation::{estimate_si, EstimationConfig, Objective, ParamSpec};

/// Non-convex 2-D objective (Himmelblau): cheap, deterministic, with
/// several local minima so trajectories actually move across generations.
struct Himmelblau {
    bounds: Vec<ParamSpec>,
    evals: AtomicU64,
}

impl Himmelblau {
    fn new() -> Self {
        let spec = |name: &str| ParamSpec {
            name: name.into(),
            lower: -5.0,
            upper: 5.0,
        };
        Himmelblau {
            bounds: vec![spec("x"), spec("y")],
            evals: AtomicU64::new(0),
        }
    }
}

impl Objective for Himmelblau {
    fn dim(&self) -> usize {
        2
    }
    fn bounds(&self) -> &[ParamSpec] {
        &self.bounds
    }
    fn eval(&self, p: &[f64]) -> f64 {
        self.evals.fetch_add(1, Ordering::Relaxed);
        let (x, y) = (p[0], p[1]);
        (x * x + y - 11.0).powi(2) + (x + y * y - 7.0).powi(2)
    }
    fn eval_count(&self) -> u64 {
        self.evals.load(Ordering::Relaxed)
    }
}

/// An objective that panics on every evaluation — the hostile task for
/// the pool's error path.
struct Exploding {
    bounds: Vec<ParamSpec>,
}

impl Objective for Exploding {
    fn dim(&self) -> usize {
        1
    }
    fn bounds(&self) -> &[ParamSpec] {
        &self.bounds
    }
    fn eval(&self, _p: &[f64]) -> f64 {
        panic!("objective exploded");
    }
    fn eval_count(&self) -> u64 {
        0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed ⇒ same generations: the pooled run's best-fitness
    /// trajectory, final parameters, cost, eval budget and elite set are
    /// all bit-identical to the serial run, for any worker count, GA
    /// shape and multi-start width.
    #[test]
    fn parallel_ga_pins_the_serial_trajectory(
        seed in 0u64..1_000_000,
        workers in 2usize..5,
        population in 6usize..16,
        generations in 1usize..6,
        local_starts in 1usize..4,
    ) {
        let serial_cfg = EstimationConfig {
            population,
            generations,
            local_starts,
            workers: 1,
            ..EstimationConfig::fast()
        };
        let pooled_cfg = EstimationConfig { workers, ..serial_cfg };
        let run = |cfg: &EstimationConfig| {
            let obj = Himmelblau::new();
            let mut rng = StdRng::seed_from_u64(seed);
            run_ga(&obj, cfg, &mut rng)
        };
        let serial = run(&serial_cfg);
        let pooled = run(&pooled_cfg);
        prop_assert_eq!(&serial.trajectory, &pooled.trajectory);
        prop_assert_eq!(serial, pooled);
    }

    /// The full SI driver (GA + multi-start local refinement) is equally
    /// pinned: parameter vectors and RMSE are bit-identical across
    /// worker counts.
    #[test]
    fn parallel_estimate_si_matches_serial(
        seed in 0u64..1_000_000,
        workers in 2usize..5,
        local_starts in 1usize..4,
    ) {
        let serial_cfg = EstimationConfig {
            population: 8,
            generations: 3,
            local_max_iters: 6,
            seed,
            local_starts,
            workers: 1,
            ..EstimationConfig::fast()
        };
        let pooled_cfg = EstimationConfig { workers, ..serial_cfg };
        let a = estimate_si(&Himmelblau::new(), &serial_cfg);
        let b = estimate_si(&Himmelblau::new(), &pooled_cfg);
        prop_assert_eq!(a.params, b.params);
        prop_assert_eq!(a.rmse, b.rmse);
        prop_assert_eq!(a.global_evals, b.global_evals);
        prop_assert_eq!(a.local_evals, b.local_evals);
    }
}

/// A panic in a pooled evaluation task surfaces to the caller as a panic
/// carrying the task's message — and the pool itself is not poisoned:
/// the very same pool immediately runs the next GA to completion.
#[test]
fn task_panic_surfaces_and_poisons_nothing() {
    let pool = ThreadPool::new(2);
    let cfg = EstimationConfig {
        population: 6,
        generations: 2,
        workers: 2,
        ..EstimationConfig::fast()
    };
    let exploded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let obj = Exploding {
            bounds: vec![ParamSpec {
                name: "k".into(),
                lower: 0.0,
                upper: 1.0,
            }],
        };
        let mut rng = StdRng::seed_from_u64(1);
        run_ga_in(&obj, &cfg, &mut rng, Some(&pool))
    }));
    let msg = match exploded {
        Ok(_) => panic!("the exploding objective must abort the GA"),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default(),
    };
    assert!(
        msg.contains("objective exploded"),
        "the task's own panic message must survive the pool: {msg}"
    );
    // Same pool, next batch: completes normally.
    let obj = Himmelblau::new();
    let mut rng = StdRng::seed_from_u64(2);
    let out = run_ga_in(&obj, &cfg, &mut rng, Some(&pool));
    assert_eq!(out.trajectory.len(), cfg.generations + 1);
    assert!(out.cost.is_finite());
}
