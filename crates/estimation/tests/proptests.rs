//! Property tests for the estimation engine.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

use pgfmu_estimation::{
    dissimilarity, estimate_lo, estimate_si, mae, rmse, EstimationConfig, Objective, ParamSpec,
};

/// Separable quadratic with a configurable center, for closed-form checks.
struct Quad {
    bounds: Vec<ParamSpec>,
    center: Vec<f64>,
    evals: AtomicU64,
}

impl Objective for Quad {
    fn dim(&self) -> usize {
        self.center.len()
    }
    fn bounds(&self) -> &[ParamSpec] {
        &self.bounds
    }
    fn eval(&self, p: &[f64]) -> f64 {
        self.evals.fetch_add(1, Ordering::Relaxed);
        p.iter()
            .zip(&self.center)
            .map(|(x, c)| (x - c) * (x - c))
            .sum()
    }
    fn eval_count(&self) -> u64 {
        self.evals.load(Ordering::Relaxed)
    }
}

fn quad(center: Vec<f64>) -> Quad {
    let bounds = center
        .iter()
        .enumerate()
        .map(|(i, _)| ParamSpec {
            name: format!("p{i}"),
            lower: -10.0,
            upper: 10.0,
        })
        .collect();
    Quad {
        bounds,
        center,
        evals: AtomicU64::new(0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// G+LaG finds the interior optimum of a random quadratic and the
    /// estimate always stays inside the bounds.
    #[test]
    fn si_solves_random_quadratics(
        cx in -8.0f64..8.0,
        cy in -8.0f64..8.0,
        seed in 0u64..1000,
    ) {
        let obj = quad(vec![cx, cy]);
        let cfg = EstimationConfig { seed, ..EstimationConfig::fast() };
        let out = estimate_si(&obj, &cfg);
        prop_assert!(out.rmse < 1e-2, "residual {}", out.rmse);
        for (v, s) in out.params.iter().zip(obj.bounds()) {
            prop_assert!(*v >= s.lower && *v <= s.upper);
        }
    }

    /// LO from any warm start inside the box never ends worse than where
    /// it started.
    #[test]
    fn lo_never_worsens_its_start(
        cx in -5.0f64..5.0,
        sx in -9.0f64..9.0,
        sy in -9.0f64..9.0,
    ) {
        let obj = quad(vec![cx, -cx]);
        let start = vec![sx, sy];
        let f_start = obj.eval(&start);
        let out = estimate_lo(&obj, &start, &EstimationConfig::fast());
        prop_assert!(out.rmse <= f_start + 1e-12);
    }

    /// RMSE dominates MAE (Cauchy–Schwarz) and both are shift-invariant.
    #[test]
    fn rmse_dominates_mae(
        values in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..50),
        shift in -10.0f64..10.0,
    ) {
        let a: Vec<f64> = values.iter().map(|(x, _)| *x).collect();
        let b: Vec<f64> = values.iter().map(|(_, y)| *y).collect();
        prop_assert!(rmse(&a, &b) + 1e-12 >= mae(&a, &b));
        let a2: Vec<f64> = a.iter().map(|v| v + shift).collect();
        let b2: Vec<f64> = b.iter().map(|v| v + shift).collect();
        prop_assert!((rmse(&a2, &b2) - rmse(&a, &b)).abs() < 1e-9);
    }

    /// Dissimilarity is zero iff the series are identical, and symmetric
    /// up to reference normalization for same-norm inputs.
    #[test]
    fn dissimilarity_identity(series in proptest::collection::vec(1.0f64..100.0, 2..40)) {
        let d = dissimilarity(
            std::slice::from_ref(&series),
            std::slice::from_ref(&series),
        );
        prop_assert!(d.abs() < 1e-12);
    }

    /// Scaling a series by delta yields |delta - 1| dissimilarity.
    #[test]
    fn dissimilarity_of_scaling(
        series in proptest::collection::vec(1.0f64..100.0, 2..40),
        delta in 0.5f64..1.5,
    ) {
        let scaled: Vec<f64> = series.iter().map(|v| v * delta).collect();
        let d = dissimilarity(
            std::slice::from_ref(&scaled),
            std::slice::from_ref(&series),
        );
        prop_assert!((d - (delta - 1.0).abs()).abs() < 1e-9, "d={d} delta={delta}");
    }
}
