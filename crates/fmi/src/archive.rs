//! Binary FMU container — the substrate's `.fmu` file format.
//!
//! Real FMUs are zip archives holding `modelDescription.xml` plus compiled
//! binaries. Our container serializes the [`ModelDescription`] and the
//! equation IR into a single length-prefixed binary record protected by a
//! CRC-32 checksum, so pgFMU's non-volatile *FMU storage* (paper Figure 4)
//! can persist and reload models byte-exactly.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   : 8 bytes  b"PGFMUARC"
//! version : u16      format version (currently 1)
//! length  : u32      payload byte count
//! payload : ...      model description + equation system
//! crc32   : u32      IEEE CRC-32 of the payload
//! ```
//!
//! Expressions are encoded in postfix order so decoding is a simple stack
//! machine with O(nodes) work and explicit depth/size limits.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{FmiError, Result};
use crate::expr::{BinOp, Expr, UnaryOp};
use crate::fmu::Fmu;
use crate::model_description::{
    Causality, DefaultExperiment, ModelDescription, ScalarVariable, VarType, Variability,
};
use crate::system::EquationSystem;

const MAGIC: &[u8; 8] = b"PGFMUARC";
const VERSION: u16 = 1;
/// Hard sanity limits so corrupt files fail fast instead of allocating.
const MAX_STRING: usize = 1 << 20;
const MAX_VARS: usize = 100_000;
const MAX_EXPR_NODES: usize = 1_000_000;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial), table-driven.
// ---------------------------------------------------------------------------

fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 of a byte slice (IEEE polynomial, as used by zip/png).
pub fn crc32(data: &[u8]) -> u32 {
    // The table is tiny; recomputing it per call keeps the code dependency-
    // free. Archive encode/decode happens once per model, never per-step.
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Primitive encoders / decoders
// ---------------------------------------------------------------------------

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(truncated());
    }
    let len = buf.get_u32_le() as usize;
    if len > MAX_STRING || buf.remaining() < len {
        return Err(FmiError::Archive(format!(
            "string length {len} exceeds remaining bytes"
        )));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec())
        .map_err(|_| FmiError::Archive("string is not valid UTF-8".into()))
}

fn get_f64(buf: &mut Bytes) -> Result<f64> {
    if buf.remaining() < 8 {
        return Err(truncated());
    }
    Ok(buf.get_f64_le())
}

fn get_u32(buf: &mut Bytes) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(truncated());
    }
    Ok(buf.get_u32_le())
}

fn get_u8(buf: &mut Bytes) -> Result<u8> {
    if !buf.has_remaining() {
        return Err(truncated());
    }
    Ok(buf.get_u8())
}

fn truncated() -> FmiError {
    FmiError::Archive("unexpected end of archive".into())
}

// ---------------------------------------------------------------------------
// Expression codec (postfix byte stream)
// ---------------------------------------------------------------------------

const OP_CONST: u8 = 0x01;
const OP_TIME: u8 = 0x02;
const OP_STATE: u8 = 0x03;
const OP_INPUT: u8 = 0x04;
const OP_PARAM: u8 = 0x05;
const OP_UNARY_BASE: u8 = 0x10;
const OP_BINARY_BASE: u8 = 0x20;
const OP_IF: u8 = 0x40;

fn unary_code(op: UnaryOp) -> u8 {
    match op {
        UnaryOp::Neg => 0,
        UnaryOp::Abs => 1,
        UnaryOp::Sin => 2,
        UnaryOp::Cos => 3,
        UnaryOp::Tan => 4,
        UnaryOp::Exp => 5,
        UnaryOp::Ln => 6,
        UnaryOp::Sqrt => 7,
    }
}

fn unary_from(code: u8) -> Result<UnaryOp> {
    Ok(match code {
        0 => UnaryOp::Neg,
        1 => UnaryOp::Abs,
        2 => UnaryOp::Sin,
        3 => UnaryOp::Cos,
        4 => UnaryOp::Tan,
        5 => UnaryOp::Exp,
        6 => UnaryOp::Ln,
        7 => UnaryOp::Sqrt,
        _ => return Err(FmiError::Archive(format!("bad unary opcode {code}"))),
    })
}

fn binary_code(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Pow => 4,
        BinOp::Min => 5,
        BinOp::Max => 6,
        BinOp::Lt => 7,
        BinOp::Le => 8,
        BinOp::Gt => 9,
        BinOp::Ge => 10,
    }
}

fn binary_from(code: u8) -> Result<BinOp> {
    Ok(match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Pow,
        5 => BinOp::Min,
        6 => BinOp::Max,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        10 => BinOp::Ge,
        _ => return Err(FmiError::Archive(format!("bad binary opcode {code}"))),
    })
}

fn put_expr(buf: &mut BytesMut, e: &Expr) {
    match e {
        Expr::Const(v) => {
            buf.put_u8(OP_CONST);
            buf.put_f64_le(*v);
        }
        Expr::Time => buf.put_u8(OP_TIME),
        Expr::State(i) => {
            buf.put_u8(OP_STATE);
            buf.put_u32_le(*i as u32);
        }
        Expr::Input(i) => {
            buf.put_u8(OP_INPUT);
            buf.put_u32_le(*i as u32);
        }
        Expr::Param(i) => {
            buf.put_u8(OP_PARAM);
            buf.put_u32_le(*i as u32);
        }
        Expr::Unary(op, a) => {
            put_expr(buf, a);
            buf.put_u8(OP_UNARY_BASE + unary_code(*op));
        }
        Expr::Binary(op, a, b) => {
            put_expr(buf, a);
            put_expr(buf, b);
            buf.put_u8(OP_BINARY_BASE + binary_code(*op));
        }
        Expr::If(c, a, b) => {
            put_expr(buf, c);
            put_expr(buf, a);
            put_expr(buf, b);
            buf.put_u8(OP_IF);
        }
    }
}

fn encode_expr(buf: &mut BytesMut, e: &Expr) {
    buf.put_u32_le(e.node_count() as u32);
    put_expr(buf, e);
}

fn decode_expr(buf: &mut Bytes) -> Result<Expr> {
    let nodes = get_u32(buf)? as usize;
    if nodes == 0 || nodes > MAX_EXPR_NODES {
        return Err(FmiError::Archive(format!(
            "implausible expression node count {nodes}"
        )));
    }
    let mut stack: Vec<Expr> = Vec::with_capacity(16);
    for _ in 0..nodes {
        let op = get_u8(buf)?;
        match op {
            OP_CONST => stack.push(Expr::Const(get_f64(buf)?)),
            OP_TIME => stack.push(Expr::Time),
            OP_STATE => stack.push(Expr::State(get_u32(buf)? as usize)),
            OP_INPUT => stack.push(Expr::Input(get_u32(buf)? as usize)),
            OP_PARAM => stack.push(Expr::Param(get_u32(buf)? as usize)),
            OP_IF => {
                let b = stack.pop().ok_or_else(stack_underflow)?;
                let a = stack.pop().ok_or_else(stack_underflow)?;
                let c = stack.pop().ok_or_else(stack_underflow)?;
                stack.push(Expr::If(Box::new(c), Box::new(a), Box::new(b)));
            }
            x if (OP_UNARY_BASE..OP_UNARY_BASE + 8).contains(&x) => {
                let a = stack.pop().ok_or_else(stack_underflow)?;
                stack.push(Expr::Unary(unary_from(x - OP_UNARY_BASE)?, Box::new(a)));
            }
            x if (OP_BINARY_BASE..OP_BINARY_BASE + 11).contains(&x) => {
                let b = stack.pop().ok_or_else(stack_underflow)?;
                let a = stack.pop().ok_or_else(stack_underflow)?;
                stack.push(Expr::Binary(
                    binary_from(x - OP_BINARY_BASE)?,
                    Box::new(a),
                    Box::new(b),
                ));
            }
            other => {
                return Err(FmiError::Archive(format!("unknown opcode 0x{other:02x}")));
            }
        }
    }
    if stack.len() != 1 {
        return Err(FmiError::Archive(format!(
            "malformed expression: {} values left on decode stack",
            stack.len()
        )));
    }
    Ok(stack.pop().unwrap())
}

fn stack_underflow() -> FmiError {
    FmiError::Archive("expression decode stack underflow".into())
}

// ---------------------------------------------------------------------------
// Variable / description codec
// ---------------------------------------------------------------------------

fn causality_code(c: Causality) -> u8 {
    match c {
        Causality::Parameter => 0,
        Causality::Input => 1,
        Causality::Output => 2,
        Causality::Local => 3,
    }
}

fn causality_from(code: u8) -> Result<Causality> {
    Ok(match code {
        0 => Causality::Parameter,
        1 => Causality::Input,
        2 => Causality::Output,
        3 => Causality::Local,
        _ => return Err(FmiError::Archive(format!("bad causality code {code}"))),
    })
}

fn variability_code(v: Variability) -> u8 {
    match v {
        Variability::Fixed => 0,
        Variability::Tunable => 1,
        Variability::Discrete => 2,
        Variability::Continuous => 3,
    }
}

fn variability_from(code: u8) -> Result<Variability> {
    Ok(match code {
        0 => Variability::Fixed,
        1 => Variability::Tunable,
        2 => Variability::Discrete,
        3 => Variability::Continuous,
        _ => return Err(FmiError::Archive(format!("bad variability code {code}"))),
    })
}

fn var_type_code(t: VarType) -> u8 {
    match t {
        VarType::Real => 0,
        VarType::Integer => 1,
        VarType::Boolean => 2,
    }
}

fn var_type_from(code: u8) -> Result<VarType> {
    Ok(match code {
        0 => VarType::Real,
        1 => VarType::Integer,
        2 => VarType::Boolean,
        _ => return Err(FmiError::Archive(format!("bad var type code {code}"))),
    })
}

fn put_variable(buf: &mut BytesMut, v: &ScalarVariable) {
    put_string(buf, &v.name);
    put_string(buf, &v.unit);
    put_string(buf, &v.description);
    buf.put_u8(causality_code(v.causality));
    buf.put_u8(variability_code(v.variability));
    buf.put_u8(var_type_code(v.var_type));
    let flags =
        (v.start.is_some() as u8) | ((v.min.is_some() as u8) << 1) | ((v.max.is_some() as u8) << 2);
    buf.put_u8(flags);
    if let Some(s) = v.start {
        buf.put_f64_le(s);
    }
    if let Some(m) = v.min {
        buf.put_f64_le(m);
    }
    if let Some(m) = v.max {
        buf.put_f64_le(m);
    }
}

fn get_variable(buf: &mut Bytes) -> Result<ScalarVariable> {
    let name = get_string(buf)?;
    let unit = get_string(buf)?;
    let description = get_string(buf)?;
    let causality = causality_from(get_u8(buf)?)?;
    let variability = variability_from(get_u8(buf)?)?;
    let var_type = var_type_from(get_u8(buf)?)?;
    let flags = get_u8(buf)?;
    let start = if flags & 1 != 0 {
        Some(get_f64(buf)?)
    } else {
        None
    };
    let min = if flags & 2 != 0 {
        Some(get_f64(buf)?)
    } else {
        None
    };
    let max = if flags & 4 != 0 {
        Some(get_f64(buf)?)
    } else {
        None
    };
    Ok(ScalarVariable {
        name,
        causality,
        variability,
        var_type,
        start,
        min,
        max,
        unit,
        description,
    })
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Serialize an FMU into its binary archive representation.
pub fn encode(fmu: &Fmu) -> Vec<u8> {
    let mut payload = BytesMut::with_capacity(4096);
    let md = &fmu.description;
    put_string(&mut payload, &md.model_name);
    put_string(&mut payload, &md.description);
    put_string(&mut payload, &md.generation_tool);
    let de = md.default_experiment;
    payload.put_f64_le(de.start_time);
    payload.put_f64_le(de.stop_time);
    payload.put_f64_le(de.tolerance);
    payload.put_f64_le(de.step_size);
    payload.put_u32_le(md.variables.len() as u32);
    for v in &md.variables {
        put_variable(&mut payload, v);
    }
    let sys = &fmu.system;
    payload.put_u32_le(sys.n_states() as u32);
    payload.put_u32_le(sys.n_inputs() as u32);
    payload.put_u32_le(sys.n_params() as u32);
    payload.put_u32_le(sys.ders().len() as u32);
    for e in sys.ders() {
        encode_expr(&mut payload, e);
    }
    payload.put_u32_le(sys.outs().len() as u32);
    for e in sys.outs() {
        encode_expr(&mut payload, e);
    }

    let mut out = BytesMut::with_capacity(payload.len() + 18);
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);
    out.put_u32_le(payload.len() as u32);
    let checksum = crc32(&payload);
    out.put_slice(&payload);
    out.put_u32_le(checksum);
    out.to_vec()
}

/// Deserialize an FMU from its binary archive representation, verifying
/// magic, version, length and checksum.
pub fn decode(data: &[u8]) -> Result<Fmu> {
    if data.len() < MAGIC.len() + 2 + 4 + 4 {
        return Err(FmiError::Archive("archive too small".into()));
    }
    if &data[..8] != MAGIC {
        return Err(FmiError::Archive("bad magic; not a pgFMU archive".into()));
    }
    let mut hdr = Bytes::copy_from_slice(&data[8..14]);
    let version = hdr.get_u16_le();
    if version != VERSION {
        return Err(FmiError::Archive(format!(
            "unsupported archive version {version}"
        )));
    }
    let len = hdr.get_u32_le() as usize;
    let body_start = 14;
    if data.len() != body_start + len + 4 {
        return Err(FmiError::Archive(format!(
            "length mismatch: header says {len} payload bytes, file has {}",
            data.len().saturating_sub(body_start + 4)
        )));
    }
    let payload = &data[body_start..body_start + len];
    let mut tail = Bytes::copy_from_slice(&data[body_start + len..]);
    let stored_crc = tail.get_u32_le();
    let actual_crc = crc32(payload);
    if stored_crc != actual_crc {
        return Err(FmiError::Archive(format!(
            "checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        )));
    }

    let mut buf = Bytes::copy_from_slice(payload);
    let model_name = get_string(&mut buf)?;
    let description_text = get_string(&mut buf)?;
    let generation_tool = get_string(&mut buf)?;
    let default_experiment = DefaultExperiment {
        start_time: get_f64(&mut buf)?,
        stop_time: get_f64(&mut buf)?,
        tolerance: get_f64(&mut buf)?,
        step_size: get_f64(&mut buf)?,
    };
    let n_vars = get_u32(&mut buf)? as usize;
    if n_vars > MAX_VARS {
        return Err(FmiError::Archive(format!(
            "implausible variable count {n_vars}"
        )));
    }
    let mut variables = Vec::with_capacity(n_vars);
    for _ in 0..n_vars {
        variables.push(get_variable(&mut buf)?);
    }
    let n_states = get_u32(&mut buf)? as usize;
    let n_inputs = get_u32(&mut buf)? as usize;
    let n_params = get_u32(&mut buf)? as usize;
    let n_ders = get_u32(&mut buf)? as usize;
    if n_ders > MAX_VARS {
        return Err(FmiError::Archive("implausible equation count".into()));
    }
    let mut ders = Vec::with_capacity(n_ders);
    for _ in 0..n_ders {
        ders.push(decode_expr(&mut buf)?);
    }
    let n_outs = get_u32(&mut buf)? as usize;
    if n_outs > MAX_VARS {
        return Err(FmiError::Archive("implausible output count".into()));
    }
    let mut outs = Vec::with_capacity(n_outs);
    for _ in 0..n_outs {
        outs.push(decode_expr(&mut buf)?);
    }
    if buf.has_remaining() {
        return Err(FmiError::Archive(format!(
            "{} trailing bytes after payload",
            buf.remaining()
        )));
    }

    let md = ModelDescription {
        model_name,
        description: description_text,
        generation_tool,
        variables,
        default_experiment,
    };
    let system = EquationSystem::new(n_states, n_inputs, n_params, ders, outs)?;
    Fmu::new(md, system)
}

/// Write an FMU archive to disk.
pub fn write_to_path(fmu: &Fmu, path: &std::path::Path) -> Result<()> {
    std::fs::write(path, encode(fmu))?;
    Ok(())
}

/// Read an FMU archive from disk.
pub fn read_from_path(path: &std::path::Path) -> Result<Fmu> {
    let data = std::fs::read(path)?;
    decode(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_all_builtins() {
        for fmu in [
            builtin::hp0(),
            builtin::hp1(),
            builtin::classroom(),
            builtin::heatpump_abcde(),
        ] {
            let bytes = encode(&fmu);
            let back = decode(&bytes).unwrap();
            assert_eq!(back, fmu);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&builtin::hp1());
        bytes[0] = b'X';
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = encode(&builtin::hp1());
        bytes[8] = 99;
        let err = decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn rejects_corrupt_payload() {
        let mut bytes = encode(&builtin::hp1());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let err = decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("checksum") || err.contains("archive"), "{err}");
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode(&builtin::hp1());
        for cut in [0, 5, 13, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode(&builtin::hp1());
        bytes.extend_from_slice(b"junk");
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pgfmu-archive-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hp1.fmu");
        let fmu = builtin::hp1();
        write_to_path(&fmu, &path).unwrap();
        let back = read_from_path(&path).unwrap();
        assert_eq!(back, fmu);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn decoded_model_simulates_identically() {
        use crate::fmu::SimulationOptions;
        use crate::input::{InputSeries, InputSet, Interpolation};
        use std::sync::Arc;

        let original = Arc::new(builtin::hp1());
        let decoded = Arc::new(decode(&encode(&original)).unwrap());
        let series = InputSeries::new(
            "u",
            vec![0.0, 12.0, 24.0],
            vec![0.2, 0.8, 0.5],
            Interpolation::Hold,
        )
        .unwrap();
        let inputs = InputSet::bind(&["u"], vec![series]).unwrap();
        let opts = SimulationOptions::default();
        let a = original.instantiate().simulate(&inputs, &opts).unwrap();
        let b = decoded.instantiate().simulate(&inputs, &opts).unwrap();
        assert_eq!(a, b);
    }
}
