//! The evaluation models of the paper (Table 5), hand-lowered to the
//! equation IR.
//!
//! * [`hp0`] — heat pump with *no* inputs: power held at a constant rate
//!   (1.38 %), parameters `Cp` (thermal capacitance) and `R` (thermal
//!   resistance) tunable.
//! * [`hp1`] — the running-example heat pump (Figure 2 physics in the
//!   Cp/R parameterization of Table 5): input `u` ∈ [0, 1] is the HP power
//!   rating setting, state `x` the indoor temperature, output `y` the HP
//!   power consumption.
//! * [`classroom`] — the 5-input thermal-network classroom model from the
//!   SDU Odense campus building (Table 5): parameters `shgc`, `tmass`,
//!   `RExt`, `occheff`.
//! * [`heatpump_abcde`] — the literal Figure-2 LTI SISO parameterization
//!   `der(x) = A*x + B*u + E`, `y = C*x + D*u`, with `A`, `B`, `E` tunable
//!   (the parameterization used by the paper's §5/§6 SQL examples).
//!
//! Ground-truth parameter values follow §2 of the paper: `Cp = 1.5 kWh/°C`,
//! `R = 1.5 °C/kW`, `P = 7.8 kW`, `η = 2.65`, `θa = −10 °C`; the classroom
//! truth follows Table 7 (`RExt = 4`, `occheff = 1.478`, `shgc = 3.246`,
//! `tmass = 50`).
//!
//! Note on the paper's output equation: Figure 2 states `C = P, D = 0`
//! (i.e. `y = P·x`), but the paper's own dataset excerpt (Table 6) satisfies
//! `y = P·u` exactly (`0.0177 · 7.8 = 0.138`). We follow the *data* and use
//! `y = P·u`; `heatpump_abcde` keeps both `C` and `D` so either convention
//! can be configured. This discrepancy is recorded in EXPERIMENTS.md.

use crate::expr::Expr;
use crate::fmu::Fmu;
use crate::model_description::{
    Causality, DefaultExperiment, ModelDescription, ScalarVariable, VarType, Variability,
};
use crate::system::EquationSystem;

/// Rated electrical power of the heat pump (kW), paper §2.
pub const HP_RATED_POWER: f64 = 7.8;
/// Coefficient of performance of the heat pump, paper §2.
pub const HP_COP: f64 = 2.65;
/// Outdoor temperature used by the LTI heat-pump models (°C), paper §2.
pub const HP_OUTDOOR_TEMP: f64 = -10.0;
/// Ground-truth thermal capacitance (kWh/°C), paper §2.
pub const HP_TRUE_CP: f64 = 1.5;
/// Ground-truth thermal resistance (°C/kW), paper §2.
pub const HP_TRUE_R: f64 = 1.5;
/// Constant HP power rate used by the HP0 model (1.38 %), paper §8.2.
pub const HP0_CONSTANT_RATE: f64 = 0.0138;

/// Ground-truth classroom parameters, paper Table 7.
pub const CLASSROOM_TRUE_PARAMS: [(&str, f64); 4] = [
    ("shgc", 3.246),
    ("tmass", 50.0),
    ("RExt", 4.0),
    ("occheff", 1.478),
];

fn param(name: &str, start: f64, min: f64, max: f64, unit: &str, desc: &str) -> ScalarVariable {
    ScalarVariable::new(name, Causality::Parameter, Variability::Tunable)
        .with_start(start)
        .with_bounds(min, max)
        .with_unit(unit)
        .with_description(desc)
}

fn fixed(name: &str, value: f64, unit: &str, desc: &str) -> ScalarVariable {
    ScalarVariable::new(name, Causality::Parameter, Variability::Fixed)
        .with_start(value)
        .with_unit(unit)
        .with_description(desc)
}

/// Shared physics of the Cp/R heat pump family:
///
/// `der(x) = (θa − x) / (R·Cp) + P·η·u / Cp`
///
/// with parameter order `[Cp, R, P, eta, theta_a]` and `u` either input 0
/// (HP1) or the fixed parameter `u_const` (HP0).
fn hp_der(u: Expr) -> Expr {
    let cp = || Expr::Param(0);
    let r = || Expr::Param(1);
    let p = || Expr::Param(2);
    let eta = || Expr::Param(3);
    let theta_a = || Expr::Param(4);
    Expr::add(
        Expr::div(Expr::sub(theta_a(), Expr::State(0)), Expr::mul(r(), cp())),
        Expr::div(Expr::mul(Expr::mul(p(), eta()), u), cp()),
    )
}

/// HP1 — the running-example heat pump model (Table 5 row 2).
pub fn hp1() -> Fmu {
    let vars = vec![
        param(
            "Cp",
            HP_TRUE_CP,
            0.1,
            10.0,
            "kWh/degC",
            "thermal capacitance: energy to heat the house by 1 degC in 1 h",
        ),
        param(
            "R",
            HP_TRUE_R,
            0.1,
            10.0,
            "degC/kW",
            "thermal resistance of the building envelope",
        ),
        fixed(
            "P",
            HP_RATED_POWER,
            "kW",
            "rated electrical power of the HP",
        ),
        fixed("eta", HP_COP, "1", "coefficient of performance"),
        fixed("theta_a", HP_OUTDOOR_TEMP, "degC", "outdoor temperature"),
        ScalarVariable::new("x", Causality::Local, Variability::Continuous)
            .with_start(20.75)
            .with_unit("degC")
            .with_description("indoor temperature (state variable)"),
        // The rating is an hourly *setting* (set-and-hold actuator), hence
        // discrete variability: samples are held, not interpolated.
        ScalarVariable::new("u", Causality::Input, Variability::Discrete)
            .with_bounds(0.0, 1.0)
            .with_unit("1")
            .with_description("HP power rating setting in [0..1] = [0..100%]"),
        ScalarVariable::new("y", Causality::Output, Variability::Continuous)
            .with_unit("kW")
            .with_description("HP power consumption"),
    ];
    let md = ModelDescription::new(
        "HP1",
        vars,
        DefaultExperiment {
            start_time: 0.0,
            stop_time: 24.0,
            tolerance: 1e-6,
            step_size: 1.0,
        },
    )
    .expect("builtin HP1 metadata is valid");
    let sys = EquationSystem::new(
        1,
        1,
        5,
        vec![hp_der(Expr::Input(0))],
        // y = P * u
        vec![Expr::mul(Expr::Param(2), Expr::Input(0))],
    )
    .expect("builtin HP1 equations are valid");
    Fmu::new(md, sys).expect("builtin HP1 is consistent")
}

/// HP0 — HP1 with zero inputs; power held at [`HP0_CONSTANT_RATE`]
/// (Table 5 row 1).
pub fn hp0() -> Fmu {
    let vars = vec![
        param(
            "Cp",
            HP_TRUE_CP,
            0.1,
            10.0,
            "kWh/degC",
            "thermal capacitance: energy to heat the house by 1 degC in 1 h",
        ),
        param(
            "R",
            HP_TRUE_R,
            0.1,
            10.0,
            "degC/kW",
            "thermal resistance of the building envelope",
        ),
        fixed(
            "P",
            HP_RATED_POWER,
            "kW",
            "rated electrical power of the HP",
        ),
        fixed("eta", HP_COP, "1", "coefficient of performance"),
        fixed("theta_a", HP_OUTDOOR_TEMP, "degC", "outdoor temperature"),
        fixed(
            "u_const",
            HP0_CONSTANT_RATE,
            "1",
            "constant HP power rating (1.38%)",
        ),
        ScalarVariable::new("x", Causality::Local, Variability::Continuous)
            .with_start(20.75)
            .with_unit("degC")
            .with_description("indoor temperature (state variable)"),
        ScalarVariable::new("y", Causality::Output, Variability::Continuous)
            .with_unit("kW")
            .with_description("HP power consumption"),
    ];
    let md = ModelDescription::new(
        "HP0",
        vars,
        DefaultExperiment {
            start_time: 0.0,
            stop_time: 24.0,
            tolerance: 1e-6,
            step_size: 1.0,
        },
    )
    .expect("builtin HP0 metadata is valid");
    let sys = EquationSystem::new(
        1,
        0,
        6,
        vec![hp_der(Expr::Param(5))],
        // y = P * u_const
        vec![Expr::mul(Expr::Param(2), Expr::Param(5))],
    )
    .expect("builtin HP0 equations are valid");
    Fmu::new(md, sys).expect("builtin HP0 is consistent")
}

/// Classroom — the thermal-network model of a classroom in the 8500 m²
/// SDU Odense campus building (Table 5 row 3).
///
/// Physics:
///
/// ```text
/// der(t) = ( (tout − t)/RExt               // envelope conduction
///          + shgc · solrad/1000            // solar gain (solrad in W/m²)
///          + occheff · 0.1 · occ           // occupant heat gain
///          + (vpos/100) · Pheat            // radiator valve
///          − (dpos/100) · kvent · (t − tout) // damper ventilation loss
///          ) / tmass
/// ```
pub fn classroom() -> Fmu {
    let vars = vec![
        param(
            "shgc",
            3.246,
            0.0,
            10.0,
            "kW/(kW/m2)",
            "solar heat gain coefficient",
        ),
        param(
            "tmass",
            50.0,
            10.0,
            100.0,
            "kWh/degC",
            "zone thermal mass factor",
        ),
        param(
            "RExt",
            4.0,
            0.5,
            10.0,
            "degC/kW",
            "exterior wall thermal resistance",
        ),
        param(
            "occheff",
            1.478,
            0.0,
            5.0,
            "kW/person",
            "occupant heat generation effectiveness (x0.1)",
        ),
        fixed("Pheat", 10.0, "kW", "radiator heating power at full valve"),
        fixed(
            "kvent",
            0.5,
            "kW/degC",
            "ventilation heat conductance at full damper",
        ),
        ScalarVariable::new("t", Causality::Local, Variability::Continuous)
            .with_start(21.0)
            .with_unit("degC")
            .with_description("indoor temperature (state variable)"),
        ScalarVariable::new("solrad", Causality::Input, Variability::Discrete)
            .with_bounds(0.0, 1500.0)
            .with_unit("W/m2")
            .with_description("solar radiation"),
        ScalarVariable::new("tout", Causality::Input, Variability::Discrete)
            .with_bounds(-40.0, 50.0)
            .with_unit("degC")
            .with_description("outdoor temperature"),
        ScalarVariable::new("occ", Causality::Input, Variability::Discrete)
            .with_type(VarType::Integer)
            .with_bounds(0.0, 100.0)
            .with_unit("person")
            .with_description("number of occupants"),
        ScalarVariable::new("dpos", Causality::Input, Variability::Discrete)
            .with_bounds(0.0, 100.0)
            .with_unit("%")
            .with_description("damper position"),
        ScalarVariable::new("vpos", Causality::Input, Variability::Discrete)
            .with_bounds(0.0, 100.0)
            .with_unit("%")
            .with_description("radiator valve position"),
    ];
    let md = ModelDescription::new(
        "Classroom",
        vars,
        DefaultExperiment {
            start_time: 0.0,
            stop_time: 24.0,
            tolerance: 1e-6,
            step_size: 0.5,
        },
    )
    .expect("builtin Classroom metadata is valid");

    let shgc = || Expr::Param(0);
    let tmass = || Expr::Param(1);
    let rext = || Expr::Param(2);
    let occheff = || Expr::Param(3);
    let pheat = || Expr::Param(4);
    let kvent = || Expr::Param(5);
    let t = || Expr::State(0);
    let solrad = || Expr::Input(0);
    let tout = || Expr::Input(1);
    let occ = || Expr::Input(2);
    let dpos = || Expr::Input(3);
    let vpos = || Expr::Input(4);

    let der = Expr::div(
        Expr::sum(vec![
            Expr::div(Expr::sub(tout(), t()), rext()),
            Expr::mul(shgc(), Expr::div(solrad(), Expr::c(1000.0))),
            Expr::mul(Expr::mul(occheff(), Expr::c(0.1)), occ()),
            Expr::mul(Expr::div(vpos(), Expr::c(100.0)), pheat()),
            Expr::neg(Expr::mul(
                Expr::mul(Expr::div(dpos(), Expr::c(100.0)), kvent()),
                Expr::sub(t(), tout()),
            )),
        ]),
        tmass(),
    );
    let sys = EquationSystem::new(1, 5, 6, vec![der], vec![])
        .expect("builtin Classroom equations are valid");
    Fmu::new(md, sys).expect("builtin Classroom is consistent")
}

/// The literal Figure-2 LTI SISO heat pump: `der(x) = A·x + B·u + E`,
/// `y = C·x + D·u` with `A`, `B`, `E` tunable and `C`, `D` fixed.
pub fn heatpump_abcde() -> Fmu {
    let a_true = -1.0 / (HP_TRUE_R * HP_TRUE_CP);
    let b_true = HP_RATED_POWER * HP_COP / HP_TRUE_CP;
    let e_true = HP_OUTDOOR_TEMP / (HP_TRUE_R * HP_TRUE_CP);
    let vars = vec![
        // Paper Figure 4: A initial 0, bounds [-10, 10]; B initial 0,
        // bounds [-20, 20]. Start values 0 reflect "unknown" parameters.
        param("A", 0.0, -10.0, 10.0, "1/h", "state feedback coefficient")
            .with_description(format!("state feedback coefficient (truth {a_true:.4})")),
        param("B", 0.0, -20.0, 20.0, "degC/h", "input gain")
            .with_description(format!("input gain (truth {b_true:.4})")),
        param("E", 0.0, -20.0, 20.0, "degC/h", "offset term")
            .with_description(format!("offset term (truth {e_true:.4})")),
        fixed("C", 0.0, "kW/degC", "output state coefficient"),
        fixed("D", HP_RATED_POWER, "kW", "output feed-through coefficient"),
        ScalarVariable::new("x", Causality::Local, Variability::Continuous)
            .with_start(20.75)
            .with_unit("degC")
            .with_description("indoor temperature (state variable)"),
        ScalarVariable::new("u", Causality::Input, Variability::Discrete)
            .with_bounds(0.0, 1.0)
            .with_unit("1")
            .with_description("HP power rating setting in [0..1]"),
        ScalarVariable::new("y", Causality::Output, Variability::Continuous)
            .with_unit("kW")
            .with_description("HP power consumption"),
    ];
    let md = ModelDescription::new(
        "heatpump",
        vars,
        DefaultExperiment {
            start_time: 0.0,
            stop_time: 24.0,
            tolerance: 1e-6,
            step_size: 1.0,
        },
    )
    .expect("builtin heatpump metadata is valid");
    let sys = EquationSystem::new(
        1,
        1,
        5,
        vec![Expr::sum(vec![
            Expr::mul(Expr::Param(0), Expr::State(0)),
            Expr::mul(Expr::Param(1), Expr::Input(0)),
            Expr::Param(2),
        ])],
        vec![Expr::add(
            Expr::mul(Expr::Param(3), Expr::State(0)),
            Expr::mul(Expr::Param(4), Expr::Input(0)),
        )],
    )
    .expect("builtin heatpump equations are valid");
    Fmu::new(md, sys).expect("builtin heatpump is consistent")
}

/// Look up a builtin model by its catalogue name.
pub fn by_name(name: &str) -> Option<Fmu> {
    match name {
        "HP0" => Some(hp0()),
        "HP1" => Some(hp1()),
        "Classroom" => Some(classroom()),
        "heatpump" => Some(heatpump_abcde()),
        _ => None,
    }
}

/// Names of all builtin models.
pub const BUILTIN_NAMES: [&str; 4] = ["HP0", "HP1", "Classroom", "heatpump"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmu::SimulationOptions;
    use crate::input::{InputSeries, InputSet, Interpolation};
    use crate::solver::SolverKind;
    use std::sync::Arc;

    #[test]
    fn by_name_covers_all_builtins() {
        for name in BUILTIN_NAMES {
            assert!(by_name(name).is_some(), "{name} missing");
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn hp1_steady_state_matches_physics() {
        // At equilibrium: x* = theta_a + P*eta*R*u
        let fmu = Arc::new(hp1());
        let inst = fmu.instantiate();
        let u = 0.9;
        let series =
            InputSeries::new("u", vec![0.0, 400.0], vec![u, u], Interpolation::Hold).unwrap();
        let inputs = InputSet::bind(&["u"], vec![series]).unwrap();
        let res = inst
            .simulate(
                &inputs,
                &SimulationOptions {
                    stop: Some(400.0),
                    solver: SolverKind::Rk45 {
                        rtol: 1e-8,
                        atol: 1e-10,
                    },
                    ..Default::default()
                },
            )
            .unwrap();
        let expected = HP_OUTDOOR_TEMP + HP_RATED_POWER * HP_COP * HP_TRUE_R * u;
        let last = *res.series("x").unwrap().last().unwrap();
        assert!(
            (last - expected).abs() < 1e-3,
            "steady state {last} vs {expected}"
        );
        // Consumption output.
        let y = *res.series("y").unwrap().last().unwrap();
        assert!((y - HP_RATED_POWER * u).abs() < 1e-9);
    }

    #[test]
    fn hp0_decays_toward_its_equilibrium() {
        let fmu = Arc::new(hp0());
        let inst = fmu.instantiate();
        let res = inst
            .simulate(
                &InputSet::empty(),
                &SimulationOptions {
                    stop: Some(100.0),
                    ..Default::default()
                },
            )
            .unwrap();
        let expected = HP_OUTDOOR_TEMP + HP_RATED_POWER * HP_COP * HP_TRUE_R * HP0_CONSTANT_RATE;
        let xs = res.series("x").unwrap();
        let last = *xs.last().unwrap();
        assert!(
            (last - expected).abs() < 1e-3,
            "equilibrium {last} vs {expected}"
        );
        // Trajectory must be monotonically decreasing from a warm start.
        assert!(xs.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn classroom_warms_with_occupants_and_sun() {
        let fmu = Arc::new(classroom());
        let inst = fmu.instantiate();
        let mk = |name: &str, v: f64, interp| {
            InputSeries::new(name, vec![0.0, 24.0], vec![v, v], interp).unwrap()
        };
        let sunny_full = InputSet::bind(
            &["solrad", "tout", "occ", "dpos", "vpos"],
            vec![
                mk("solrad", 500.0, Interpolation::Linear),
                mk("tout", 10.0, Interpolation::Linear),
                mk("occ", 25.0, Interpolation::Hold),
                mk("dpos", 0.0, Interpolation::Hold),
                mk("vpos", 0.0, Interpolation::Linear),
            ],
        )
        .unwrap();
        let empty_night = InputSet::bind(
            &["solrad", "tout", "occ", "dpos", "vpos"],
            vec![
                mk("solrad", 0.0, Interpolation::Linear),
                mk("tout", 10.0, Interpolation::Linear),
                mk("occ", 0.0, Interpolation::Hold),
                mk("dpos", 0.0, Interpolation::Hold),
                mk("vpos", 0.0, Interpolation::Linear),
            ],
        )
        .unwrap();
        let opts = SimulationOptions::default();
        let warm = inst.simulate(&sunny_full, &opts).unwrap();
        let cool = inst.simulate(&empty_night, &opts).unwrap();
        let warm_last = *warm.series("t").unwrap().last().unwrap();
        let cool_last = *cool.series("t").unwrap().last().unwrap();
        assert!(
            warm_last > cool_last,
            "occupied sunny room must be warmer: {warm_last} vs {cool_last}"
        );
    }

    #[test]
    fn classroom_damper_cools_warm_room() {
        let fmu = Arc::new(classroom());
        let inst = fmu.instantiate();
        let mk = |name: &str, v: f64| {
            InputSeries::new(name, vec![0.0, 24.0], vec![v, v], Interpolation::Hold).unwrap()
        };
        let build = |dpos: f64| {
            InputSet::bind(
                &["solrad", "tout", "occ", "dpos", "vpos"],
                vec![
                    mk("solrad", 0.0),
                    mk("tout", 0.0),
                    mk("occ", 30.0),
                    mk("dpos", dpos),
                    mk("vpos", 0.0),
                ],
            )
            .unwrap()
        };
        let opts = SimulationOptions::default();
        let closed = inst.simulate(&build(0.0), &opts).unwrap();
        let open = inst.simulate(&build(100.0), &opts).unwrap();
        let closed_last = *closed.series("t").unwrap().last().unwrap();
        let open_last = *open.series("t").unwrap().last().unwrap();
        assert!(open_last < closed_last, "open damper must cool the room");
    }

    #[test]
    fn abcde_truth_matches_cp_r_parameterization() {
        // Setting A,B,E to their ground-truth values must reproduce HP1's
        // trajectory (same physics in a different parameterization).
        let abcde = Arc::new(heatpump_abcde());
        let hp1m = Arc::new(hp1());
        let mut inst_a = abcde.instantiate();
        inst_a.set("A", -1.0 / (HP_TRUE_R * HP_TRUE_CP)).unwrap();
        inst_a
            .set("B", HP_RATED_POWER * HP_COP / HP_TRUE_CP)
            .unwrap();
        inst_a
            .set("E", HP_OUTDOOR_TEMP / (HP_TRUE_R * HP_TRUE_CP))
            .unwrap();
        let inst_b = hp1m.instantiate();
        let series = InputSeries::new(
            "u",
            vec![0.0, 6.0, 12.0, 24.0],
            vec![0.1, 0.9, 0.4, 0.4],
            Interpolation::Hold,
        )
        .unwrap();
        let inputs = InputSet::bind(&["u"], vec![series]).unwrap();
        let opts = SimulationOptions::default();
        let ra = inst_a.simulate(&inputs, &opts).unwrap();
        let rb = inst_b.simulate(&inputs, &opts).unwrap();
        let xa = ra.series("x").unwrap();
        let xb = rb.series("x").unwrap();
        for (a, b) in xa.iter().zip(xb) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn tunable_parameters_are_the_estimation_targets() {
        let names = |fmu: Fmu| {
            fmu.description
                .tunable_parameters()
                .iter()
                .map(|v| v.name.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(names(hp0()), ["Cp", "R"]);
        assert_eq!(names(hp1()), ["Cp", "R"]);
        assert_eq!(names(classroom()), ["shgc", "tmass", "RExt", "occheff"]);
        assert_eq!(names(heatpump_abcde()), ["A", "B", "E"]);
    }
}
