//! Error type shared by all FMI substrate operations.

use std::fmt;

/// Convenient alias used across the crate.
pub type Result<T> = std::result::Result<T, FmiError>;

/// Errors raised by model construction, instantiation, simulation and
/// archive (de)serialization.
#[derive(Debug)]
pub enum FmiError {
    /// A variable name was not found in the model description.
    UnknownVariable(String),
    /// An operation was attempted on a variable whose causality forbids it
    /// (e.g. assigning a value to an output).
    CausalityViolation { variable: String, reason: String },
    /// The model definition itself is inconsistent (duplicate names,
    /// mismatched equation counts, bounds with `min > max`, …).
    InvalidModel(String),
    /// Simulation could not proceed (missing input series, non-finite
    /// state, empty/invalid time window, solver step failure).
    Simulation(String),
    /// An FMU archive could not be encoded or decoded.
    Archive(String),
    /// Underlying I/O failure when touching FMU storage.
    Io(std::io::Error),
}

impl fmt::Display for FmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FmiError::UnknownVariable(name) => write!(f, "unknown model variable '{name}'"),
            FmiError::CausalityViolation { variable, reason } => {
                write!(f, "causality violation on '{variable}': {reason}")
            }
            FmiError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
            FmiError::Simulation(msg) => write!(f, "simulation error: {msg}"),
            FmiError::Archive(msg) => write!(f, "FMU archive error: {msg}"),
            FmiError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for FmiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FmiError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FmiError {
    fn from(e: std::io::Error) -> Self {
        FmiError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = FmiError::UnknownVariable("Cp".into());
        assert_eq!(e.to_string(), "unknown model variable 'Cp'");
        let e = FmiError::CausalityViolation {
            variable: "y".into(),
            reason: "outputs are read-only".into(),
        };
        assert!(e.to_string().contains("causality violation on 'y'"));
        let e = FmiError::Simulation("no input series for 'u'".into());
        assert!(e.to_string().contains("simulation error"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error as _;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: FmiError = io.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
