//! Serializable expression IR in which model equations are written.
//!
//! The Modelica-subset compiler (`pgfmu-modelica`) lowers equations such as
//! `der(x) = A*x + B*u + E` into [`Expr`] trees referencing states, inputs
//! and parameters *by index* so evaluation is allocation-free and the IR can
//! be stored inside an FMU archive.

use crate::error::{FmiError, Result};

/// Unary operators and intrinsic functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Sine (argument in radians).
    Sin,
    /// Cosine (argument in radians).
    Cos,
    /// Tangent (argument in radians).
    Tan,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Square root.
    Sqrt,
}

/// Binary operators. Comparison operators evaluate to `1.0` (true) or
/// `0.0` (false) so they can feed [`Expr::If`] conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Exponentiation (`^` in Modelica).
    Pow,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
    /// Less-than comparison.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
}

/// An expression over model quantities at a time instant.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Const(f64),
    /// The independent variable (simulation time, hours).
    Time,
    /// The `i`-th continuous state.
    State(usize),
    /// The `i`-th input.
    Input(usize),
    /// The `i`-th parameter.
    Param(usize),
    /// Unary operator application.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional: `if cond > 0.5 then a else b`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// Evaluation context: slices over the current state, input and parameter
/// vectors plus the current time.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx<'a> {
    /// Current simulation time (hours).
    pub t: f64,
    /// State vector.
    pub x: &'a [f64],
    /// Input vector.
    pub u: &'a [f64],
    /// Parameter vector.
    pub p: &'a [f64],
}

impl Expr {
    /// Evaluate the expression in the given context.
    ///
    /// Out-of-range indices yield `NaN` rather than panicking; models are
    /// index-checked once at construction via [`Expr::check_indices`].
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> f64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Time => ctx.t,
            Expr::State(i) => ctx.x.get(*i).copied().unwrap_or(f64::NAN),
            Expr::Input(i) => ctx.u.get(*i).copied().unwrap_or(f64::NAN),
            Expr::Param(i) => ctx.p.get(*i).copied().unwrap_or(f64::NAN),
            Expr::Unary(op, a) => {
                let a = a.eval(ctx);
                match op {
                    UnaryOp::Neg => -a,
                    UnaryOp::Abs => a.abs(),
                    UnaryOp::Sin => a.sin(),
                    UnaryOp::Cos => a.cos(),
                    UnaryOp::Tan => a.tan(),
                    UnaryOp::Exp => a.exp(),
                    UnaryOp::Ln => a.ln(),
                    UnaryOp::Sqrt => a.sqrt(),
                }
            }
            Expr::Binary(op, a, b) => {
                let a = a.eval(ctx);
                let b = b.eval(ctx);
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Pow => a.powf(b),
                    BinOp::Min => a.min(b),
                    BinOp::Max => a.max(b),
                    BinOp::Lt => f64::from(a < b),
                    BinOp::Le => f64::from(a <= b),
                    BinOp::Gt => f64::from(a > b),
                    BinOp::Ge => f64::from(a >= b),
                }
            }
            Expr::If(c, a, b) => {
                if c.eval(ctx) > 0.5 {
                    a.eval(ctx)
                } else {
                    b.eval(ctx)
                }
            }
        }
    }

    /// Verify every index reference fits the given dimensions.
    pub fn check_indices(&self, n_states: usize, n_inputs: usize, n_params: usize) -> Result<()> {
        match self {
            Expr::Const(_) | Expr::Time => Ok(()),
            Expr::State(i) => {
                if *i < n_states {
                    Ok(())
                } else {
                    Err(FmiError::InvalidModel(format!(
                        "state index {i} out of range (n_states={n_states})"
                    )))
                }
            }
            Expr::Input(i) => {
                if *i < n_inputs {
                    Ok(())
                } else {
                    Err(FmiError::InvalidModel(format!(
                        "input index {i} out of range (n_inputs={n_inputs})"
                    )))
                }
            }
            Expr::Param(i) => {
                if *i < n_params {
                    Ok(())
                } else {
                    Err(FmiError::InvalidModel(format!(
                        "parameter index {i} out of range (n_params={n_params})"
                    )))
                }
            }
            Expr::Unary(_, a) => a.check_indices(n_states, n_inputs, n_params),
            Expr::Binary(_, a, b) => {
                a.check_indices(n_states, n_inputs, n_params)?;
                b.check_indices(n_states, n_inputs, n_params)
            }
            Expr::If(c, a, b) => {
                c.check_indices(n_states, n_inputs, n_params)?;
                a.check_indices(n_states, n_inputs, n_params)?;
                b.check_indices(n_states, n_inputs, n_params)
            }
        }
    }

    /// Number of nodes in the expression tree (used for archive sanity
    /// limits and by tests).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Time | Expr::State(_) | Expr::Input(_) | Expr::Param(_) => 1,
            Expr::Unary(_, a) => 1 + a.node_count(),
            Expr::Binary(_, a, b) => 1 + a.node_count() + b.node_count(),
            Expr::If(c, a, b) => 1 + c.node_count() + a.node_count() + b.node_count(),
        }
    }
}

/// Convenience constructors used by the compiler and the builtin models.
impl Expr {
    /// `a + b`
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(a), Box::new(b))
    }
    /// `a - b`
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(a), Box::new(b))
    }
    /// `a * b`
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(a), Box::new(b))
    }
    /// `a / b`
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Div, Box::new(a), Box::new(b))
    }
    /// `-a`
    pub fn neg(a: Expr) -> Expr {
        Expr::Unary(UnaryOp::Neg, Box::new(a))
    }
    /// Literal.
    pub fn c(v: f64) -> Expr {
        Expr::Const(v)
    }
    /// Sum of several terms (empty sum is `0`).
    pub fn sum(terms: Vec<Expr>) -> Expr {
        let mut it = terms.into_iter();
        match it.next() {
            None => Expr::Const(0.0),
            Some(first) => it.fold(first, Expr::add),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(t: f64, x: &'a [f64], u: &'a [f64], p: &'a [f64]) -> EvalCtx<'a> {
        EvalCtx { t, x, u, p }
    }

    #[test]
    fn arithmetic_evaluation() {
        // A*x + B*u + E with A=p0, B=p1, E=p2
        let e = Expr::sum(vec![
            Expr::mul(Expr::Param(0), Expr::State(0)),
            Expr::mul(Expr::Param(1), Expr::Input(0)),
            Expr::Param(2),
        ]);
        let v = e.eval(&ctx(0.0, &[20.0], &[0.5], &[-0.444, 13.78, -4.444]));
        let expected = -0.444 * 20.0 + 13.78 * 0.5 + -4.444;
        assert!((v - expected).abs() < 1e-12);
    }

    #[test]
    fn unary_functions() {
        let x = [2.0];
        let cases: &[(UnaryOp, f64)] = &[
            (UnaryOp::Neg, -2.0),
            (UnaryOp::Abs, 2.0),
            (UnaryOp::Sin, 2.0_f64.sin()),
            (UnaryOp::Cos, 2.0_f64.cos()),
            (UnaryOp::Tan, 2.0_f64.tan()),
            (UnaryOp::Exp, 2.0_f64.exp()),
            (UnaryOp::Ln, 2.0_f64.ln()),
            (UnaryOp::Sqrt, 2.0_f64.sqrt()),
        ];
        for (op, want) in cases {
            let e = Expr::Unary(*op, Box::new(Expr::State(0)));
            assert!((e.eval(&ctx(0.0, &x, &[], &[])) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn comparisons_and_if() {
        let e = Expr::If(
            Box::new(Expr::Binary(
                BinOp::Gt,
                Box::new(Expr::State(0)),
                Box::new(Expr::Const(21.0)),
            )),
            Box::new(Expr::Const(0.0)),
            Box::new(Expr::Const(1.0)),
        );
        // Thermostat: heat off above 21 degrees.
        assert_eq!(e.eval(&ctx(0.0, &[22.0], &[], &[])), 0.0);
        assert_eq!(e.eval(&ctx(0.0, &[19.0], &[], &[])), 1.0);
    }

    #[test]
    fn min_max_pow() {
        let e = Expr::Binary(
            BinOp::Max,
            Box::new(Expr::Const(0.0)),
            Box::new(Expr::Binary(
                BinOp::Min,
                Box::new(Expr::Input(0)),
                Box::new(Expr::Const(1.0)),
            )),
        );
        // clamp(u, 0, 1)
        assert_eq!(e.eval(&ctx(0.0, &[], &[1.7], &[])), 1.0);
        assert_eq!(e.eval(&ctx(0.0, &[], &[-0.3], &[])), 0.0);
        assert_eq!(e.eval(&ctx(0.0, &[], &[0.42], &[])), 0.42);

        let p = Expr::Binary(
            BinOp::Pow,
            Box::new(Expr::Const(2.0)),
            Box::new(Expr::Const(10.0)),
        );
        assert_eq!(p.eval(&ctx(0.0, &[], &[], &[])), 1024.0);
    }

    #[test]
    fn time_reference() {
        let e = Expr::mul(Expr::Time, Expr::c(2.0));
        assert_eq!(e.eval(&ctx(3.5, &[], &[], &[])), 7.0);
    }

    #[test]
    fn out_of_range_index_is_nan_at_eval_and_error_at_check() {
        let e = Expr::State(3);
        assert!(e.eval(&ctx(0.0, &[1.0], &[], &[])).is_nan());
        assert!(e.check_indices(1, 0, 0).is_err());
        assert!(Expr::Input(0).check_indices(0, 0, 0).is_err());
        assert!(Expr::Param(2).check_indices(0, 0, 2).is_err());
        assert!(Expr::Param(1).check_indices(0, 0, 2).is_ok());
    }

    #[test]
    fn nested_check_indices() {
        let e = Expr::If(
            Box::new(Expr::State(0)),
            Box::new(Expr::Input(5)),
            Box::new(Expr::Const(0.0)),
        );
        assert!(e.check_indices(1, 2, 0).is_err());
        let ok = Expr::add(Expr::State(0), Expr::Input(1));
        assert!(ok.check_indices(1, 2, 0).is_ok());
    }

    #[test]
    fn node_count_counts_all_nodes() {
        let e = Expr::add(Expr::mul(Expr::c(1.0), Expr::c(2.0)), Expr::Time);
        assert_eq!(e.node_count(), 5);
    }

    #[test]
    fn sum_of_empty_is_zero() {
        assert_eq!(Expr::sum(vec![]).eval(&ctx(0.0, &[], &[], &[])), 0.0);
    }
}
