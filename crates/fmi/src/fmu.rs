//! Compiled models ([`Fmu`]) and their instantiations ([`FmuInstance`]) —
//! the substrate's equivalent of PyFMI's `load_fmu(...)` object model.
//!
//! An [`Fmu`] is immutable once built: meta-data plus equations. pgFMU keeps
//! exactly one loaded `Fmu` per model UUID in FMU storage and represents
//! instances as catalogue rows; here an [`FmuInstance`] is the in-memory
//! realization of such a row — the shared `Arc<Fmu>` plus per-instance
//! parameter values and state start values.

use std::sync::Arc;

use crate::error::{FmiError, Result};
use crate::input::InputSet;
use crate::model_description::{Causality, ModelDescription};
use crate::solver::SolverKind;
use crate::system::EquationSystem;

/// A compiled, immutable physical model: meta-data + equations.
#[derive(Debug, Clone, PartialEq)]
pub struct Fmu {
    /// FMU meta-data ("modelDescription.xml").
    pub description: ModelDescription,
    /// Model equations.
    pub system: EquationSystem,
    states: Vec<String>,
    inputs: Vec<String>,
    params: Vec<String>,
    outputs: Vec<String>,
}

impl Fmu {
    /// Assemble an FMU from meta-data and equations, checking that the
    /// declared variables line up with the equation-system dimensions.
    ///
    /// Index alignment rule: the `i`-th state/input/parameter/output in
    /// *declaration order* of `description.variables` corresponds to index
    /// `i` in the equation system.
    pub fn new(description: ModelDescription, system: EquationSystem) -> Result<Self> {
        description.validate()?;
        let states: Vec<String> = description
            .names_with_causality(Causality::Local)
            .iter()
            .map(|s| s.to_string())
            .collect();
        let inputs: Vec<String> = description
            .names_with_causality(Causality::Input)
            .iter()
            .map(|s| s.to_string())
            .collect();
        let params: Vec<String> = description
            .names_with_causality(Causality::Parameter)
            .iter()
            .map(|s| s.to_string())
            .collect();
        let outputs: Vec<String> = description
            .names_with_causality(Causality::Output)
            .iter()
            .map(|s| s.to_string())
            .collect();
        if states.len() != system.n_states() {
            return Err(FmiError::InvalidModel(format!(
                "{} state variables declared but equation system has {}",
                states.len(),
                system.n_states()
            )));
        }
        if inputs.len() != system.n_inputs() {
            return Err(FmiError::InvalidModel(format!(
                "{} input variables declared but equation system has {}",
                inputs.len(),
                system.n_inputs()
            )));
        }
        if params.len() != system.n_params() {
            return Err(FmiError::InvalidModel(format!(
                "{} parameters declared but equation system has {}",
                params.len(),
                system.n_params()
            )));
        }
        if outputs.len() != system.n_outputs() {
            return Err(FmiError::InvalidModel(format!(
                "{} output variables declared but equation system has {}",
                outputs.len(),
                system.n_outputs()
            )));
        }
        Ok(Fmu {
            description,
            system,
            states,
            inputs,
            params,
            outputs,
        })
    }

    /// Model (class) name.
    pub fn name(&self) -> &str {
        &self.description.model_name
    }

    /// State variable names in equation-index order.
    pub fn state_names(&self) -> &[String] {
        &self.states
    }
    /// Input variable names in equation-index order.
    pub fn input_names(&self) -> &[String] {
        &self.inputs
    }
    /// Parameter names in equation-index order.
    pub fn param_names(&self) -> &[String] {
        &self.params
    }
    /// Output variable names in equation-index order.
    pub fn output_names(&self) -> &[String] {
        &self.outputs
    }

    /// Index of a parameter by name.
    pub fn param_index(&self, name: &str) -> Result<usize> {
        self.params
            .iter()
            .position(|p| p == name)
            .ok_or_else(|| FmiError::UnknownVariable(name.to_string()))
    }

    /// Index of a state by name.
    pub fn state_index(&self, name: &str) -> Result<usize> {
        self.states
            .iter()
            .position(|p| p == name)
            .ok_or_else(|| FmiError::UnknownVariable(name.to_string()))
    }

    /// Create an instance with all values at their declared start defaults.
    pub fn instantiate(self: &Arc<Self>) -> FmuInstance {
        let param_values = self
            .params
            .iter()
            .map(|n| self.description.variable(n).unwrap().start.unwrap_or(0.0))
            .collect();
        let start_state = self
            .states
            .iter()
            .map(|n| self.description.variable(n).unwrap().start.unwrap_or(0.0))
            .collect();
        FmuInstance {
            fmu: Arc::clone(self),
            param_values,
            start_state,
        }
    }
}

/// Options accepted by [`FmuInstance::simulate`], mirroring the optional
/// arguments of the paper's `fmu_simulate` UDF.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimulationOptions {
    /// Simulation start time; defaults to the model's default experiment.
    pub start: Option<f64>,
    /// Simulation stop time; defaults to the model's default experiment.
    pub stop: Option<f64>,
    /// Output grid step; defaults to the default experiment step size.
    pub output_step: Option<f64>,
    /// Integrator.
    pub solver: SolverKind,
}

/// Trajectories produced by a simulation: a time grid plus one series per
/// state and output variable.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationResult {
    times: Vec<f64>,
    names: Vec<String>,
    /// `series[v][k]` = value of variable `v` at `times[k]`.
    series: Vec<Vec<f64>>,
}

impl SimulationResult {
    /// The output time grid.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Reported variable names (states first, then outputs).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Series for one variable, if reported.
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.series[i].as_slice())
    }

    /// Series for the v-th reported variable (the order of [`Self::names`]).
    pub fn series_at(&self, v: usize) -> &[f64] {
        &self.series[v]
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Iterate `(time, variable name, value)` triples in time-major order —
    /// exactly the long table shape `fmu_simulate` returns (paper Table 4).
    pub fn long_rows(&self) -> impl Iterator<Item = (f64, &str, f64)> + '_ {
        self.times.iter().enumerate().flat_map(move |(k, &t)| {
            self.names
                .iter()
                .enumerate()
                .map(move |(v, name)| (t, name.as_str(), self.series[v][k]))
        })
    }
}

/// One model instance: shared compiled model + per-instance values.
#[derive(Debug, Clone)]
pub struct FmuInstance {
    fmu: Arc<Fmu>,
    param_values: Vec<f64>,
    start_state: Vec<f64>,
}

thread_local! {
    /// Per-thread integrator work buffers, reused across simulations.
    /// Worker threads in a fleet pool are persistent, so one slot per
    /// worker amortizes the buffers over every task the worker runs.
    static SCRATCH: std::cell::RefCell<crate::solver::Scratch> =
        std::cell::RefCell::new(crate::solver::Scratch::default());
}

impl FmuInstance {
    /// The underlying shared model.
    pub fn fmu(&self) -> &Arc<Fmu> {
        &self.fmu
    }

    /// Current parameter vector (equation-index order).
    pub fn param_values(&self) -> &[f64] {
        &self.param_values
    }

    /// Current state start vector (equation-index order).
    pub fn start_state(&self) -> &[f64] {
        &self.start_state
    }

    /// Set a parameter or state start value by name.
    ///
    /// Assigning to inputs or outputs is a causality violation, matching
    /// FMI semantics (inputs are provided per-simulation, outputs computed).
    pub fn set(&mut self, name: &str, value: f64) -> Result<()> {
        if !value.is_finite() {
            return Err(FmiError::Simulation(format!(
                "refusing to set '{name}' to non-finite value {value}"
            )));
        }
        let var = self.fmu.description.variable(name)?;
        match var.causality {
            Causality::Parameter => {
                let i = self.fmu.param_index(name)?;
                self.param_values[i] = value;
                Ok(())
            }
            Causality::Local => {
                let i = self.fmu.state_index(name)?;
                self.start_state[i] = value;
                Ok(())
            }
            Causality::Input => Err(FmiError::CausalityViolation {
                variable: name.to_string(),
                reason: "inputs are supplied as time series at simulation time".into(),
            }),
            Causality::Output => Err(FmiError::CausalityViolation {
                variable: name.to_string(),
                reason: "outputs are computed by simulation".into(),
            }),
        }
    }

    /// Read back a parameter or state start value by name.
    pub fn get(&self, name: &str) -> Result<f64> {
        let var = self.fmu.description.variable(name)?;
        match var.causality {
            Causality::Parameter => Ok(self.param_values[self.fmu.param_index(name)?]),
            Causality::Local => Ok(self.start_state[self.fmu.state_index(name)?]),
            _ => Err(FmiError::CausalityViolation {
                variable: name.to_string(),
                reason: "only parameters and states hold instance values".into(),
            }),
        }
    }

    /// Set the whole parameter vector at once (used by the estimator's
    /// inner loop to avoid repeated name lookups).
    pub fn set_params(&mut self, values: &[f64]) -> Result<()> {
        if values.len() != self.param_values.len() {
            return Err(FmiError::Simulation(format!(
                "parameter vector length {} != {}",
                values.len(),
                self.param_values.len()
            )));
        }
        self.param_values.copy_from_slice(values);
        Ok(())
    }

    /// Set the whole state start vector at once (equation-index order) —
    /// the estimator's inner loop uses this together with
    /// [`FmuInstance::set_params`] so no per-evaluation name resolution
    /// remains.
    pub fn set_start_states(&mut self, values: &[f64]) -> Result<()> {
        if values.len() != self.start_state.len() {
            return Err(FmiError::Simulation(format!(
                "state vector length {} != {}",
                values.len(),
                self.start_state.len()
            )));
        }
        if let Some(bad) = values.iter().find(|v| !v.is_finite()) {
            return Err(FmiError::Simulation(format!(
                "refusing to set a state start value to non-finite {bad}"
            )));
        }
        self.start_state.copy_from_slice(values);
        Ok(())
    }

    /// Restore every parameter and state start value to the model defaults
    /// (`fmu_reset` in the paper).
    pub fn reset(&mut self) {
        let fresh = self.fmu.instantiate();
        self.param_values = fresh.param_values;
        self.start_state = fresh.start_state;
    }

    /// Simulate the instance over a time window.
    ///
    /// * `inputs` must provide one series per declared model input; the
    ///   series must cover the simulation window (the paper specifies an
    ///   error for insufficient input series, §7).
    /// * The result reports states and outputs on the output grid.
    /// * Integrator work buffers come from a per-thread slot (see
    ///   `SCRATCH`), so repeated simulations on the same thread — a GA
    ///   objective sweep, a pooled fleet worker — reuse one allocation.
    pub fn simulate(
        &self,
        inputs: &InputSet,
        opts: &SimulationOptions,
    ) -> Result<SimulationResult> {
        let de = &self.fmu.description.default_experiment;
        let t0 = opts.start.unwrap_or(de.start_time);
        let t1 = opts.stop.unwrap_or(de.stop_time);
        let dt = opts.output_step.unwrap_or(de.step_size);
        if !(t0.is_finite() && t1.is_finite()) || t1 <= t0 {
            return Err(FmiError::Simulation(format!(
                "incomplete simulation time interval: [{t0}, {t1}]"
            )));
        }
        if !(dt.is_finite() && dt > 0.0) {
            return Err(FmiError::Simulation(format!(
                "output step must be positive, got {dt}"
            )));
        }
        let n_in = self.fmu.input_names().len();
        if inputs.len() != n_in {
            return Err(FmiError::Simulation(format!(
                "model '{}' declares {} input(s) but {} series were bound",
                self.fmu.name(),
                n_in,
                inputs.len()
            )));
        }
        if n_in > 0 {
            // Tolerance of one output step absorbs grid-vs-sample jitter.
            let cover_lo = inputs.common_start().unwrap();
            let cover_hi = inputs.common_end().unwrap();
            if t0 < cover_lo - dt || t1 > cover_hi + dt {
                return Err(FmiError::Simulation(format!(
                    "insufficient model input time series: window [{t0}, {t1}] \
                     not covered by inputs [{cover_lo}, {cover_hi}]"
                )));
            }
        }

        let n_states = self.fmu.system.n_states();
        let n_outputs = self.fmu.system.n_outputs();
        let mut x = self.start_state.clone();
        let mut u = vec![0.0; n_in];
        let mut y = vec![0.0; n_outputs];

        let n_points = ((t1 - t0) / dt).round() as usize + 1;
        let mut times = Vec::with_capacity(n_points);
        let mut series: Vec<Vec<f64>> = vec![Vec::with_capacity(n_points); n_states + n_outputs];

        let p = self.param_values.clone();
        let sys = &self.fmu.system;
        // The RHS owns its input buffer: no allocation per derivative
        // evaluation (RK4 makes four of these per internal step).
        let mut ub = vec![0.0; n_in];
        let p_ref = &p;
        let mut rhs = move |t: f64, xs: &[f64], dx: &mut [f64]| {
            inputs.sample_into(t, &mut ub);
            sys.derivatives(t, xs, &ub, p_ref, dx);
        };

        // One set of integrator work buffers for the whole trajectory —
        // the per-step loop below allocates nothing. The buffers are
        // per-thread and survive across calls: a persistent fleet/GA
        // worker thread simulates thousands of trajectories with a
        // single allocation (resizing to the same dimension is free).
        // Taken out of the slot for the duration of the loop; an early
        // error return forfeits the buffers, and the slot simply
        // reallocates on the thread's next simulation.
        let mut scratch = SCRATCH.take();
        scratch.resize(n_states);
        let mut k = 0usize;
        loop {
            let t = t0 + k as f64 * dt;
            let t = if t > t1 { t1 } else { t };
            inputs.sample_into(t, &mut u);
            sys.outputs(t, &x, &u, &p, &mut y);
            times.push(t);
            for (i, &xv) in x.iter().enumerate() {
                series[i].push(xv);
            }
            for (j, &yv) in y.iter().enumerate() {
                series[n_states + j].push(yv);
            }
            if t >= t1 {
                break;
            }
            let t_next = (t0 + (k + 1) as f64 * dt).min(t1);
            opts.solver
                .integrate_with(&mut scratch, &mut rhs, t, t_next, &mut x)?;
            k += 1;
        }
        SCRATCH.set(scratch);

        let names = self
            .fmu
            .state_names()
            .iter()
            .chain(self.fmu.output_names())
            .cloned()
            .collect();
        Ok(SimulationResult {
            times,
            names,
            series,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::input::{InputSeries, Interpolation};
    use crate::model_description::{DefaultExperiment, ScalarVariable, VarType, Variability};

    /// Build the paper's Figure-2 heat pump: der(x)=A*x+B*u+E, y=D*u.
    fn heat_pump() -> Arc<Fmu> {
        let vars = vec![
            ScalarVariable::new("A", Causality::Parameter, Variability::Tunable)
                .with_start(-1.0 / 2.25)
                .with_bounds(-10.0, 10.0),
            ScalarVariable::new("B", Causality::Parameter, Variability::Tunable)
                .with_start(13.78)
                .with_bounds(-20.0, 20.0),
            ScalarVariable::new("E", Causality::Parameter, Variability::Tunable)
                .with_start(-10.0 / 2.25)
                .with_bounds(-20.0, 20.0),
            ScalarVariable::new("D", Causality::Parameter, Variability::Fixed).with_start(7.8),
            ScalarVariable::new("x", Causality::Local, Variability::Continuous)
                .with_start(20.0)
                .with_unit("degC"),
            ScalarVariable::new("u", Causality::Input, Variability::Continuous)
                .with_bounds(0.0, 1.0),
            ScalarVariable::new("y", Causality::Output, Variability::Continuous).with_unit("kW"),
        ];
        let md = ModelDescription::new(
            "heatpump",
            vars,
            DefaultExperiment {
                start_time: 0.0,
                stop_time: 10.0,
                tolerance: 1e-6,
                step_size: 1.0,
            },
        )
        .unwrap();
        let sys = EquationSystem::new(
            1,
            1,
            4,
            vec![Expr::sum(vec![
                Expr::mul(Expr::Param(0), Expr::State(0)),
                Expr::mul(Expr::Param(1), Expr::Input(0)),
                Expr::Param(2),
            ])],
            vec![Expr::mul(Expr::Param(3), Expr::Input(0))],
        )
        .unwrap();
        Arc::new(Fmu::new(md, sys).unwrap())
    }

    fn constant_u(value: f64) -> InputSet {
        let s = InputSeries::new(
            "u",
            vec![0.0, 100.0],
            vec![value, value],
            Interpolation::Hold,
        )
        .unwrap();
        InputSet::bind(&["u"], vec![s]).unwrap()
    }

    #[test]
    fn instantiate_uses_start_values() {
        let inst = heat_pump().instantiate();
        assert!((inst.get("A").unwrap() - (-1.0 / 2.25)).abs() < 1e-12);
        assert_eq!(inst.get("x").unwrap(), 20.0);
    }

    #[test]
    fn set_get_reset_round_trip() {
        let mut inst = heat_pump().instantiate();
        inst.set("A", 0.5).unwrap();
        inst.set("x", 18.0).unwrap();
        assert_eq!(inst.get("A").unwrap(), 0.5);
        assert_eq!(inst.get("x").unwrap(), 18.0);
        inst.reset();
        assert!((inst.get("A").unwrap() - (-1.0 / 2.25)).abs() < 1e-12);
        assert_eq!(inst.get("x").unwrap(), 20.0);
    }

    #[test]
    fn causality_violations() {
        let mut inst = heat_pump().instantiate();
        assert!(matches!(
            inst.set("u", 1.0),
            Err(FmiError::CausalityViolation { .. })
        ));
        assert!(matches!(
            inst.set("y", 1.0),
            Err(FmiError::CausalityViolation { .. })
        ));
        assert!(inst.get("y").is_err());
        assert!(matches!(
            inst.set("zzz", 0.0),
            Err(FmiError::UnknownVariable(_))
        ));
        assert!(inst.set("A", f64::NAN).is_err());
    }

    #[test]
    fn simulation_matches_lti_closed_form() {
        let inst = heat_pump().instantiate();
        let u = 0.5;
        let res = inst
            .simulate(
                &constant_u(u),
                &SimulationOptions {
                    solver: SolverKind::Rk45 {
                        rtol: 1e-9,
                        atol: 1e-12,
                    },
                    ..Default::default()
                },
            )
            .unwrap();
        let a = -1.0 / 2.25;
        let c = 13.78 * u - 10.0 / 2.25;
        let x0 = 20.0;
        let xs = res.series("x").unwrap();
        for (k, &t) in res.times().iter().enumerate() {
            let exact = (x0 + c / a) * (a * t).exp() - c / a;
            assert!((xs[k] - exact).abs() < 1e-6, "t={t}: {} vs {exact}", xs[k]);
        }
        // Output y = D*u everywhere.
        for &yv in res.series("y").unwrap() {
            assert!((yv - 7.8 * u).abs() < 1e-12);
        }
    }

    #[test]
    fn default_experiment_window_is_used() {
        let inst = heat_pump().instantiate();
        let res = inst
            .simulate(&constant_u(0.0), &SimulationOptions::default())
            .unwrap();
        assert_eq!(res.times().first(), Some(&0.0));
        assert_eq!(res.times().last(), Some(&10.0));
        assert_eq!(res.len(), 11);
    }

    #[test]
    fn explicit_window_overrides_default() {
        let inst = heat_pump().instantiate();
        let res = inst
            .simulate(
                &constant_u(0.0),
                &SimulationOptions {
                    start: Some(2.0),
                    stop: Some(4.0),
                    output_step: Some(0.5),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(res.times(), &[2.0, 2.5, 3.0, 3.5, 4.0]);
    }

    #[test]
    fn incomplete_interval_errors() {
        let inst = heat_pump().instantiate();
        let err = inst.simulate(
            &constant_u(0.0),
            &SimulationOptions {
                start: Some(5.0),
                stop: Some(5.0),
                ..Default::default()
            },
        );
        assert!(err.unwrap_err().to_string().contains("incomplete"));
    }

    #[test]
    fn missing_inputs_error() {
        let inst = heat_pump().instantiate();
        let err = inst.simulate(&InputSet::empty(), &SimulationOptions::default());
        assert!(err.unwrap_err().to_string().contains("1 input"));
    }

    #[test]
    fn uncovered_window_errors() {
        let inst = heat_pump().instantiate();
        let s = InputSeries::new("u", vec![0.0, 2.0], vec![0.0, 0.0], Interpolation::Hold).unwrap();
        let inputs = InputSet::bind(&["u"], vec![s]).unwrap();
        let err = inst.simulate(
            &inputs,
            &SimulationOptions {
                start: Some(0.0),
                stop: Some(9.0),
                ..Default::default()
            },
        );
        assert!(err
            .unwrap_err()
            .to_string()
            .contains("insufficient model input time series"));
    }

    #[test]
    fn long_rows_shape() {
        let inst = heat_pump().instantiate();
        let res = inst
            .simulate(
                &constant_u(0.1),
                &SimulationOptions {
                    stop: Some(2.0),
                    ..Default::default()
                },
            )
            .unwrap();
        let rows: Vec<_> = res.long_rows().collect();
        // 3 grid points x 2 variables (x, y).
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].1, "x");
        assert_eq!(rows[1].1, "y");
        assert_eq!(rows[0].0, 0.0);
        assert_eq!(rows[5].0, 2.0);
    }

    #[test]
    fn set_params_bulk() {
        let mut inst = heat_pump().instantiate();
        inst.set_params(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(inst.get("A").unwrap(), 1.0);
        assert_eq!(inst.get("D").unwrap(), 4.0);
        assert!(inst.set_params(&[1.0]).is_err());
    }

    #[test]
    fn mismatched_variable_counts_rejected() {
        // Declare two states but the system has one.
        let vars = vec![
            ScalarVariable::new("x1", Causality::Local, Variability::Continuous).with_start(0.0),
            ScalarVariable::new("x2", Causality::Local, Variability::Continuous).with_start(0.0),
        ];
        let md = ModelDescription::new("bad", vars, DefaultExperiment::default()).unwrap();
        let sys = EquationSystem::new(1, 0, 0, vec![Expr::Const(0.0)], vec![]).unwrap();
        assert!(Fmu::new(md, sys).is_err());
    }

    #[test]
    fn integer_input_metadata_allowed() {
        // Occupancy-style integer input is simulated as f64 but keeps its
        // declared type for data binding.
        let vars = vec![
            ScalarVariable::new("occ", Causality::Input, Variability::Discrete)
                .with_type(VarType::Integer),
            ScalarVariable::new("T", Causality::Local, Variability::Continuous).with_start(20.0),
        ];
        let md = ModelDescription::new("room", vars, DefaultExperiment::default()).unwrap();
        let sys = EquationSystem::new(
            1,
            1,
            0,
            vec![Expr::mul(Expr::c(0.1), Expr::Input(0))],
            vec![],
        )
        .unwrap();
        let fmu = Arc::new(Fmu::new(md, sys).unwrap());
        let inst = fmu.instantiate();
        let s =
            InputSeries::new("occ", vec![0.0, 24.0], vec![3.0, 3.0], Interpolation::Hold).unwrap();
        let inputs = InputSet::bind(&["occ"], vec![s]).unwrap();
        let res = inst
            .simulate(&inputs, &SimulationOptions::default())
            .unwrap();
        let t_series = res.series("T").unwrap();
        // der(T) = 0.1*occ = 0.3/h -> after 24h: 20 + 7.2
        assert!((t_series.last().unwrap() - 27.2).abs() < 1e-9);
    }
}
