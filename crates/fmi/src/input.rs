//! Input objects: named time series bound to model input variables.
//!
//! `fmu_simulate` builds these automatically from the result set of the
//! user's `input_sql` query, using FMU meta-data to match columns to input
//! variables and to pick an interpolation mode per variable variability
//! (paper §7, "Challenge 2"). Discrete inputs are held constant between
//! samples; continuous inputs are linearly interpolated.

use crate::error::{FmiError, Result};

/// How values between samples are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interpolation {
    /// Zero-order hold — value of the most recent sample (discrete inputs).
    Hold,
    /// Linear interpolation between neighbouring samples (continuous inputs).
    Linear,
}

/// A single named input time series.
#[derive(Debug, Clone, PartialEq)]
pub struct InputSeries {
    /// Input variable name this series binds to.
    pub name: String,
    /// Strictly increasing sample times (hours).
    pub times: Vec<f64>,
    /// Sample values, same length as `times`.
    pub values: Vec<f64>,
    /// Inter-sample behaviour.
    pub interpolation: Interpolation,
}

impl InputSeries {
    /// Build a series, validating shape and monotonicity.
    pub fn new(
        name: impl Into<String>,
        times: Vec<f64>,
        values: Vec<f64>,
        interpolation: Interpolation,
    ) -> Result<Self> {
        let name = name.into();
        if times.len() != values.len() {
            return Err(FmiError::Simulation(format!(
                "input series '{name}': {} times but {} values",
                times.len(),
                values.len()
            )));
        }
        if times.is_empty() {
            return Err(FmiError::Simulation(format!(
                "input series '{name}' is empty"
            )));
        }
        for w in times.windows(2) {
            if !(w[1] > w[0]) {
                return Err(FmiError::Simulation(format!(
                    "input series '{name}': sample times not strictly increasing at t={}",
                    w[1]
                )));
            }
        }
        for (t, v) in times.iter().zip(&values) {
            if !t.is_finite() || !v.is_finite() {
                return Err(FmiError::Simulation(format!(
                    "input series '{name}': non-finite sample at t={t}"
                )));
            }
        }
        Ok(InputSeries {
            name,
            times,
            values,
            interpolation,
        })
    }

    /// First sample time.
    pub fn start_time(&self) -> f64 {
        self.times[0]
    }

    /// Last sample time.
    pub fn end_time(&self) -> f64 {
        *self.times.last().expect("series is never empty")
    }

    /// Value at time `t`. Before the first sample the first value is used;
    /// after the last sample the last value is held (standard FMI-tool
    /// behaviour for co-simulation inputs).
    pub fn sample(&self, t: f64) -> f64 {
        let n = self.times.len();
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= self.times[n - 1] {
            return self.values[n - 1];
        }
        // partition_point returns the first index with times[i] > t.
        let hi = self.times.partition_point(|&x| x <= t);
        let lo = hi - 1;
        match self.interpolation {
            Interpolation::Hold => self.values[lo],
            Interpolation::Linear => {
                let (t0, t1) = (self.times[lo], self.times[hi]);
                let (v0, v1) = (self.values[lo], self.values[hi]);
                v0 + (v1 - v0) * (t - t0) / (t1 - t0)
            }
        }
    }
}

/// A set of input series, index-aligned with the model's input vector.
///
/// Built by [`InputSet::bind`], which performs the automatic name matching
/// the paper's users otherwise do by hand.
#[derive(Debug, Clone, Default)]
pub struct InputSet {
    series: Vec<InputSeries>,
}

impl InputSet {
    /// An input set for a model without inputs.
    pub fn empty() -> Self {
        InputSet { series: Vec::new() }
    }

    /// Bind a bag of named series to the model's declared input order.
    /// Every declared input must be matched; extra series are an error so
    /// typos surface instead of being silently dropped.
    pub fn bind(input_names: &[&str], mut available: Vec<InputSeries>) -> Result<Self> {
        let mut series = Vec::with_capacity(input_names.len());
        for name in input_names {
            let pos = available.iter().position(|s| s.name == *name);
            match pos {
                Some(i) => series.push(available.swap_remove(i)),
                None => {
                    return Err(FmiError::Simulation(format!(
                        "insufficient model input time series: no series for input '{name}'"
                    )))
                }
            }
        }
        if let Some(extra) = available.first() {
            return Err(FmiError::Simulation(format!(
                "series '{}' does not match any model input",
                extra.name
            )));
        }
        Ok(InputSet { series })
    }

    /// Number of bound inputs.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True if no inputs are bound.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The bound series, in model input order.
    pub fn series(&self) -> &[InputSeries] {
        &self.series
    }

    /// Sample every input at time `t` into `u`.
    pub fn sample_into(&self, t: f64, u: &mut [f64]) {
        debug_assert_eq!(u.len(), self.series.len());
        for (dst, s) in u.iter_mut().zip(&self.series) {
            *dst = s.sample(t);
        }
    }

    /// Latest common start time across series (None when there are none).
    pub fn common_start(&self) -> Option<f64> {
        self.series
            .iter()
            .map(InputSeries::start_time)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }

    /// Earliest common end time across series (None when there are none).
    pub fn common_end(&self) -> Option<f64> {
        self.series
            .iter()
            .map(InputSeries::end_time)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(interp: Interpolation) -> InputSeries {
        InputSeries::new("u", vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 10.0], interp).unwrap()
    }

    #[test]
    fn rejects_malformed_series() {
        assert!(InputSeries::new("u", vec![0.0], vec![], Interpolation::Hold).is_err());
        assert!(InputSeries::new("u", vec![], vec![], Interpolation::Hold).is_err());
        assert!(
            InputSeries::new("u", vec![0.0, 0.0], vec![1.0, 2.0], Interpolation::Hold).is_err()
        );
        assert!(
            InputSeries::new("u", vec![1.0, 0.5], vec![1.0, 2.0], Interpolation::Hold).is_err()
        );
        assert!(InputSeries::new(
            "u",
            vec![0.0, 1.0],
            vec![1.0, f64::NAN],
            Interpolation::Hold
        )
        .is_err());
    }

    #[test]
    fn hold_sampling() {
        let s = series(Interpolation::Hold);
        assert_eq!(s.sample(-1.0), 0.0);
        assert_eq!(s.sample(0.0), 0.0);
        assert_eq!(s.sample(0.99), 0.0);
        assert_eq!(s.sample(1.0), 10.0);
        assert_eq!(s.sample(1.5), 10.0);
        assert_eq!(s.sample(5.0), 10.0);
    }

    #[test]
    fn linear_sampling() {
        let s = series(Interpolation::Linear);
        assert_eq!(s.sample(0.5), 5.0);
        assert!((s.sample(0.25) - 2.5).abs() < 1e-12);
        assert_eq!(s.sample(1.5), 10.0);
        assert_eq!(s.sample(99.0), 10.0);
    }

    #[test]
    fn bind_matches_by_name_in_model_order() {
        let a = InputSeries::new("a", vec![0.0], vec![1.0], Interpolation::Hold).unwrap();
        let b = InputSeries::new("b", vec![0.0], vec![2.0], Interpolation::Hold).unwrap();
        let set = InputSet::bind(&["b", "a"], vec![a, b]).unwrap();
        let mut u = [0.0, 0.0];
        set.sample_into(0.0, &mut u);
        assert_eq!(u, [2.0, 1.0]);
    }

    #[test]
    fn bind_missing_input_errors() {
        let a = InputSeries::new("a", vec![0.0], vec![1.0], Interpolation::Hold).unwrap();
        let err = InputSet::bind(&["a", "u"], vec![a]);
        assert!(err.unwrap_err().to_string().contains("input 'u'"));
    }

    #[test]
    fn bind_extra_series_errors() {
        let a = InputSeries::new("a", vec![0.0], vec![1.0], Interpolation::Hold).unwrap();
        let z = InputSeries::new("z", vec![0.0], vec![9.0], Interpolation::Hold).unwrap();
        let err = InputSet::bind(&["a"], vec![a, z]);
        assert!(err.unwrap_err().to_string().contains("'z'"));
    }

    #[test]
    fn common_window() {
        let a = InputSeries::new("a", vec![0.0, 5.0], vec![0.0, 0.0], Interpolation::Hold).unwrap();
        let b = InputSeries::new("b", vec![1.0, 9.0], vec![0.0, 0.0], Interpolation::Hold).unwrap();
        let set = InputSet::bind(&["a", "b"], vec![a, b]).unwrap();
        assert_eq!(set.common_start(), Some(1.0));
        assert_eq!(set.common_end(), Some(5.0));
        assert_eq!(InputSet::empty().common_start(), None);
        assert!(InputSet::empty().is_empty());
    }

    #[test]
    fn single_sample_series_holds_value_everywhere() {
        let s = InputSeries::new("k", vec![2.0], vec![7.0], Interpolation::Linear).unwrap();
        assert_eq!(s.sample(0.0), 7.0);
        assert_eq!(s.sample(2.0), 7.0);
        assert_eq!(s.sample(3.0), 7.0);
    }
}
