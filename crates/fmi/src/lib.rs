//! # pgfmu-fmi — an FMI 2.0-like physical system modelling substrate
//!
//! This crate is the stand-in for the FMI standard, PyFMI and the Assimulo
//! solver suite used by the pgFMU paper (EDBT 2020). It provides:
//!
//! * [`ModelDescription`] — FMU meta-data: scalar variables with causality,
//!   variability, declared type and start/min/max attributes, plus the
//!   default experiment (start/stop time, tolerance, step size). pgFMU's
//!   "Challenge 2" (semi-automatic task specification and data mapping) is
//!   driven entirely by this meta-data.
//! * [`expr::Expr`] / [`system::EquationSystem`] — a serializable equation IR
//!   in which model dynamics (`der(x) = …`, `y = …`) are expressed. The
//!   Modelica-subset compiler in `pgfmu-modelica` emits this IR.
//! * [`solver`] — fixed-step (explicit Euler, classic RK4) and adaptive
//!   (Dormand–Prince RK45) integrators, the stand-ins for Assimulo/CVode.
//! * [`Fmu`] / [`FmuInstance`] — a compiled model and its instantiations
//!   with `set`/`get`/`reset`/`simulate`, mirroring the PyFMI model API.
//! * [`archive`] — a binary `.fmu`-like container so models can be stored
//!   in and loaded from non-volatile FMU storage.
//! * [`builtin`] — the three evaluation models of the paper (HP0, HP1,
//!   Classroom) plus the Figure-2 A/B/C/D/E heat-pump parameterization.
//!
//! Time is measured in **hours** throughout (the paper's datasets are hourly
//! and half-hourly); temperatures in °C, powers in kW, energies in kWh.

// Numeric-kernel idioms: indexed loops mirror the textbook formulas they
// implement; negated comparisons (`!(a > b)`) deliberately catch NaNs; the
// Expr convenience constructors intentionally shadow operator names.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::should_implement_trait)]

pub mod archive;
pub mod builtin;
pub mod error;
pub mod expr;
pub mod fmu;
pub mod input;
pub mod model_description;
pub mod solver;
pub mod system;

pub use error::{FmiError, Result};
pub use expr::{BinOp, Expr, UnaryOp};
pub use fmu::{Fmu, FmuInstance, SimulationOptions, SimulationResult};
pub use input::{InputSeries, InputSet, Interpolation};
pub use model_description::{
    Causality, DefaultExperiment, ModelDescription, ScalarVariable, VarType, Variability,
};
pub use solver::SolverKind;
pub use system::EquationSystem;
