//! FMU meta-data: scalar variables, causalities, variabilities, declared
//! types and the default experiment.
//!
//! The pgFMU paper leans on this meta-data to "semi-automate task
//! specification and data mapping" (Challenge 2, §4): the catalogue reads it
//! once at `fmu_create` time, the simulation UDF uses it to build input
//! objects automatically, and the estimation UDF uses it to discover which
//! variables are tunable parameters.

use crate::error::{FmiError, Result};

/// How a variable participates in the model, mirroring FMI 2.0 causalities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Causality {
    /// A constant that can be set before simulation and estimated by
    /// `fmu_parest`. Reported as `"parameter"` by `fmu_variables`.
    Parameter,
    /// An exogenous time series fed into the model (`u`, `solrad`, …).
    Input,
    /// A value computed by the model (`y`).
    Output,
    /// An internal continuous-time state (`x`, `T`). FMI calls these
    /// `local`; the paper reports state trajectories alongside outputs.
    Local,
}

impl Causality {
    /// Catalogue string representation (the paper's `varType` column).
    pub fn as_str(self) -> &'static str {
        match self {
            Causality::Parameter => "parameter",
            Causality::Input => "input",
            Causality::Output => "output",
            Causality::Local => "state",
        }
    }

    /// Parse the catalogue string representation.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "parameter" => Ok(Causality::Parameter),
            "input" => Ok(Causality::Input),
            "output" => Ok(Causality::Output),
            "state" | "local" => Ok(Causality::Local),
            other => Err(FmiError::InvalidModel(format!(
                "unknown causality '{other}'"
            ))),
        }
    }
}

/// How a variable may change over simulated time (FMI 2.0 variability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variability {
    /// Never changes (structural constants such as rated power).
    Fixed,
    /// Constant during a simulation but adjustable between runs — the
    /// variability of estimable parameters.
    Tunable,
    /// Piecewise-constant in time; sampled inputs are held between samples.
    Discrete,
    /// Continuously varying; sampled inputs are linearly interpolated.
    Continuous,
}

impl Variability {
    /// Stable string form used by the archive and catalogue.
    pub fn as_str(self) -> &'static str {
        match self {
            Variability::Fixed => "fixed",
            Variability::Tunable => "tunable",
            Variability::Discrete => "discrete",
            Variability::Continuous => "continuous",
        }
    }

    /// Parse the string form.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "fixed" => Ok(Variability::Fixed),
            "tunable" => Ok(Variability::Tunable),
            "discrete" => Ok(Variability::Discrete),
            "continuous" => Ok(Variability::Continuous),
            other => Err(FmiError::InvalidModel(format!(
                "unknown variability '{other}'"
            ))),
        }
    }
}

/// Declared data type of a variable. Simulation is carried out in `f64`
/// regardless; the declared type drives implicit conversions when binding
/// database columns to model variables (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarType {
    /// IEEE-754 double precision.
    Real,
    /// Integer-valued (e.g. number of occupants).
    Integer,
    /// Boolean-valued, encoded 0.0 / 1.0.
    Boolean,
}

impl VarType {
    /// Stable string form used by the archive and catalogue.
    pub fn as_str(self) -> &'static str {
        match self {
            VarType::Real => "real",
            VarType::Integer => "integer",
            VarType::Boolean => "boolean",
        }
    }

    /// Parse the string form.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "real" | "Real" => Ok(VarType::Real),
            "integer" | "Integer" => Ok(VarType::Integer),
            "boolean" | "Boolean" => Ok(VarType::Boolean),
            other => Err(FmiError::InvalidModel(format!("unknown type '{other}'"))),
        }
    }
}

/// One model variable with its FMI attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarVariable {
    /// Variable name, unique within the model.
    pub name: String,
    /// Role of the variable (parameter / input / output / state).
    pub causality: Causality,
    /// Temporal behaviour of the variable.
    pub variability: Variability,
    /// Declared data type.
    pub var_type: VarType,
    /// Initial value (`start` attribute). States and parameters must have
    /// one; inputs may use it as the value before the first sample.
    pub start: Option<f64>,
    /// Lower physical bound, used as the estimation search-space bound.
    pub min: Option<f64>,
    /// Upper physical bound, used as the estimation search-space bound.
    pub max: Option<f64>,
    /// Unit string (informational, e.g. `"degC"`, `"kW"`).
    pub unit: String,
    /// Human-readable description.
    pub description: String,
}

impl ScalarVariable {
    /// Create a variable with the given role and no bounds.
    pub fn new(name: impl Into<String>, causality: Causality, variability: Variability) -> Self {
        ScalarVariable {
            name: name.into(),
            causality,
            variability,
            var_type: VarType::Real,
            start: None,
            min: None,
            max: None,
            unit: String::new(),
            description: String::new(),
        }
    }

    /// Builder-style: set the start value.
    pub fn with_start(mut self, start: f64) -> Self {
        self.start = Some(start);
        self
    }

    /// Builder-style: set min/max bounds.
    pub fn with_bounds(mut self, min: f64, max: f64) -> Self {
        self.min = Some(min);
        self.max = Some(max);
        self
    }

    /// Builder-style: set the unit.
    pub fn with_unit(mut self, unit: impl Into<String>) -> Self {
        self.unit = unit.into();
        self
    }

    /// Builder-style: set the description.
    pub fn with_description(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }

    /// Builder-style: set the declared type.
    pub fn with_type(mut self, t: VarType) -> Self {
        self.var_type = t;
        self
    }

    /// Validate internal consistency (bounds ordering, start within bounds).
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(FmiError::InvalidModel("variable with empty name".into()));
        }
        if let (Some(lo), Some(hi)) = (self.min, self.max) {
            if lo > hi {
                return Err(FmiError::InvalidModel(format!(
                    "variable '{}': min {lo} > max {hi}",
                    self.name
                )));
            }
        }
        if let Some(s) = self.start {
            if !s.is_finite() {
                return Err(FmiError::InvalidModel(format!(
                    "variable '{}': non-finite start value",
                    self.name
                )));
            }
            if let Some(lo) = self.min {
                if s < lo {
                    return Err(FmiError::InvalidModel(format!(
                        "variable '{}': start {s} below min {lo}",
                        self.name
                    )));
                }
            }
            if let Some(hi) = self.max {
                if s > hi {
                    return Err(FmiError::InvalidModel(format!(
                        "variable '{}': start {s} above max {hi}",
                        self.name
                    )));
                }
            }
        }
        Ok(())
    }
}

/// The FMI `DefaultExperiment` element: simulation defaults used when the
/// caller of `fmu_simulate` does not specify a time window (paper §7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefaultExperiment {
    /// Default simulation start time (hours).
    pub start_time: f64,
    /// Default simulation stop time (hours).
    pub stop_time: f64,
    /// Relative tolerance handed to adaptive solvers.
    pub tolerance: f64,
    /// Output (communication) step size in hours.
    pub step_size: f64,
}

impl Default for DefaultExperiment {
    fn default() -> Self {
        DefaultExperiment {
            start_time: 0.0,
            stop_time: 24.0,
            tolerance: 1e-6,
            step_size: 1.0,
        }
    }
}

impl DefaultExperiment {
    /// Validate the experiment definition.
    pub fn validate(&self) -> Result<()> {
        if !(self.start_time.is_finite() && self.stop_time.is_finite()) {
            return Err(FmiError::InvalidModel(
                "default experiment: non-finite time bounds".into(),
            ));
        }
        if self.stop_time <= self.start_time {
            return Err(FmiError::InvalidModel(format!(
                "default experiment: stop time {} not after start time {}",
                self.stop_time, self.start_time
            )));
        }
        if !(self.step_size.is_finite() && self.step_size > 0.0) {
            return Err(FmiError::InvalidModel(
                "default experiment: step size must be positive".into(),
            ));
        }
        if !(self.tolerance.is_finite() && self.tolerance > 0.0) {
            return Err(FmiError::InvalidModel(
                "default experiment: tolerance must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Full model meta-data block — the substrate's equivalent of the
/// `modelDescription.xml` inside an FMU archive.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDescription {
    /// Model (class) name, e.g. `"heatpump"`.
    pub model_name: String,
    /// Free-text description of the physical system.
    pub description: String,
    /// Version tag of the generating tool.
    pub generation_tool: String,
    /// All scalar variables of the model.
    pub variables: Vec<ScalarVariable>,
    /// Simulation defaults.
    pub default_experiment: DefaultExperiment,
}

impl ModelDescription {
    /// Construct and validate a description.
    pub fn new(
        model_name: impl Into<String>,
        variables: Vec<ScalarVariable>,
        default_experiment: DefaultExperiment,
    ) -> Result<Self> {
        let md = ModelDescription {
            model_name: model_name.into(),
            description: String::new(),
            generation_tool: format!("pgfmu-fmi {}", env!("CARGO_PKG_VERSION")),
            variables,
            default_experiment,
        };
        md.validate()?;
        Ok(md)
    }

    /// Validate the whole description: per-variable checks plus uniqueness.
    pub fn validate(&self) -> Result<()> {
        if self.model_name.is_empty() {
            return Err(FmiError::InvalidModel("empty model name".into()));
        }
        self.default_experiment.validate()?;
        let mut seen = std::collections::HashSet::new();
        for v in &self.variables {
            v.validate()?;
            if !seen.insert(v.name.as_str()) {
                return Err(FmiError::InvalidModel(format!(
                    "duplicate variable name '{}'",
                    v.name
                )));
            }
            match v.causality {
                Causality::Parameter => {
                    if v.start.is_none() {
                        return Err(FmiError::InvalidModel(format!(
                            "parameter '{}' has no start value",
                            v.name
                        )));
                    }
                    if !matches!(v.variability, Variability::Fixed | Variability::Tunable) {
                        return Err(FmiError::InvalidModel(format!(
                            "parameter '{}' must be fixed or tunable",
                            v.name
                        )));
                    }
                }
                Causality::Local if v.start.is_none() => {
                    return Err(FmiError::InvalidModel(format!(
                        "state '{}' has no start value",
                        v.name
                    )));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Look up a variable by name.
    pub fn variable(&self, name: &str) -> Result<&ScalarVariable> {
        self.variables
            .iter()
            .find(|v| v.name == name)
            .ok_or_else(|| FmiError::UnknownVariable(name.to_string()))
    }

    /// Mutable lookup by name.
    pub fn variable_mut(&mut self, name: &str) -> Result<&mut ScalarVariable> {
        self.variables
            .iter_mut()
            .find(|v| v.name == name)
            .ok_or_else(|| FmiError::UnknownVariable(name.to_string()))
    }

    /// Names of all variables with the given causality, in declaration order.
    pub fn names_with_causality(&self, c: Causality) -> Vec<&str> {
        self.variables
            .iter()
            .filter(|v| v.causality == c)
            .map(|v| v.name.as_str())
            .collect()
    }

    /// All *tunable* parameters — the default estimation target set used by
    /// `fmu_parest` when the user does not name parameters explicitly.
    /// Fixed parameters (rated power, COP, …) are filtered out exactly the
    /// way pgFMU filters solver-internal parameters away (paper §2).
    pub fn tunable_parameters(&self) -> Vec<&ScalarVariable> {
        self.variables
            .iter()
            .filter(|v| {
                v.causality == Causality::Parameter && v.variability == Variability::Tunable
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str, c: Causality) -> ScalarVariable {
        let v = ScalarVariable::new(name, c, Variability::Continuous);
        match c {
            Causality::Parameter => ScalarVariable {
                variability: Variability::Tunable,
                ..v
            }
            .with_start(1.0),
            Causality::Local => v.with_start(0.0),
            _ => v,
        }
    }

    #[test]
    fn causality_round_trips() {
        for c in [
            Causality::Parameter,
            Causality::Input,
            Causality::Output,
            Causality::Local,
        ] {
            assert_eq!(Causality::parse(c.as_str()).unwrap(), c);
        }
        assert!(Causality::parse("bogus").is_err());
    }

    #[test]
    fn variability_round_trips() {
        for v in [
            Variability::Fixed,
            Variability::Tunable,
            Variability::Discrete,
            Variability::Continuous,
        ] {
            assert_eq!(Variability::parse(v.as_str()).unwrap(), v);
        }
        assert!(Variability::parse("bogus").is_err());
    }

    #[test]
    fn var_type_round_trips() {
        for t in [VarType::Real, VarType::Integer, VarType::Boolean] {
            assert_eq!(VarType::parse(t.as_str()).unwrap(), t);
        }
        assert!(VarType::parse("bogus").is_err());
    }

    #[test]
    fn bounds_validation() {
        let v = ScalarVariable::new("A", Causality::Parameter, Variability::Tunable)
            .with_start(0.0)
            .with_bounds(-10.0, 10.0);
        assert!(v.validate().is_ok());

        let bad = ScalarVariable::new("A", Causality::Parameter, Variability::Tunable)
            .with_start(0.0)
            .with_bounds(5.0, -5.0);
        assert!(bad.validate().is_err());

        let out_of_range = ScalarVariable::new("A", Causality::Parameter, Variability::Tunable)
            .with_start(42.0)
            .with_bounds(-1.0, 1.0);
        assert!(out_of_range.validate().is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let vars = vec![var("x", Causality::Local), var("x", Causality::Output)];
        let err = ModelDescription::new("m", vars, DefaultExperiment::default());
        assert!(err.is_err());
    }

    #[test]
    fn parameter_needs_start() {
        let p = ScalarVariable::new("Cp", Causality::Parameter, Variability::Tunable);
        let err = ModelDescription::new("m", vec![p], DefaultExperiment::default());
        assert!(matches!(err, Err(FmiError::InvalidModel(_))));
    }

    #[test]
    fn default_experiment_validation() {
        let mut de = DefaultExperiment::default();
        assert!(de.validate().is_ok());
        de.stop_time = de.start_time;
        assert!(de.validate().is_err());
        let de2 = DefaultExperiment {
            step_size: 0.0,
            ..DefaultExperiment::default()
        };
        assert!(de2.validate().is_err());
        let de3 = DefaultExperiment {
            tolerance: -1.0,
            ..DefaultExperiment::default()
        };
        assert!(de3.validate().is_err());
    }

    #[test]
    fn tunable_parameter_filtering() {
        let vars = vec![
            var("Cp", Causality::Parameter),
            ScalarVariable::new("P", Causality::Parameter, Variability::Fixed).with_start(7.8),
            var("x", Causality::Local),
            var("u", Causality::Input),
            var("y", Causality::Output),
        ];
        let md = ModelDescription::new("hp", vars, DefaultExperiment::default()).unwrap();
        let tunables: Vec<_> = md.tunable_parameters().iter().map(|v| &v.name).collect();
        assert_eq!(tunables, ["Cp"]);
        assert_eq!(md.names_with_causality(Causality::Input), ["u"]);
        assert_eq!(md.names_with_causality(Causality::Output), ["y"]);
    }

    #[test]
    fn lookup_by_name() {
        let md = ModelDescription::new(
            "m",
            vec![var("x", Causality::Local)],
            DefaultExperiment::default(),
        )
        .unwrap();
        assert!(md.variable("x").is_ok());
        assert!(matches!(
            md.variable("nope"),
            Err(FmiError::UnknownVariable(_))
        ));
    }
}
