//! ODE integrators — the Assimulo/CVode stand-ins.
//!
//! Three methods are provided:
//!
//! * [`SolverKind::Euler`] — explicit Euler, order 1, used as a cheap
//!   baseline and in convergence tests;
//! * [`SolverKind::Rk4`] — the classic fixed-step Runge–Kutta, order 4,
//!   the default work-horse (the paper's models are small and smooth);
//! * [`SolverKind::Rk45`] — adaptive Dormand–Prince 5(4) with PI step-size
//!   control, the stand-in for Assimulo's variable-step solvers.
//!
//! All integrators operate on a caller-supplied right-hand-side closure
//! `f(t, x, dx)` so they are independent of the equation IR; `FmuInstance`
//! wires in input interpolation when building the closure.

use crate::error::{FmiError, Result};

/// Integrator selection plus its tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverKind {
    /// Explicit Euler with the given internal step (hours).
    Euler {
        /// Internal integration step.
        step: f64,
    },
    /// Classic 4th-order Runge–Kutta with the given internal step (hours).
    Rk4 {
        /// Internal integration step.
        step: f64,
    },
    /// Adaptive Dormand–Prince RK45.
    Rk45 {
        /// Relative tolerance.
        rtol: f64,
        /// Absolute tolerance.
        atol: f64,
    },
}

impl Default for SolverKind {
    /// RK4 with a 0.1 h internal step: comfortably accurate for the paper's
    /// thermal models whose fastest time constant is ≈ 2 h.
    fn default() -> Self {
        SolverKind::Rk4 { step: 0.1 }
    }
}

impl SolverKind {
    /// Validate solver configuration.
    pub fn validate(&self) -> Result<()> {
        match *self {
            SolverKind::Euler { step } | SolverKind::Rk4 { step } => {
                if !(step.is_finite() && step > 0.0) {
                    return Err(FmiError::Simulation(format!(
                        "solver step must be positive, got {step}"
                    )));
                }
            }
            SolverKind::Rk45 { rtol, atol } => {
                if !(rtol.is_finite() && rtol > 0.0 && atol.is_finite() && atol > 0.0) {
                    return Err(FmiError::Simulation(format!(
                        "solver tolerances must be positive, got rtol={rtol} atol={atol}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Advance the state `x` from `t0` to `t1` in place.
    ///
    /// `f(t, x, dx)` must fill `dx` with the derivatives. Work buffers are
    /// allocated per call; hot loops that integrate the same system many
    /// times (one `integrate` per output step of a simulation) should hold
    /// a [`Scratch`] and call [`SolverKind::integrate_with`] instead.
    pub fn integrate<F>(&self, f: &mut F, t0: f64, t1: f64, x: &mut [f64]) -> Result<()>
    where
        F: FnMut(f64, &[f64], &mut [f64]),
    {
        self.integrate_with(&mut Scratch::new(x.len()), f, t0, t1, x)
    }

    /// [`SolverKind::integrate`] with caller-owned work buffers: no
    /// allocation happens per call (or per internal step), so a
    /// simulation driver can reuse one [`Scratch`] across every output
    /// step of a trajectory.
    pub fn integrate_with<F>(
        &self,
        scratch: &mut Scratch,
        f: &mut F,
        t0: f64,
        t1: f64,
        x: &mut [f64],
    ) -> Result<()>
    where
        F: FnMut(f64, &[f64], &mut [f64]),
    {
        self.validate()?;
        if !(t1 >= t0) {
            return Err(FmiError::Simulation(format!(
                "integration interval reversed: [{t0}, {t1}]"
            )));
        }
        if t1 == t0 || x.is_empty() {
            return Ok(());
        }
        scratch.resize(x.len());
        match *self {
            SolverKind::Euler { step } => fixed_step(f, t0, t1, x, step, scratch, euler_step),
            SolverKind::Rk4 { step } => fixed_step(f, t0, t1, x, step, scratch, rk4_step),
            SolverKind::Rk45 { rtol, atol } => rk45_adaptive(f, t0, t1, x, rtol, atol, scratch),
        }
    }
}

/// Drive a one-step method over `[t0, t1]` with a fixed internal step,
/// shortening the final step to land exactly on `t1`.
fn fixed_step<F, S>(
    f: &mut F,
    t0: f64,
    t1: f64,
    x: &mut [f64],
    step: f64,
    scratch: &mut Scratch,
    stepper: S,
) -> Result<()>
where
    F: FnMut(f64, &[f64], &mut [f64]),
    S: Fn(&mut F, f64, f64, &mut [f64], &mut Scratch),
{
    let mut t = t0;
    // Guard against degenerate intervals producing huge iteration counts.
    let max_steps = (((t1 - t0) / step).ceil() as usize).saturating_add(2);
    for _ in 0..max_steps {
        if t >= t1 {
            break;
        }
        let h = step.min(t1 - t);
        stepper(f, t, h, x, scratch);
        if x.iter().any(|v| !v.is_finite()) {
            return Err(FmiError::Simulation(format!(
                "state became non-finite at t={t} (step {h}); \
                 the model may be stiff for the chosen solver step"
            )));
        }
        t += h;
    }
    Ok(())
}

/// Reusable integrator work buffers — stage derivatives, trial states and
/// the adaptive method's error estimate. Holding one of these across
/// many [`SolverKind::integrate_with`] calls makes the whole simulation
/// loop allocation-free after the first step.
#[derive(Debug, Default)]
pub struct Scratch {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
    /// Dormand–Prince stage derivatives (adaptive method only; left
    /// empty by the fixed-step methods).
    k7: Vec<Vec<f64>>,
    x5: Vec<f64>,
    err: Vec<f64>,
}

impl Scratch {
    /// Buffers sized for an `n`-dimensional state.
    pub fn new(n: usize) -> Self {
        let mut s = Scratch::default();
        s.resize(n);
        s
    }

    /// Grow (or shrink) the buffers to an `n`-dimensional state; reusing
    /// the same dimension is free.
    pub fn resize(&mut self, n: usize) {
        for b in [
            &mut self.k1,
            &mut self.k2,
            &mut self.k3,
            &mut self.k4,
            &mut self.tmp,
            &mut self.x5,
            &mut self.err,
        ] {
            b.resize(n, 0.0);
        }
        for k in &mut self.k7 {
            k.resize(n, 0.0);
        }
    }
}

fn euler_step<F>(f: &mut F, t: f64, h: f64, x: &mut [f64], s: &mut Scratch)
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    f(t, x, &mut s.k1);
    for (xi, ki) in x.iter_mut().zip(&s.k1) {
        *xi += h * ki;
    }
}

fn rk4_step<F>(f: &mut F, t: f64, h: f64, x: &mut [f64], s: &mut Scratch)
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    let n = x.len();
    f(t, x, &mut s.k1);
    for i in 0..n {
        s.tmp[i] = x[i] + 0.5 * h * s.k1[i];
    }
    f(t + 0.5 * h, &s.tmp, &mut s.k2);
    for i in 0..n {
        s.tmp[i] = x[i] + 0.5 * h * s.k2[i];
    }
    f(t + 0.5 * h, &s.tmp, &mut s.k3);
    for i in 0..n {
        s.tmp[i] = x[i] + h * s.k3[i];
    }
    f(t + h, &s.tmp, &mut s.k4);
    for i in 0..n {
        x[i] += h / 6.0 * (s.k1[i] + 2.0 * s.k2[i] + 2.0 * s.k3[i] + s.k4[i]);
    }
}

/// Dormand–Prince 5(4) coefficients.
#[rustfmt::skip]
mod dp {
    pub const C: [f64; 7] = [0.0, 1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0];
    pub const A: [[f64; 6]; 7] = [
        [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
        [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
        [19372.0 / 6561.0, -25360.0 / 2187.0, 64448.0 / 6561.0, -212.0 / 729.0, 0.0, 0.0],
        [9017.0 / 3168.0, -355.0 / 33.0, 46732.0 / 5247.0, 49.0 / 176.0, -5103.0 / 18656.0, 0.0],
        [35.0 / 384.0, 0.0, 500.0 / 1113.0, 125.0 / 192.0, -2187.0 / 6784.0, 11.0 / 84.0],
    ];
    /// 5th-order solution weights.
    pub const B5: [f64; 7] =
        [35.0 / 384.0, 0.0, 500.0 / 1113.0, 125.0 / 192.0, -2187.0 / 6784.0, 11.0 / 84.0, 0.0];
    /// 4th-order (embedded) solution weights.
    pub const B4: [f64; 7] = [
        5179.0 / 57600.0, 0.0, 7571.0 / 16695.0, 393.0 / 640.0,
        -92097.0 / 339200.0, 187.0 / 2100.0, 1.0 / 40.0,
    ];
}

fn rk45_adaptive<F>(
    f: &mut F,
    t0: f64,
    t1: f64,
    x: &mut [f64],
    rtol: f64,
    atol: f64,
    scratch: &mut Scratch,
) -> Result<()>
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    let n = x.len();
    if scratch.k7.len() != 7 {
        scratch.k7 = (0..7).map(|_| vec![0.0; n]).collect();
    }
    let k = &mut scratch.k7;
    let tmp = &mut scratch.tmp;
    let x5 = &mut scratch.x5;
    let err = &mut scratch.err;

    let span = t1 - t0;
    let mut h = (span / 16.0).clamp(1e-9, 1.0);
    let mut t = t0;
    let max_iters = 2_000_000usize;
    let min_h = span * 1e-13 + 1e-14;

    for iter in 0..max_iters {
        // Terminate when the remaining interval is below step resolution;
        // otherwise float rounding in `t += h` can leave an un-advanceable
        // residual that would be misreported as stiffness.
        if t >= t1 || (t1 - t) <= min_h {
            return Ok(());
        }
        if iter + 1 == max_iters {
            return Err(FmiError::Simulation(
                "adaptive solver exceeded maximum iterations".into(),
            ));
        }
        h = h.min(t1 - t);
        // Evaluate the 7 stages.
        for s in 0..7 {
            for i in 0..n {
                let mut acc = x[i];
                for (j, kj) in k.iter().enumerate().take(s) {
                    acc += h * dp::A[s][j] * kj[i];
                }
                tmp[i] = acc;
            }
            let (before, after) = k.split_at_mut(s);
            let _ = before;
            f(t + dp::C[s] * h, tmp, &mut after[0]);
        }
        // 5th order solution and embedded error estimate.
        let mut max_ratio = 0.0_f64;
        for i in 0..n {
            let mut acc5 = x[i];
            let mut acc4 = x[i];
            for (j, kj) in k.iter().enumerate() {
                acc5 += h * dp::B5[j] * kj[i];
                acc4 += h * dp::B4[j] * kj[i];
            }
            x5[i] = acc5;
            err[i] = acc5 - acc4;
            let scale = atol + rtol * x[i].abs().max(acc5.abs());
            max_ratio = max_ratio.max((err[i] / scale).abs());
        }
        if !x5.iter().all(|v| v.is_finite()) {
            return Err(FmiError::Simulation(format!(
                "state became non-finite at t={t} (adaptive step {h})"
            )));
        }
        if max_ratio <= 1.0 {
            // Accept.
            x.copy_from_slice(x5);
            t += h;
        }
        // PI-ish step-size update with the customary safety factor.
        let factor = if max_ratio > 0.0 {
            (0.9 * max_ratio.powf(-0.2)).clamp(0.2, 5.0)
        } else {
            5.0
        };
        h *= factor;
        if h < min_h {
            return Err(FmiError::Simulation(format!(
                "adaptive solver step underflow at t={t}; problem may be too stiff"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// dx/dt = -x, x(0)=1 → x(t) = e^-t
    fn decay(t: f64, x: &[f64], dx: &mut [f64]) {
        let _ = t;
        dx[0] = -x[0];
    }

    fn solve(kind: SolverKind, t1: f64) -> f64 {
        let mut x = vec![1.0];
        let mut f = decay;
        kind.integrate(&mut f, 0.0, t1, &mut x).unwrap();
        x[0]
    }

    #[test]
    fn euler_converges_with_order_one() {
        let exact = (-1.0_f64).exp();
        let e1 = (solve(SolverKind::Euler { step: 0.1 }, 1.0) - exact).abs();
        let e2 = (solve(SolverKind::Euler { step: 0.05 }, 1.0) - exact).abs();
        let ratio = e1 / e2;
        assert!(
            (1.6..2.6).contains(&ratio),
            "expected ~2x error reduction, got {ratio}"
        );
    }

    #[test]
    fn rk4_converges_with_order_four() {
        let exact = (-1.0_f64).exp();
        let e1 = (solve(SolverKind::Rk4 { step: 0.2 }, 1.0) - exact).abs();
        let e2 = (solve(SolverKind::Rk4 { step: 0.1 }, 1.0) - exact).abs();
        let ratio = e1 / e2;
        assert!(
            (10.0..26.0).contains(&ratio),
            "expected ~16x error reduction, got {ratio}"
        );
    }

    #[test]
    fn rk45_meets_tolerance() {
        let exact = (-5.0_f64).exp();
        let got = solve(
            SolverKind::Rk45 {
                rtol: 1e-8,
                atol: 1e-10,
            },
            5.0,
        );
        assert!(
            (got - exact).abs() < 1e-6,
            "rk45 error too large: {}",
            (got - exact).abs()
        );
    }

    #[test]
    fn two_dimensional_oscillator_conserves_energy_reasonably() {
        // x'' = -x as first-order system; RK4 should track sin/cos closely.
        let mut f = |_t: f64, x: &[f64], dx: &mut [f64]| {
            dx[0] = x[1];
            dx[1] = -x[0];
        };
        let mut x = vec![1.0, 0.0];
        SolverKind::Rk4 { step: 0.01 }
            .integrate(&mut f, 0.0, std::f64::consts::TAU, &mut x)
            .unwrap();
        assert!((x[0] - 1.0).abs() < 1e-6);
        assert!(x[1].abs() < 1e-6);
    }

    #[test]
    fn lti_heat_pump_matches_closed_form() {
        // der(x) = a*x + c with constant input folded into c:
        // x(t) = (x0 + c/a) e^{a t} - c/a
        let a = -1.0 / (1.5 * 1.5); // -1/(R*Cp)
        let c = 7.8 * 2.65 / 1.5 * 0.5 + (-10.0) / (1.5 * 1.5); // B*u + E
        let mut f = |_t: f64, x: &[f64], dx: &mut [f64]| {
            dx[0] = a * x[0] + c;
        };
        let x0 = 20.0;
        let mut x = vec![x0];
        SolverKind::Rk45 {
            rtol: 1e-9,
            atol: 1e-12,
        }
        .integrate(&mut f, 0.0, 3.0, &mut x)
        .unwrap();
        let exact = (x0 + c / a) * (a * 3.0_f64).exp() - c / a;
        assert!((x[0] - exact).abs() < 1e-6, "got {} want {exact}", x[0]);
    }

    #[test]
    fn zero_length_interval_is_noop() {
        let mut x = vec![1.0];
        let mut f = decay;
        SolverKind::default()
            .integrate(&mut f, 2.0, 2.0, &mut x)
            .unwrap();
        assert_eq!(x[0], 1.0);
    }

    #[test]
    fn reversed_interval_errors() {
        let mut x = vec![1.0];
        let mut f = decay;
        let err = SolverKind::default().integrate(&mut f, 1.0, 0.0, &mut x);
        assert!(err.is_err());
    }

    #[test]
    fn invalid_configuration_errors() {
        assert!(SolverKind::Euler { step: 0.0 }.validate().is_err());
        assert!(SolverKind::Rk4 { step: -0.1 }.validate().is_err());
        assert!(SolverKind::Rk45 {
            rtol: 0.0,
            atol: 1e-9
        }
        .validate()
        .is_err());
    }

    #[test]
    fn divergent_model_reports_non_finite_state() {
        // dx/dt = x^2 with x(0)=1 blows up at t=1.
        let mut f = |_t: f64, x: &[f64], dx: &mut [f64]| {
            dx[0] = x[0] * x[0];
        };
        let mut x = vec![1.0];
        let res = SolverKind::Euler { step: 0.01 }.integrate(&mut f, 0.0, 2.0, &mut x);
        assert!(res.is_err());
    }

    #[test]
    fn final_step_lands_exactly_on_t1() {
        // Integrate dx/dt = 1 over [0, 1.05] with step 0.1: result must be
        // exactly the interval length, exercising the shortened last step.
        let mut f = |_t: f64, _x: &[f64], dx: &mut [f64]| {
            dx[0] = 1.0;
        };
        let mut x = vec![0.0];
        SolverKind::Euler { step: 0.1 }
            .integrate(&mut f, 0.0, 1.05, &mut x)
            .unwrap();
        assert!((x[0] - 1.05).abs() < 1e-12);
    }
}
