//! The right-hand side of a model: `der(x) = f(t, x, u, p)` and
//! `y = g(t, x, u, p)` as vectors of [`Expr`] trees.

use crate::error::{FmiError, Result};
use crate::expr::{EvalCtx, Expr};

/// An explicit first-order ODE system with algebraic outputs.
///
/// Dimensions are fixed at construction; evaluation writes into
/// caller-provided buffers so the solver inner loop never allocates.
#[derive(Debug, Clone, PartialEq)]
pub struct EquationSystem {
    n_states: usize,
    n_inputs: usize,
    n_params: usize,
    /// `ders[i]` computes `der(x_i)`.
    ders: Vec<Expr>,
    /// `outs[j]` computes output `y_j`.
    outs: Vec<Expr>,
}

impl EquationSystem {
    /// Build a system, validating that every expression only references
    /// indices within the declared dimensions and that there is exactly one
    /// derivative expression per state.
    pub fn new(
        n_states: usize,
        n_inputs: usize,
        n_params: usize,
        ders: Vec<Expr>,
        outs: Vec<Expr>,
    ) -> Result<Self> {
        if ders.len() != n_states {
            return Err(FmiError::InvalidModel(format!(
                "{} derivative equations for {} states",
                ders.len(),
                n_states
            )));
        }
        for e in ders.iter().chain(outs.iter()) {
            e.check_indices(n_states, n_inputs, n_params)?;
        }
        Ok(EquationSystem {
            n_states,
            n_inputs,
            n_params,
            ders,
            outs,
        })
    }

    /// Number of continuous states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }
    /// Number of inputs.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }
    /// Number of parameters.
    pub fn n_params(&self) -> usize {
        self.n_params
    }
    /// Number of outputs.
    pub fn n_outputs(&self) -> usize {
        self.outs.len()
    }
    /// Derivative expressions (for archive encoding).
    pub fn ders(&self) -> &[Expr] {
        &self.ders
    }
    /// Output expressions (for archive encoding).
    pub fn outs(&self) -> &[Expr] {
        &self.outs
    }

    /// Evaluate `der(x)` into `dx`.
    ///
    /// # Panics
    /// Panics if buffer lengths do not match the declared dimensions — this
    /// indicates a programming error in the solver, not bad user input.
    pub fn derivatives(&self, t: f64, x: &[f64], u: &[f64], p: &[f64], dx: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n_states);
        debug_assert_eq!(u.len(), self.n_inputs);
        debug_assert_eq!(p.len(), self.n_params);
        assert_eq!(dx.len(), self.n_states);
        let ctx = EvalCtx { t, x, u, p };
        for (out, e) in dx.iter_mut().zip(&self.ders) {
            *out = e.eval(&ctx);
        }
    }

    /// Evaluate the outputs into `y`.
    pub fn outputs(&self, t: f64, x: &[f64], u: &[f64], p: &[f64], y: &mut [f64]) {
        assert_eq!(y.len(), self.outs.len());
        let ctx = EvalCtx { t, x, u, p };
        for (out, e) in y.iter_mut().zip(&self.outs) {
            *out = e.eval(&ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// der(x) = A*x + B*u + E ; y = D*u  (the paper's LTI SISO heat pump)
    fn lti() -> EquationSystem {
        EquationSystem::new(
            1,
            1,
            4, // A, B, E, D
            vec![Expr::sum(vec![
                Expr::mul(Expr::Param(0), Expr::State(0)),
                Expr::mul(Expr::Param(1), Expr::Input(0)),
                Expr::Param(2),
            ])],
            vec![Expr::mul(Expr::Param(3), Expr::Input(0))],
        )
        .unwrap()
    }

    #[test]
    fn evaluates_derivatives_and_outputs() {
        let sys = lti();
        let p = [-0.5, 10.0, 2.0, 7.8];
        let mut dx = [0.0];
        let mut y = [0.0];
        sys.derivatives(0.0, &[20.0], &[0.3], &p, &mut dx);
        assert!((dx[0] - (-0.5 * 20.0 + 10.0 * 0.3 + 2.0)).abs() < 1e-12);
        sys.outputs(0.0, &[20.0], &[0.3], &p, &mut y);
        assert!((y[0] - 7.8 * 0.3).abs() < 1e-12);
    }

    #[test]
    fn dimension_checks() {
        // 2 der expressions for 1 state
        let err = EquationSystem::new(1, 0, 0, vec![Expr::Const(0.0), Expr::Const(0.0)], vec![]);
        assert!(err.is_err());
        // reference to a missing input
        let err = EquationSystem::new(1, 0, 0, vec![Expr::Input(0)], vec![]);
        assert!(err.is_err());
        // reference to a missing param in an output
        let err = EquationSystem::new(1, 0, 1, vec![Expr::Const(0.0)], vec![Expr::Param(1)]);
        assert!(err.is_err());
    }

    #[test]
    fn zero_state_system_is_allowed() {
        // purely algebraic model: y = 2*u
        let sys = EquationSystem::new(
            0,
            1,
            0,
            vec![],
            vec![Expr::mul(Expr::c(2.0), Expr::Input(0))],
        )
        .unwrap();
        let mut y = [0.0];
        sys.outputs(0.0, &[], &[21.0], &[], &mut y);
        assert_eq!(y[0], 42.0);
    }

    #[test]
    fn accessors() {
        let sys = lti();
        assert_eq!(sys.n_states(), 1);
        assert_eq!(sys.n_inputs(), 1);
        assert_eq!(sys.n_params(), 4);
        assert_eq!(sys.n_outputs(), 1);
        assert_eq!(sys.ders().len(), 1);
        assert_eq!(sys.outs().len(), 1);
    }
}
