//! Property-based tests for the FMI substrate: archive codec round-trips,
//! input-sampling invariants and solver sanity on random linear systems.

use proptest::prelude::*;

use pgfmu_fmi::archive;
use pgfmu_fmi::expr::{BinOp, Expr, UnaryOp};
use pgfmu_fmi::input::{InputSeries, Interpolation};
use pgfmu_fmi::model_description::{
    Causality, DefaultExperiment, ModelDescription, ScalarVariable, Variability,
};
use pgfmu_fmi::solver::SolverKind;
use pgfmu_fmi::system::EquationSystem;
use pgfmu_fmi::Fmu;

const N_STATES: usize = 2;
const N_INPUTS: usize = 2;
const N_PARAMS: usize = 3;

fn arb_unary() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::Neg),
        Just(UnaryOp::Abs),
        Just(UnaryOp::Sin),
        Just(UnaryOp::Cos),
        Just(UnaryOp::Tan),
        Just(UnaryOp::Exp),
        Just(UnaryOp::Ln),
        Just(UnaryOp::Sqrt),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Pow),
        Just(BinOp::Min),
        Just(BinOp::Max),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

/// Random expression trees valid for the fixed dimensions above.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1e6f64..1e6).prop_map(Expr::Const),
        Just(Expr::Time),
        (0..N_STATES).prop_map(Expr::State),
        (0..N_INPUTS).prop_map(Expr::Input),
        (0..N_PARAMS).prop_map(Expr::Param),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (arb_unary(), inner.clone()).prop_map(|(op, a)| Expr::Unary(op, Box::new(a))),
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Expr::If(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn arb_fmu() -> impl Strategy<Value = Fmu> {
    (
        proptest::collection::vec(arb_expr(), N_STATES),
        proptest::collection::vec(arb_expr(), 0..3),
        "[a-z]{1,12}",
    )
        .prop_map(|(ders, outs, name)| {
            let mut vars = Vec::new();
            for i in 0..N_PARAMS {
                vars.push(
                    ScalarVariable::new(
                        format!("p{i}"),
                        Causality::Parameter,
                        Variability::Tunable,
                    )
                    .with_start(i as f64)
                    .with_bounds(-100.0, 100.0),
                );
            }
            for i in 0..N_STATES {
                vars.push(
                    ScalarVariable::new(format!("x{i}"), Causality::Local, Variability::Continuous)
                        .with_start(0.5 * i as f64),
                );
            }
            for i in 0..N_INPUTS {
                vars.push(ScalarVariable::new(
                    format!("u{i}"),
                    Causality::Input,
                    Variability::Continuous,
                ));
            }
            for i in 0..outs.len() {
                vars.push(ScalarVariable::new(
                    format!("y{i}"),
                    Causality::Output,
                    Variability::Continuous,
                ));
            }
            let md = ModelDescription::new(name, vars, DefaultExperiment::default()).unwrap();
            let sys = EquationSystem::new(N_STATES, N_INPUTS, N_PARAMS, ders, outs).unwrap();
            Fmu::new(md, sys).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity on arbitrary valid FMUs.
    #[test]
    fn archive_round_trip(fmu in arb_fmu()) {
        let bytes = archive::encode(&fmu);
        let back = archive::decode(&bytes).unwrap();
        prop_assert_eq!(back, fmu);
    }

    /// A decoded archive never panics on arbitrary byte mutations — it
    /// either round-trips (mutation hit a redundant byte) or errors.
    #[test]
    fn archive_survives_fuzzing(fmu in arb_fmu(), idx in 0usize..4096, bit in 0u8..8) {
        let mut bytes = archive::encode(&fmu);
        let n = bytes.len();
        bytes[idx % n] ^= 1 << bit;
        let _ = archive::decode(&bytes); // must not panic
    }

    /// Hold interpolation always returns one of the sample values.
    #[test]
    fn hold_sampling_returns_sample_values(
        values in proptest::collection::vec(-1e3f64..1e3, 1..20),
        t in -10.0f64..40.0,
    ) {
        let times: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
        let s = InputSeries::new("u", times, values.clone(), Interpolation::Hold).unwrap();
        let v = s.sample(t);
        prop_assert!(values.contains(&v));
    }

    /// Linear interpolation stays within the convex hull of neighbours.
    #[test]
    fn linear_sampling_bounded_by_extremes(
        values in proptest::collection::vec(-1e3f64..1e3, 2..20),
        t in -10.0f64..40.0,
    ) {
        let times: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let s = InputSeries::new("u", times, values, Interpolation::Linear).unwrap();
        let v = s.sample(t);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    /// On the scalar linear ODE x' = a x (a <= 0), every solver stays
    /// within the initial bound |x(t)| <= |x0| (stability preserved when
    /// the step resolves the time constant).
    #[test]
    fn solvers_preserve_stability_of_decay(
        a in -2.0f64..0.0,
        x0 in -50.0f64..50.0,
        span in 0.1f64..20.0,
    ) {
        for kind in [
            SolverKind::Euler { step: 0.05 },
            SolverKind::Rk4 { step: 0.1 },
            SolverKind::Rk45 { rtol: 1e-6, atol: 1e-9 },
        ] {
            let mut x = vec![x0];
            let mut f = |_t: f64, xs: &[f64], dx: &mut [f64]| { dx[0] = a * xs[0]; };
            kind.integrate(&mut f, 0.0, span, &mut x).unwrap();
            prop_assert!(x[0].abs() <= x0.abs() + 1e-9,
                "{kind:?}: |x|={} grew past |x0|={}", x[0].abs(), x0.abs());
        }
    }

    /// RK45 matches the closed-form solution of x' = a x + b across the
    /// sampled coefficient range.
    #[test]
    fn rk45_matches_closed_form_affine(
        a in -1.0f64..-0.01,
        b in -5.0f64..5.0,
        x0 in -30.0f64..30.0,
    ) {
        let mut x = vec![x0];
        let mut f = |_t: f64, xs: &[f64], dx: &mut [f64]| { dx[0] = a * xs[0] + b; };
        SolverKind::Rk45 { rtol: 1e-9, atol: 1e-12 }
            .integrate(&mut f, 0.0, 5.0, &mut x)
            .unwrap();
        let exact = (x0 + b / a) * (a * 5.0).exp() - b / a;
        prop_assert!((x[0] - exact).abs() < 1e-5,
            "rk45 {} vs exact {exact}", x[0]);
    }
}
