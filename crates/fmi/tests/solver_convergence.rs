//! Solver convergence tests against the HP1 analytic solution, and
//! archive persistence round-trips through the filesystem.
//!
//! With a constant power rating `u`, HP1's dynamics
//! `der(x) = (θa − x)/(R·Cp) + P·η·u/Cp` form a linear ODE with rate
//! `a = 1/(R·Cp)` and equilibrium `x∞ = θa + R·P·η·u`, so
//! `x(t) = x∞ + (x0 − x∞)·exp(−a·t)` exactly.

use std::sync::Arc;

use pgfmu_fmi::solver::SolverKind;
use pgfmu_fmi::{archive, builtin, InputSeries, InputSet, Interpolation, SimulationOptions};

const U_CONST: f64 = 0.6;
const X0: f64 = 20.75;
const SPAN: f64 = 10.0;

fn analytic(t: f64) -> f64 {
    let a = 1.0 / (builtin::HP_TRUE_R * builtin::HP_TRUE_CP);
    let x_inf = builtin::HP_OUTDOOR_TEMP
        + builtin::HP_TRUE_R * builtin::HP_RATED_POWER * builtin::HP_COP * U_CONST;
    x_inf + (X0 - x_inf) * (-a * t).exp()
}

/// HP1's right-hand side with `u` held constant, for direct integration.
fn hp1_rhs(_t: f64, x: &[f64], dx: &mut [f64]) {
    dx[0] = (builtin::HP_OUTDOOR_TEMP - x[0]) / (builtin::HP_TRUE_R * builtin::HP_TRUE_CP)
        + builtin::HP_RATED_POWER * builtin::HP_COP * U_CONST / builtin::HP_TRUE_CP;
}

fn final_error(kind: SolverKind) -> f64 {
    let mut x = vec![X0];
    kind.integrate(&mut hp1_rhs, 0.0, SPAN, &mut x).unwrap();
    (x[0] - analytic(SPAN)).abs()
}

#[test]
fn solver_error_ordering_euler_rk4_rk45() {
    let euler = final_error(SolverKind::Euler { step: 0.5 });
    let rk4 = final_error(SolverKind::Rk4 { step: 0.5 });
    let rk45 = final_error(SolverKind::Rk45 {
        rtol: 1e-9,
        atol: 1e-12,
    });
    assert!(
        euler > rk4 && rk4 > rk45,
        "expected euler({euler:e}) > rk4({rk4:e}) > rk45({rk45:e})"
    );
    // Sanity on magnitudes: all solvers track the solution, Euler coarsely.
    assert!(euler < 0.5, "euler diverged: {euler}");
    assert!(rk4 < 1e-3, "rk4 too inaccurate: {rk4}");
    assert!(rk45 < 1e-7, "rk45 too inaccurate: {rk45}");
}

#[test]
fn euler_is_first_order() {
    let coarse = final_error(SolverKind::Euler { step: 0.4 });
    let fine = final_error(SolverKind::Euler { step: 0.2 });
    let ratio = coarse / fine;
    assert!(
        (1.5..3.0).contains(&ratio),
        "halving the step should roughly halve the error; got ratio {ratio} \
         (coarse {coarse:e}, fine {fine:e})"
    );
}

#[test]
fn rk4_is_fourth_order() {
    let coarse = final_error(SolverKind::Rk4 { step: 1.0 });
    let fine = final_error(SolverKind::Rk4 { step: 0.5 });
    assert!(
        fine > 1e-13,
        "fine error {fine:e} too close to machine precision for a ratio test"
    );
    let ratio = coarse / fine;
    assert!(
        (8.0..40.0).contains(&ratio),
        "halving the step should cut the error ~16x; got ratio {ratio} \
         (coarse {coarse:e}, fine {fine:e})"
    );
}

#[test]
fn rk45_tolerance_ordering() {
    let tolerances = [1e-3, 1e-6, 1e-9];
    let errors: Vec<f64> = tolerances
        .iter()
        .map(|&rtol| {
            final_error(SolverKind::Rk45 {
                rtol,
                atol: rtol * 1e-3,
            })
        })
        .collect();
    for w in errors.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-12,
            "tightening rtol must not increase error: {errors:?}"
        );
    }
    assert!(
        errors[2] < 1e-7,
        "rk45@1e-9 too inaccurate: {:e}",
        errors[2]
    );
}

#[test]
fn full_fmu_simulation_matches_analytic_solution() {
    let fmu = Arc::new(builtin::hp1());
    let inst = fmu.instantiate();
    let series = InputSeries::new(
        "u",
        vec![0.0, SPAN],
        vec![U_CONST, U_CONST],
        Interpolation::Hold,
    )
    .unwrap();
    let inputs = InputSet::bind(&["u"], vec![series]).unwrap();
    let opts = SimulationOptions {
        start: Some(0.0),
        stop: Some(SPAN),
        output_step: Some(1.0),
        solver: SolverKind::Rk45 {
            rtol: 1e-9,
            atol: 1e-12,
        },
    };
    let result = inst.simulate(&inputs, &opts).unwrap();
    let xs = result.series("x").expect("state series present");
    for (&t, &x) in result.times().iter().zip(xs) {
        assert!(
            (x - analytic(t)).abs() < 1e-6,
            "at t={t}: simulated {x} vs analytic {}",
            analytic(t)
        );
    }
    // y = P·u on the whole grid.
    let ys = result.series("y").expect("output series present");
    for &y in ys {
        assert!((y - builtin::HP_RATED_POWER * U_CONST).abs() < 1e-9);
    }
}

// --- archive persistence ----------------------------------------------------

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pgfmu-fmi-test-{}-{name}", std::process::id()))
}

#[test]
fn write_to_path_then_read_round_trips_all_builtins() {
    for (label, fmu) in [
        ("hp0", builtin::hp0()),
        ("hp1", builtin::hp1()),
        ("classroom", builtin::classroom()),
    ] {
        let path = temp_path(&format!("{label}.fmu"));
        archive::write_to_path(&fmu, &path).unwrap();
        let back = archive::read_from_path(&path).unwrap();
        assert_eq!(back, fmu, "{label} did not round-trip");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn reloaded_fmu_simulates_identically() {
    let path = temp_path("hp1-sim.fmu");
    let original = Arc::new(builtin::hp1());
    archive::write_to_path(&original, &path).unwrap();
    let reloaded = Arc::new(archive::read_from_path(&path).unwrap());
    std::fs::remove_file(&path).ok();

    let series = InputSeries::new(
        "u",
        vec![0.0, SPAN],
        vec![U_CONST, U_CONST],
        Interpolation::Hold,
    )
    .unwrap();
    let inputs = InputSet::bind(&["u"], vec![series]).unwrap();
    let opts = SimulationOptions {
        start: Some(0.0),
        stop: Some(SPAN),
        output_step: Some(0.5),
        ..Default::default()
    };
    let a = original.instantiate().simulate(&inputs, &opts).unwrap();
    let b = reloaded.instantiate().simulate(&inputs, &opts).unwrap();
    assert_eq!(a, b, "decoded model must be simulation-identical");
}

#[test]
fn read_from_missing_path_is_an_error() {
    let err = archive::read_from_path(&temp_path("does-not-exist.fmu"));
    assert!(err.is_err());
}
