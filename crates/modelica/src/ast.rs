//! Abstract syntax tree for the Modelica subset.

/// Component prefix determining the variable's FMI causality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prefix {
    /// `parameter Real …`
    Parameter,
    /// `input Real …`
    Input,
    /// `output Real …`
    Output,
    /// Plain `Real …` — a candidate state variable.
    None,
}

/// Declared Modelica type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeName {
    /// `Real`
    Real,
    /// `Integer`
    Integer,
    /// `Boolean`
    Boolean,
}

/// Expression AST (name-based; lowered to index-based IR by the compiler).
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Numeric literal.
    Number(f64),
    /// `true` / `false` literal (lowered to 1.0 / 0.0).
    Bool(bool),
    /// Variable reference or the builtin `time`.
    Ident(String),
    /// Unary minus.
    Neg(Box<AstExpr>),
    /// `not e`
    Not(Box<AstExpr>),
    /// Binary arithmetic / comparison / logical operation.
    Binary(AstBinOp, Box<AstExpr>, Box<AstExpr>),
    /// Function call such as `sin(x)`, `max(a, b)`, `der(x)`.
    Call(String, Vec<AstExpr>),
    /// `if cond then a else b`
    If(Box<AstExpr>, Box<AstExpr>, Box<AstExpr>),
}

/// Binary operators of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `^`
    Pow,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `<>`
    Ne,
    /// `and`
    And,
    /// `or`
    Or,
}

/// One component (variable) declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// `discrete` prefix given (zero-order-hold input sampling).
    pub discrete: bool,
    /// Causality prefix.
    pub prefix: Prefix,
    /// Declared type.
    pub type_name: TypeName,
    /// Component name.
    pub name: String,
    /// Attribute modifications, e.g. `(start = 20, min = 0, max = 1)`.
    /// `unit = "degC"` is carried as a `Call("unit-string", …)`-free
    /// special case: unit attributes are stored separately.
    pub attributes: Vec<(String, AstExpr)>,
    /// Unit attribute when given as a string (`unit = "degC"`).
    pub unit: Option<String>,
    /// Declaration binding (`= expr`).
    pub binding: Option<AstExpr>,
    /// Trailing description string.
    pub description: Option<String>,
    /// Source line of the declaration (for diagnostics).
    pub line: u32,
}

/// One equation in the `equation` section.
#[derive(Debug, Clone, PartialEq)]
pub enum Equation {
    /// `der(x) = expr;`
    Der {
        /// State variable name.
        state: String,
        /// Right-hand side.
        rhs: AstExpr,
        /// Source line.
        line: u32,
    },
    /// `y = expr;` — output (or algebraic alias) assignment.
    Assign {
        /// Assigned variable name.
        target: String,
        /// Right-hand side.
        rhs: AstExpr,
        /// Source line.
        line: u32,
    },
}

/// The `annotation(experiment(…))` payload.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExperimentAnnotation {
    /// `StartTime`
    pub start_time: Option<f64>,
    /// `StopTime`
    pub stop_time: Option<f64>,
    /// `Tolerance`
    pub tolerance: Option<f64>,
    /// `Interval` (output step)
    pub interval: Option<f64>,
}

/// A parsed `model … end …;` unit.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelAst {
    /// Model name.
    pub name: String,
    /// Component declarations in source order.
    pub components: Vec<Component>,
    /// Equations in source order.
    pub equations: Vec<Equation>,
    /// Optional experiment annotation.
    pub experiment: ExperimentAnnotation,
}
