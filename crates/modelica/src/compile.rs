//! Lowering from the Modelica AST to the `pgfmu-fmi` equation IR.
//!
//! Classification rules:
//!
//! * `parameter` components become FMI parameters. A parameter declared
//!   with **both** `min` and `max` attributes is *tunable* (an estimation
//!   target for `fmu_parest`); one without bounds is *fixed*. This mirrors
//!   pgFMU's meta-data-driven filtering of estimable parameters (paper §2:
//!   solver-internal and structural constants must not be estimated).
//! * `input` components become FMI inputs. `Real` inputs are continuous
//!   (linear interpolation); `Integer`/`Boolean` inputs are discrete
//!   (zero-order hold).
//! * `output` components become FMI outputs; each needs exactly one
//!   assignment equation.
//! * plain `Real` components are states; each needs exactly one `der()`
//!   equation.
//!
//! Parameter bindings are constant-folded left-to-right, so
//! `parameter Real A = -1/(R*Cp);` resolves when `R` and `Cp` were
//! declared earlier in the file.

use std::collections::HashMap;

use pgfmu_fmi::{
    BinOp, Causality, DefaultExperiment, Expr, Fmu, ModelDescription, ScalarVariable, UnaryOp,
    VarType, Variability,
};

use crate::ast::{AstBinOp, AstExpr, Component, Equation, ModelAst, Prefix, TypeName};
use crate::error::{ModelicaError, Result};

/// How an identifier resolves during lowering.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Binding {
    Param(usize),
    Input(usize),
    State(usize),
    Output,
}

/// Compile a parsed model into an FMU.
pub fn compile_model(model: &ModelAst) -> Result<Fmu> {
    // ---- classify components ----------------------------------------------
    let mut params: Vec<&Component> = Vec::new();
    let mut inputs: Vec<&Component> = Vec::new();
    let mut outputs: Vec<&Component> = Vec::new();
    let mut states: Vec<&Component> = Vec::new();
    for c in &model.components {
        match c.prefix {
            Prefix::Parameter => params.push(c),
            Prefix::Input => inputs.push(c),
            Prefix::Output => outputs.push(c),
            Prefix::None => states.push(c),
        }
    }

    // ---- constant-fold parameter bindings ---------------------------------
    let mut param_values: HashMap<&str, f64> = HashMap::new();
    let mut param_defaults: Vec<f64> = Vec::with_capacity(params.len());
    for c in &params {
        let value = match &c.binding {
            Some(expr) => fold_const(expr, &param_values).ok_or_else(|| {
                ModelicaError::new(
                    c.line,
                    1,
                    format!(
                        "parameter '{}': binding must be constant over literals \
                         and previously declared parameters",
                        c.name
                    ),
                )
            })?,
            None => attr_value(c, "start", &param_values)?.unwrap_or(0.0),
        };
        param_values.insert(c.name.as_str(), value);
        param_defaults.push(value);
    }

    // ---- name resolution table ---------------------------------------------
    let mut bindings: HashMap<&str, Binding> = HashMap::new();
    for (i, c) in params.iter().enumerate() {
        insert_unique(&mut bindings, c, Binding::Param(i))?;
    }
    for (i, c) in inputs.iter().enumerate() {
        insert_unique(&mut bindings, c, Binding::Input(i))?;
    }
    for (i, c) in states.iter().enumerate() {
        insert_unique(&mut bindings, c, Binding::State(i))?;
    }
    for c in &outputs {
        insert_unique(&mut bindings, c, Binding::Output)?;
    }

    // ---- lower equations ----------------------------------------------------
    let mut ders: Vec<Option<Expr>> = vec![None; states.len()];
    let mut outs: Vec<Option<Expr>> = vec![None; outputs.len()];
    for eq in &model.equations {
        match eq {
            Equation::Der { state, rhs, line } => {
                let idx = states
                    .iter()
                    .position(|c| c.name == *state)
                    .ok_or_else(|| {
                        ModelicaError::new(
                            *line,
                            1,
                            format!("der() target '{state}' is not a state variable"),
                        )
                    })?;
                if ders[idx].is_some() {
                    return Err(ModelicaError::new(
                        *line,
                        1,
                        format!("state '{state}' has more than one der() equation"),
                    ));
                }
                ders[idx] = Some(lower(rhs, &bindings, *line)?);
            }
            Equation::Assign { target, rhs, line } => {
                let idx = outputs
                    .iter()
                    .position(|c| c.name == *target)
                    .ok_or_else(|| {
                        ModelicaError::new(
                            *line,
                            1,
                            format!(
                                "assignment target '{target}' is not an output \
                                 (only `der(state) = …` and `output = …` equations \
                                 are supported)"
                            ),
                        )
                    })?;
                if outs[idx].is_some() {
                    return Err(ModelicaError::new(
                        *line,
                        1,
                        format!("output '{target}' is assigned more than once"),
                    ));
                }
                outs[idx] = Some(lower(rhs, &bindings, *line)?);
            }
        }
    }
    let ders: Vec<Expr> = ders
        .into_iter()
        .zip(&states)
        .map(|(d, c)| {
            d.ok_or_else(|| {
                ModelicaError::new(
                    c.line,
                    1,
                    format!("state '{}' has no der() equation", c.name),
                )
            })
        })
        .collect::<Result<_>>()?;
    let outs: Vec<Expr> = outs
        .into_iter()
        .zip(&outputs)
        .map(|(o, c)| {
            o.ok_or_else(|| {
                ModelicaError::new(
                    c.line,
                    1,
                    format!("output '{}' has no defining equation", c.name),
                )
            })
        })
        .collect::<Result<_>>()?;

    // ---- build metadata ------------------------------------------------------
    let mut variables = Vec::with_capacity(model.components.len());
    for (i, c) in params.iter().enumerate() {
        let min = attr_value(c, "min", &param_values)?;
        let max = attr_value(c, "max", &param_values)?;
        let variability = if min.is_some() && max.is_some() {
            Variability::Tunable
        } else {
            Variability::Fixed
        };
        variables.push(scalar(
            c,
            Causality::Parameter,
            variability,
            Some(param_defaults[i]),
            min,
            max,
        ));
    }
    for c in &states {
        let start = attr_value(c, "start", &param_values)?;
        let min = attr_value(c, "min", &param_values)?;
        let max = attr_value(c, "max", &param_values)?;
        variables.push(scalar(
            c,
            Causality::Local,
            Variability::Continuous,
            // States default to 0 when no start attribute is given, the
            // Modelica default for Real.
            Some(start.unwrap_or(0.0)),
            min,
            max,
        ));
    }
    for c in &inputs {
        let variability = match c.type_name {
            TypeName::Real if !c.discrete => Variability::Continuous,
            _ => Variability::Discrete,
        };
        let start = attr_value(c, "start", &param_values)?;
        let min = attr_value(c, "min", &param_values)?;
        let max = attr_value(c, "max", &param_values)?;
        variables.push(scalar(c, Causality::Input, variability, start, min, max));
    }
    for c in &outputs {
        variables.push(scalar(
            c,
            Causality::Output,
            Variability::Continuous,
            None,
            None,
            None,
        ));
    }

    let exp = &model.experiment;
    let default_experiment = DefaultExperiment {
        start_time: exp.start_time.unwrap_or(0.0),
        stop_time: exp.stop_time.unwrap_or(24.0),
        tolerance: exp.tolerance.unwrap_or(1e-6),
        step_size: exp.interval.unwrap_or(1.0),
    };

    let md = ModelDescription::new(model.name.clone(), variables, default_experiment)
        .map_err(|e| ModelicaError::new(0, 0, e.to_string()))?;
    let system =
        pgfmu_fmi::EquationSystem::new(states.len(), inputs.len(), params.len(), ders, outs)
            .map_err(|e| ModelicaError::new(0, 0, e.to_string()))?;
    Fmu::new(md, system).map_err(|e| ModelicaError::new(0, 0, e.to_string()))
}

fn insert_unique<'m>(
    bindings: &mut HashMap<&'m str, Binding>,
    c: &'m Component,
    b: Binding,
) -> Result<()> {
    if bindings.insert(c.name.as_str(), b).is_some() {
        return Err(ModelicaError::new(
            c.line,
            1,
            format!("duplicate component name '{}'", c.name),
        ));
    }
    Ok(())
}

fn scalar(
    c: &Component,
    causality: Causality,
    variability: Variability,
    start: Option<f64>,
    min: Option<f64>,
    max: Option<f64>,
) -> ScalarVariable {
    ScalarVariable {
        name: c.name.clone(),
        causality,
        variability,
        var_type: match c.type_name {
            TypeName::Real => VarType::Real,
            TypeName::Integer => VarType::Integer,
            TypeName::Boolean => VarType::Boolean,
        },
        start,
        min,
        max,
        unit: c.unit.clone().unwrap_or_default(),
        description: c.description.clone().unwrap_or_default(),
    }
}

/// Look up and constant-fold a declaration attribute.
fn attr_value(c: &Component, key: &str, params: &HashMap<&str, f64>) -> Result<Option<f64>> {
    match c.attributes.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, expr)) => fold_const(expr, params).map(Some).ok_or_else(|| {
            ModelicaError::new(
                c.line,
                1,
                format!("attribute '{key}' of '{}' must be constant", c.name),
            )
        }),
    }
}

/// Constant folding over literals and already-resolved parameters.
fn fold_const(e: &AstExpr, params: &HashMap<&str, f64>) -> Option<f64> {
    match e {
        AstExpr::Number(v) => Some(*v),
        AstExpr::Bool(b) => Some(f64::from(*b)),
        AstExpr::Ident(name) => params.get(name.as_str()).copied(),
        AstExpr::Neg(a) => fold_const(a, params).map(|v| -v),
        AstExpr::Not(a) => fold_const(a, params).map(|v| if v > 0.5 { 0.0 } else { 1.0 }),
        AstExpr::Binary(op, a, b) => {
            let a = fold_const(a, params)?;
            let b = fold_const(b, params)?;
            Some(match op {
                AstBinOp::Add => a + b,
                AstBinOp::Sub => a - b,
                AstBinOp::Mul => a * b,
                AstBinOp::Div => a / b,
                AstBinOp::Pow => a.powf(b),
                AstBinOp::Lt => f64::from(a < b),
                AstBinOp::Le => f64::from(a <= b),
                AstBinOp::Gt => f64::from(a > b),
                AstBinOp::Ge => f64::from(a >= b),
                AstBinOp::EqEq => f64::from(a == b),
                AstBinOp::Ne => f64::from(a != b),
                AstBinOp::And => f64::from(a > 0.5 && b > 0.5),
                AstBinOp::Or => f64::from(a > 0.5 || b > 0.5),
            })
        }
        AstExpr::Call(name, args) => {
            let vals: Option<Vec<f64>> = args.iter().map(|a| fold_const(a, params)).collect();
            let vals = vals?;
            match (name.as_str(), vals.as_slice()) {
                ("sin", [a]) => Some(a.sin()),
                ("cos", [a]) => Some(a.cos()),
                ("tan", [a]) => Some(a.tan()),
                ("exp", [a]) => Some(a.exp()),
                ("log", [a]) | ("ln", [a]) => Some(a.ln()),
                ("sqrt", [a]) => Some(a.sqrt()),
                ("abs", [a]) => Some(a.abs()),
                ("min", [a, b]) => Some(a.min(*b)),
                ("max", [a, b]) => Some(a.max(*b)),
                _ => None,
            }
        }
        AstExpr::If(c, a, b) => {
            let c = fold_const(c, params)?;
            if c > 0.5 {
                fold_const(a, params)
            } else {
                fold_const(b, params)
            }
        }
    }
}

/// Lower an AST expression to the index-based IR.
fn lower(e: &AstExpr, bindings: &HashMap<&str, Binding>, line: u32) -> Result<Expr> {
    Ok(match e {
        AstExpr::Number(v) => Expr::Const(*v),
        AstExpr::Bool(b) => Expr::Const(f64::from(*b)),
        AstExpr::Ident(name) => {
            if name == "time" {
                Expr::Time
            } else {
                match bindings.get(name.as_str()) {
                    Some(Binding::Param(i)) => Expr::Param(*i),
                    Some(Binding::Input(i)) => Expr::Input(*i),
                    Some(Binding::State(i)) => Expr::State(*i),
                    Some(Binding::Output) => {
                        return Err(ModelicaError::new(
                            line,
                            1,
                            format!(
                                "output '{name}' may not be referenced in an equation \
                                 (inline its defining expression instead)"
                            ),
                        ))
                    }
                    None => {
                        return Err(ModelicaError::new(
                            line,
                            1,
                            format!("unknown identifier '{name}'"),
                        ))
                    }
                }
            }
        }
        AstExpr::Neg(a) => Expr::Unary(UnaryOp::Neg, Box::new(lower(a, bindings, line)?)),
        AstExpr::Not(a) => Expr::sub(Expr::c(1.0), lower(a, bindings, line)?),
        AstExpr::Binary(op, a, b) => {
            let a = lower(a, bindings, line)?;
            let b = lower(b, bindings, line)?;
            match op {
                AstBinOp::Add => Expr::Binary(BinOp::Add, Box::new(a), Box::new(b)),
                AstBinOp::Sub => Expr::Binary(BinOp::Sub, Box::new(a), Box::new(b)),
                AstBinOp::Mul => Expr::Binary(BinOp::Mul, Box::new(a), Box::new(b)),
                AstBinOp::Div => Expr::Binary(BinOp::Div, Box::new(a), Box::new(b)),
                AstBinOp::Pow => Expr::Binary(BinOp::Pow, Box::new(a), Box::new(b)),
                AstBinOp::Lt => Expr::Binary(BinOp::Lt, Box::new(a), Box::new(b)),
                AstBinOp::Le => Expr::Binary(BinOp::Le, Box::new(a), Box::new(b)),
                AstBinOp::Gt => Expr::Binary(BinOp::Gt, Box::new(a), Box::new(b)),
                AstBinOp::Ge => Expr::Binary(BinOp::Ge, Box::new(a), Box::new(b)),
                // eq := (a<=b) AND (a>=b); truth values are 0/1 so Min/Max
                // implement boolean algebra exactly.
                AstBinOp::EqEq => Expr::Binary(
                    BinOp::Min,
                    Box::new(Expr::Binary(
                        BinOp::Le,
                        Box::new(a.clone()),
                        Box::new(b.clone()),
                    )),
                    Box::new(Expr::Binary(BinOp::Ge, Box::new(a), Box::new(b))),
                ),
                AstBinOp::Ne => Expr::sub(
                    Expr::c(1.0),
                    Expr::Binary(
                        BinOp::Min,
                        Box::new(Expr::Binary(
                            BinOp::Le,
                            Box::new(a.clone()),
                            Box::new(b.clone()),
                        )),
                        Box::new(Expr::Binary(BinOp::Ge, Box::new(a), Box::new(b))),
                    ),
                ),
                AstBinOp::And => Expr::Binary(BinOp::Min, Box::new(a), Box::new(b)),
                AstBinOp::Or => Expr::Binary(BinOp::Max, Box::new(a), Box::new(b)),
            }
        }
        AstExpr::Call(name, args) => {
            let unary = |op: UnaryOp, args: &[AstExpr]| -> Result<Expr> {
                if args.len() != 1 {
                    return Err(ModelicaError::new(
                        line,
                        1,
                        format!("{name}() takes exactly one argument"),
                    ));
                }
                Ok(Expr::Unary(op, Box::new(lower(&args[0], bindings, line)?)))
            };
            match name.as_str() {
                "sin" => unary(UnaryOp::Sin, args)?,
                "cos" => unary(UnaryOp::Cos, args)?,
                "tan" => unary(UnaryOp::Tan, args)?,
                "exp" => unary(UnaryOp::Exp, args)?,
                "log" | "ln" => unary(UnaryOp::Ln, args)?,
                "sqrt" => unary(UnaryOp::Sqrt, args)?,
                "abs" => unary(UnaryOp::Abs, args)?,
                "min" | "max" => {
                    if args.len() != 2 {
                        return Err(ModelicaError::new(
                            line,
                            1,
                            format!("{name}() takes exactly two arguments"),
                        ));
                    }
                    let op = if name == "min" {
                        BinOp::Min
                    } else {
                        BinOp::Max
                    };
                    Expr::Binary(
                        op,
                        Box::new(lower(&args[0], bindings, line)?),
                        Box::new(lower(&args[1], bindings, line)?),
                    )
                }
                "der" => {
                    return Err(ModelicaError::new(
                        line,
                        1,
                        "der() may only appear as the left-hand side of an equation",
                    ))
                }
                other => {
                    return Err(ModelicaError::new(
                        line,
                        1,
                        format!("unknown function '{other}'"),
                    ))
                }
            }
        }
        AstExpr::If(c, a, b) => Expr::If(
            Box::new(lower(c, bindings, line)?),
            Box::new(lower(a, bindings, line)?),
            Box::new(lower(b, bindings, line)?),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn compile(src: &str) -> Result<Fmu> {
        compile_model(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn parameter_binding_folding_chain() {
        let fmu = compile(
            "model m \
               parameter Real Cp = 1.5; \
               parameter Real R = 1.5; \
               parameter Real A(min=-10, max=10) = -1/(R*Cp); \
               Real x(start = 20); \
             equation \
               der(x) = A*x; \
             end m;",
        )
        .unwrap();
        let a = fmu.description.variable("A").unwrap();
        assert!((a.start.unwrap() - (-1.0 / 2.25)).abs() < 1e-12);
    }

    #[test]
    fn bounded_parameters_are_tunable_unbounded_fixed() {
        let fmu = compile(
            "model m \
               parameter Real A(min=-10, max=10) = 0; \
               parameter Real P = 7.8; \
               Real x(start=0); \
             equation der(x) = A*x + P; end m;",
        )
        .unwrap();
        assert_eq!(
            fmu.description.variable("A").unwrap().variability,
            Variability::Tunable
        );
        assert_eq!(
            fmu.description.variable("P").unwrap().variability,
            Variability::Fixed
        );
    }

    #[test]
    fn integer_input_is_discrete() {
        let fmu = compile(
            "model m \
               input Integer occ(min=0, max=100); \
               Real t(start=20); \
             equation der(t) = 0.1*occ; end m;",
        )
        .unwrap();
        let occ = fmu.description.variable("occ").unwrap();
        assert_eq!(occ.variability, Variability::Discrete);
        assert_eq!(occ.var_type, VarType::Integer);
    }

    #[test]
    fn missing_der_equation_errors() {
        let err = compile("model m Real x(start=0); Real z(start=0); equation der(x)=1; end m;");
        assert!(err.unwrap_err().message.contains("'z' has no der()"));
    }

    #[test]
    fn duplicate_der_equation_errors() {
        let err = compile("model m Real x(start=0); equation der(x)=1; der(x)=2; end m;");
        assert!(err.unwrap_err().message.contains("more than one"));
    }

    #[test]
    fn unknown_identifier_errors() {
        let err = compile("model m Real x(start=0); equation der(x) = ghost; end m;");
        assert!(err.unwrap_err().message.contains("'ghost'"));
    }

    #[test]
    fn output_reference_in_rhs_errors() {
        let err = compile(
            "model m output Real y; Real x(start=0); \
             equation der(x) = y; y = 2*x; end m;",
        );
        assert!(err.unwrap_err().message.contains("output 'y'"));
    }

    #[test]
    fn assignment_to_state_errors() {
        let err = compile("model m Real x(start=0); equation x = 1; end m;");
        assert!(err.unwrap_err().message.contains("not an output"));
    }

    #[test]
    fn der_inside_expression_errors() {
        let err = compile(
            "model m Real x(start=0); output Real y; \
             equation der(x) = 1; y = der(x); end m;",
        );
        assert!(err.unwrap_err().message.contains("left-hand side"));
    }

    #[test]
    fn experiment_annotation_becomes_default_experiment() {
        let fmu = compile(
            "model m Real x(start=0); equation der(x)=0; \
             annotation(experiment(StartTime=0, StopTime=672, Tolerance=1e-8, Interval=0.5)); \
             end m;",
        )
        .unwrap();
        let de = fmu.description.default_experiment;
        assert_eq!(de.stop_time, 672.0);
        assert_eq!(de.step_size, 0.5);
        assert_eq!(de.tolerance, 1e-8);
    }

    #[test]
    fn compiled_model_simulates() {
        use pgfmu_fmi::{InputSet, SimulationOptions};
        use std::sync::Arc;
        // Pure decay toward zero with rate k.
        let fmu = compile(
            "model decay \
               parameter Real k(min=0, max=10) = 0.5; \
               Real x(start = 8); \
             equation \
               der(x) = -k * x; \
             end decay;",
        )
        .unwrap();
        let inst = Arc::new(fmu).instantiate();
        let res = inst
            .simulate(&InputSet::empty(), &SimulationOptions::default())
            .unwrap();
        let xs = res.series("x").unwrap();
        let last = *xs.last().unwrap();
        let exact = 8.0 * (-0.5_f64 * 24.0).exp();
        assert!((last - exact).abs() < 1e-4, "{last} vs {exact}");
    }

    #[test]
    fn thermostat_if_equation_compiles_and_saturates() {
        use pgfmu_fmi::{InputSet, SimulationOptions};
        use std::sync::Arc;
        let fmu = compile(
            "model thermostat \
               parameter Real gain(min=0, max=100) = 5; \
               Real x(start = 10); \
             equation \
               der(x) = if x < 21 then gain else 0; \
             end thermostat;",
        )
        .unwrap();
        let inst = Arc::new(fmu).instantiate();
        let res = inst
            .simulate(
                &InputSet::empty(),
                &SimulationOptions {
                    stop: Some(24.0),
                    output_step: Some(0.25),
                    ..Default::default()
                },
            )
            .unwrap();
        let last = *res.series("x").unwrap().last().unwrap();
        // Must have stopped heating near the 21 degree setpoint.
        assert!((20.9..=22.5).contains(&last), "setpoint missed: {last}");
    }

    #[test]
    fn boolean_operators_lower_to_min_max() {
        let fmu = compile(
            "model b \
               Real x(start=0); output Real y; \
             equation \
               der(x) = 1; \
               y = if x > 1 and x < 3 or not (x >= 0) then 1 else 0; \
             end b;",
        )
        .unwrap();
        // y at x=2: condition true.
        let mut yv = [0.0];
        fmu.system.outputs(0.0, &[2.0], &[], &[], &mut yv);
        assert_eq!(yv[0], 1.0);
        fmu.system.outputs(0.0, &[5.0], &[], &[], &mut yv);
        assert_eq!(yv[0], 0.0);
    }

    #[test]
    fn equality_comparison_lowers_correctly() {
        let fmu = compile(
            "model e Real x(start=0); output Real y; \
             equation der(x)=1; y = if x == 2 then 10 else if x <> 2 then 20 else 30; end e;",
        )
        .unwrap();
        let mut yv = [0.0];
        fmu.system.outputs(0.0, &[2.0], &[], &[], &mut yv);
        assert_eq!(yv[0], 10.0);
        fmu.system.outputs(0.0, &[3.0], &[], &[], &mut yv);
        assert_eq!(yv[0], 20.0);
    }
}
