//! Compiler diagnostics with source positions.

use std::fmt;

/// Convenient alias used across the crate.
pub type Result<T> = std::result::Result<T, ModelicaError>;

/// A lexer/parser/compiler diagnostic pointing at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelicaError {
    /// 1-based source line (0 when not applicable, e.g. I/O failures).
    pub line: u32,
    /// 1-based source column.
    pub column: u32,
    /// Human-readable message.
    pub message: String,
}

impl ModelicaError {
    /// Create a diagnostic.
    pub fn new(line: u32, column: u32, message: impl Into<String>) -> Self {
        ModelicaError {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ModelicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "Modelica error at {}:{}: {}",
                self.line, self.column, self.message
            )
        } else {
            write!(f, "Modelica error: {}", self.message)
        }
    }
}

impl std::error::Error for ModelicaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ModelicaError::new(3, 7, "unexpected token");
        assert_eq!(e.to_string(), "Modelica error at 3:7: unexpected token");
        let e = ModelicaError::new(0, 0, "file missing");
        assert_eq!(e.to_string(), "Modelica error: file missing");
    }
}
