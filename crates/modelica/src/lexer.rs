//! Tokenizer for the Modelica subset.
//!
//! Handles identifiers/keywords, numeric literals (including exponents),
//! double-quoted strings, `//` line comments, `/* … */` block comments and
//! the operator/punctuation set used by declarations and equations.

use crate::error::{ModelicaError, Result};

/// Token kinds produced by [`lex`].
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are resolved by the parser so
    /// identifiers like `model1` lex naturally).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Double-quoted string literal (escapes `\"` and `\\` supported).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `<>`
    Ne,
}

/// A token with its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token payload.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub column: u32,
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    column: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }
}

/// Tokenize Modelica source.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let mut cur = Cursor::new(source);
    let mut out = Vec::new();

    while let Some(c) = cur.peek() {
        let (line, column) = (cur.line, cur.column);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                cur.bump();
            }
            '/' => {
                cur.bump();
                match cur.peek() {
                    Some('/') => {
                        // line comment
                        while let Some(c) = cur.peek() {
                            if c == '\n' {
                                break;
                            }
                            cur.bump();
                        }
                    }
                    Some('*') => {
                        cur.bump();
                        let mut closed = false;
                        while let Some(c) = cur.bump() {
                            if c == '*' && cur.peek() == Some('/') {
                                cur.bump();
                                closed = true;
                                break;
                            }
                        }
                        if !closed {
                            return Err(ModelicaError::new(
                                line,
                                column,
                                "unterminated block comment",
                            ));
                        }
                    }
                    _ => out.push(Token {
                        tok: Tok::Slash,
                        line,
                        column,
                    }),
                }
            }
            '"' => {
                cur.bump();
                let mut s = String::new();
                loop {
                    match cur.bump() {
                        Some('"') => break,
                        Some('\\') => match cur.bump() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('n') => s.push('\n'),
                            Some(other) => {
                                s.push('\\');
                                s.push(other);
                            }
                            None => {
                                return Err(ModelicaError::new(
                                    line,
                                    column,
                                    "unterminated string literal",
                                ))
                            }
                        },
                        Some(other) => s.push(other),
                        None => {
                            return Err(ModelicaError::new(
                                line,
                                column,
                                "unterminated string literal",
                            ))
                        }
                    }
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    line,
                    column,
                });
            }
            '0'..='9' | '.' => {
                let mut text = String::new();
                let mut saw_digit = false;
                while let Some(c) = cur.peek() {
                    if c.is_ascii_digit() {
                        saw_digit = true;
                        text.push(c);
                        cur.bump();
                    } else if c == '.' && !text.contains('.') && !text.contains('e') {
                        text.push(c);
                        cur.bump();
                    } else if (c == 'e' || c == 'E') && saw_digit && !text.contains('e') {
                        text.push('e');
                        cur.bump();
                        if let Some(sign @ ('+' | '-')) = cur.peek() {
                            text.push(sign);
                            cur.bump();
                        }
                    } else {
                        break;
                    }
                }
                if !saw_digit {
                    return Err(ModelicaError::new(line, column, "stray '.'"));
                }
                let value: f64 = text.parse().map_err(|_| {
                    ModelicaError::new(line, column, format!("bad numeric literal '{text}'"))
                })?;
                out.push(Token {
                    tok: Tok::Number(value),
                    line,
                    column,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(c) = cur.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        name.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    tok: Tok::Ident(name),
                    line,
                    column,
                });
            }
            _ => {
                cur.bump();
                let tok = match c {
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    ',' => Tok::Comma,
                    ';' => Tok::Semi,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    '^' => Tok::Caret,
                    '=' => {
                        if cur.peek() == Some('=') {
                            cur.bump();
                            Tok::EqEq
                        } else {
                            Tok::Eq
                        }
                    }
                    '<' => match cur.peek() {
                        Some('=') => {
                            cur.bump();
                            Tok::Le
                        }
                        Some('>') => {
                            cur.bump();
                            Tok::Ne
                        }
                        _ => Tok::Lt,
                    },
                    '>' => {
                        if cur.peek() == Some('=') {
                            cur.bump();
                            Tok::Ge
                        } else {
                            Tok::Gt
                        }
                    }
                    other => {
                        return Err(ModelicaError::new(
                            line,
                            column,
                            format!("unexpected character '{other}'"),
                        ))
                    }
                };
                out.push(Token { tok, line, column });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_declaration() {
        let toks = kinds("parameter Real A = -1.5e2;");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("parameter".into()),
                Tok::Ident("Real".into()),
                Tok::Ident("A".into()),
                Tok::Eq,
                Tok::Minus,
                Tok::Number(150.0),
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("< <= > >= == <> ^"),
            vec![
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::EqEq,
                Tok::Ne,
                Tok::Caret
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let toks = kinds("a // whole line\n/* block\nspanning */ b");
        assert_eq!(toks, vec![Tok::Ident("a".into()), Tok::Ident("b".into())]);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn string_literals_with_escapes() {
        let toks = kinds(r#""hello \"world\"" "#);
        assert_eq!(toks, vec![Tok::Str("hello \"world\"".into())]);
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn numbers_with_exponents_and_decimals() {
        assert_eq!(kinds("0.5"), vec![Tok::Number(0.5)]);
        assert_eq!(kinds("1e-6"), vec![Tok::Number(1e-6)]);
        assert_eq!(kinds("2.5E3"), vec![Tok::Number(2500.0)]);
        // '1e' followed by identifier-ish garbage should fail to parse
        assert!(lex("1e+").is_err());
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn unexpected_character_errors() {
        let err = lex("a ? b").unwrap_err();
        assert!(err.message.contains('?'));
    }
}
