//! # pgfmu-modelica — a Modelica-subset compiler targeting `pgfmu-fmi`
//!
//! pgFMU's `fmu_create` UDF accepts three kinds of model references: a
//! pre-compiled `.fmu` file, a Modelica `.mo` file, or inline Modelica
//! source (paper §5). This crate implements the second and third paths:
//! a lexer, parser and compiler for the Modelica subset exercised by the
//! paper — single-model files with `parameter`/`input`/`output Real`
//! component declarations (with `start`/`min`/`max`/`unit` attributes and
//! description strings), an `equation` section of explicit `der(x) = …`
//! and output assignments, and an optional `annotation(experiment(…))`
//! clause supplying the FMI default experiment.
//!
//! The compiler performs:
//!
//! 1. classification of components into parameters, inputs, outputs and
//!    states (a state is a plain `Real` driven by a `der()` equation);
//! 2. compile-time constant folding of parameter bindings (`parameter
//!    Real A = -1/(R*Cp);` works when `R` and `Cp` are earlier parameters);
//! 3. lowering of equations into the index-based [`pgfmu_fmi::Expr`] IR;
//! 4. assembly and validation of the [`pgfmu_fmi::Fmu`].
//!
//! ```
//! use pgfmu_modelica::compile_str;
//!
//! let fmu = compile_str(
//!     "model gain \
//!        parameter Real k = 2.0; \
//!        input Real u; \
//!        output Real y; \
//!      equation \
//!        y = k * u; \
//!      end gain;",
//! ).unwrap();
//! assert_eq!(fmu.name(), "gain");
//! ```

pub mod ast;
pub mod compile;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod sources;

pub use compile::compile_model;
pub use error::{ModelicaError, Result};

use pgfmu_fmi::Fmu;

/// Compile inline Modelica source into an FMU.
pub fn compile_str(source: &str) -> Result<Fmu> {
    let tokens = lexer::lex(source)?;
    let model = parser::parse(&tokens)?;
    compile::compile_model(&model)
}

/// Compile a `.mo` file into an FMU.
pub fn compile_file(path: &std::path::Path) -> Result<Fmu> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| ModelicaError::new(0, 0, format!("cannot read {}: {e}", path.display())))?;
    compile_str(&source)
}

/// Heuristic used by `fmu_create` to distinguish inline Modelica source
/// from file paths: inline source contains `model … end …`.
pub fn looks_like_inline_source(model_ref: &str) -> bool {
    model_ref.contains("model ") && model_ref.contains("end ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_figure2_model() {
        let fmu = compile_str(sources::HP1_MO).unwrap();
        assert_eq!(fmu.name(), "heatpump");
        assert_eq!(fmu.state_names(), ["x"]);
        assert_eq!(fmu.input_names(), ["u"]);
        assert_eq!(fmu.output_names(), ["y"]);
        assert_eq!(fmu.param_names(), ["A", "B", "C", "D", "E"]);
    }

    #[test]
    fn inline_detection() {
        assert!(looks_like_inline_source(
            "model m Real x(start=0); equation der(x)=1; end m;"
        ));
        assert!(!looks_like_inline_source("/tmp/hp1.fmu"));
        assert!(!looks_like_inline_source("/tmp/model.mo"));
    }

    #[test]
    fn compile_file_missing_path_errors() {
        let err = compile_file(std::path::Path::new("/nonexistent/m.mo"));
        assert!(err.is_err());
    }
}
