//! Recursive-descent parser for the Modelica subset.
//!
//! Grammar (informal):
//!
//! ```text
//! model      := 'model' IDENT STRING? component* 'equation' equation*
//!               annotation? 'end' IDENT ';'
//! component  := ('parameter'|'input'|'output')? type name-list
//!               modifiers? ('=' expr)? STRING? ';'
//! modifiers  := '(' attr (',' attr)* ')'      attr := IDENT '=' (expr|STRING)
//! equation   := 'der' '(' IDENT ')' '=' expr ';' | IDENT '=' expr ';'
//! annotation := 'annotation' '(' 'experiment' '(' attr,* ')' ')' ';'
//! expr       := 'if' expr 'then' expr 'else' expr | or-expr
//! ```
//!
//! Operator precedence (low→high): `or`, `and`, comparisons, `+ -`, `* /`,
//! unary `- not`, `^` (right-associative), primaries.

use crate::ast::{
    AstBinOp, AstExpr, Component, Equation, ExperimentAnnotation, ModelAst, Prefix, TypeName,
};
use crate::error::{ModelicaError, Result};
use crate::lexer::{Tok, Token};

/// Attribute modifications plus the optional string-valued `unit`.
type Modifiers = (Vec<(String, AstExpr)>, Option<String>);

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn location(&self) -> (u32, u32) {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| (t.line, t.column))
            .unwrap_or((0, 0))
    }

    fn err(&self, message: impl Into<String>) -> ModelicaError {
        let (line, column) = self.location();
        ModelicaError::new(line, column, message)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.tokens.get(self.pos).map(|t| &t.tok);
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<()> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected {what}, found {t:?}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                Ok(name.clone())
            }
            Some(t) => Err(self.err(format!("expected {what}, found {t:?}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(name)) = self.peek() {
            if name == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(name)) if name == kw)
    }

    // -- expressions --------------------------------------------------------

    fn parse_expr(&mut self) -> Result<AstExpr> {
        if self.eat_keyword("if") {
            let cond = self.parse_expr()?;
            if !self.eat_keyword("then") {
                return Err(self.err("expected 'then' in if-expression"));
            }
            let then_e = self.parse_expr()?;
            if !self.eat_keyword("else") {
                return Err(self.err("expected 'else' in if-expression"));
            }
            let else_e = self.parse_expr()?;
            return Ok(AstExpr::If(
                Box::new(cond),
                Box::new(then_e),
                Box::new(else_e),
            ));
        }
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<AstExpr> {
        let mut lhs = self.parse_and()?;
        while self.eat_keyword("or") {
            let rhs = self.parse_and()?;
            lhs = AstExpr::Binary(AstBinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<AstExpr> {
        let mut lhs = self.parse_rel()?;
        while self.eat_keyword("and") {
            let rhs = self.parse_rel()?;
            lhs = AstExpr::Binary(AstBinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_rel(&mut self) -> Result<AstExpr> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Tok::Lt) => Some(AstBinOp::Lt),
            Some(Tok::Le) => Some(AstBinOp::Le),
            Some(Tok::Gt) => Some(AstBinOp::Gt),
            Some(Tok::Ge) => Some(AstBinOp::Ge),
            Some(Tok::EqEq) => Some(AstBinOp::EqEq),
            Some(Tok::Ne) => Some(AstBinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.parse_add()?;
            Ok(AstExpr::Binary(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn parse_add(&mut self) -> Result<AstExpr> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => AstBinOp::Add,
                Some(Tok::Minus) => AstBinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_mul()?;
            lhs = AstExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<AstExpr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => AstBinOp::Mul,
                Some(Tok::Slash) => AstBinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = AstExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<AstExpr> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.pos += 1;
                Ok(AstExpr::Neg(Box::new(self.parse_unary()?)))
            }
            Some(Tok::Plus) => {
                self.pos += 1;
                self.parse_unary()
            }
            Some(Tok::Ident(k)) if k == "not" => {
                self.pos += 1;
                Ok(AstExpr::Not(Box::new(self.parse_unary()?)))
            }
            _ => self.parse_power(),
        }
    }

    fn parse_power(&mut self) -> Result<AstExpr> {
        let base = self.parse_primary()?;
        if matches!(self.peek(), Some(Tok::Caret)) {
            self.pos += 1;
            // right-associative: parse the exponent at unary level.
            let exp = self.parse_unary()?;
            Ok(AstExpr::Binary(
                AstBinOp::Pow,
                Box::new(base),
                Box::new(exp),
            ))
        } else {
            Ok(base)
        }
    }

    fn parse_primary(&mut self) -> Result<AstExpr> {
        match self.bump() {
            Some(Tok::Number(v)) => Ok(AstExpr::Number(*v)),
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => match name.as_str() {
                "true" => Ok(AstExpr::Bool(true)),
                "false" => Ok(AstExpr::Bool(false)),
                _ => {
                    if matches!(self.peek(), Some(Tok::LParen)) {
                        self.pos += 1;
                        let mut args = Vec::new();
                        if !matches!(self.peek(), Some(Tok::RParen)) {
                            loop {
                                args.push(self.parse_expr()?);
                                if matches!(self.peek(), Some(Tok::Comma)) {
                                    self.pos += 1;
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(&Tok::RParen, "')' after call arguments")?;
                        Ok(AstExpr::Call(name.clone(), args))
                    } else {
                        Ok(AstExpr::Ident(name.clone()))
                    }
                }
            },
            Some(other) => Err({
                self.pos -= 1;
                self.err(format!("unexpected token {other:?} in expression"))
            }),
            None => Err(self.err("unexpected end of input in expression")),
        }
    }

    // -- declarations -------------------------------------------------------

    fn parse_prefix(&mut self) -> Prefix {
        if self.eat_keyword("parameter") {
            Prefix::Parameter
        } else if self.eat_keyword("input") {
            Prefix::Input
        } else if self.eat_keyword("output") {
            Prefix::Output
        } else {
            Prefix::None
        }
    }

    fn parse_type(&mut self) -> Result<TypeName> {
        let name = self.expect_ident("type name (Real/Integer/Boolean)")?;
        match name.as_str() {
            "Real" => Ok(TypeName::Real),
            "Integer" => Ok(TypeName::Integer),
            "Boolean" => Ok(TypeName::Boolean),
            other => Err(self.err(format!("unsupported type '{other}'"))),
        }
    }

    /// Parse a `(attr = value, …)` modifier list. Returns (attrs, unit).
    fn parse_modifiers(&mut self) -> Result<Modifiers> {
        let mut attrs = Vec::new();
        let mut unit = None;
        self.expect(&Tok::LParen, "'('")?;
        loop {
            let key = self.expect_ident("attribute name")?;
            self.expect(&Tok::Eq, "'=' in attribute")?;
            if let Some(Tok::Str(s)) = self.peek() {
                if key == "unit" {
                    unit = Some(s.clone());
                } // other string attributes are accepted and ignored
                self.pos += 1;
            } else {
                attrs.push((key, self.parse_expr()?));
            }
            match self.peek() {
                Some(Tok::Comma) => {
                    self.pos += 1;
                }
                Some(Tok::RParen) => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or ')' in modifier list")),
            }
        }
        Ok((attrs, unit))
    }

    fn parse_component(&mut self, out: &mut Vec<Component>) -> Result<()> {
        let (line, _) = self.location();
        // `discrete` may appear before or after the causality prefix.
        let mut discrete = self.eat_keyword("discrete");
        let prefix = self.parse_prefix();
        discrete = self.eat_keyword("discrete") || discrete;
        let type_name = self.parse_type()?;

        // Name list: `Real x, y, z;` shares attributes; bindings only allowed
        // for single-name declarations.
        let mut names = vec![self.expect_ident("component name")?];
        let mut attributes = Vec::new();
        let mut unit = None;
        if matches!(self.peek(), Some(Tok::LParen)) {
            let (a, u) = self.parse_modifiers()?;
            attributes = a;
            unit = u;
        }
        while matches!(self.peek(), Some(Tok::Comma)) {
            self.pos += 1;
            names.push(self.expect_ident("component name")?);
            if matches!(self.peek(), Some(Tok::LParen)) {
                let (a, u) = self.parse_modifiers()?;
                attributes = a;
                unit = u;
            }
        }

        let binding = if matches!(self.peek(), Some(Tok::Eq)) {
            self.pos += 1;
            Some(self.parse_expr()?)
        } else {
            None
        };
        if binding.is_some() && names.len() > 1 {
            return Err(self.err("a binding is not allowed on a multi-name declaration"));
        }

        let description = if let Some(Tok::Str(s)) = self.peek() {
            let d = s.clone();
            self.pos += 1;
            Some(d)
        } else {
            None
        };
        self.expect(&Tok::Semi, "';' after declaration")?;

        for name in names {
            out.push(Component {
                discrete,
                prefix,
                type_name,
                name,
                attributes: attributes.clone(),
                unit: unit.clone(),
                binding: binding.clone(),
                description: description.clone(),
                line,
            });
        }
        Ok(())
    }

    // -- equations ----------------------------------------------------------

    fn parse_equation(&mut self) -> Result<Equation> {
        let (line, _) = self.location();
        if self.peek_keyword("der") {
            // could be `der(x) = rhs`
            self.pos += 1;
            self.expect(&Tok::LParen, "'(' after der")?;
            let state = self.expect_ident("state name inside der()")?;
            self.expect(&Tok::RParen, "')' after der(state)")?;
            self.expect(&Tok::Eq, "'=' in equation")?;
            let rhs = self.parse_expr()?;
            self.expect(&Tok::Semi, "';' after equation")?;
            return Ok(Equation::Der { state, rhs, line });
        }
        let target = self.expect_ident("equation target")?;
        self.expect(&Tok::Eq, "'=' in equation")?;
        let rhs = self.parse_expr()?;
        self.expect(&Tok::Semi, "';' after equation")?;
        Ok(Equation::Assign { target, rhs, line })
    }

    // -- annotation ---------------------------------------------------------

    fn parse_annotation(&mut self) -> Result<ExperimentAnnotation> {
        let mut ann = ExperimentAnnotation::default();
        self.expect(&Tok::LParen, "'(' after annotation")?;
        let kind = self.expect_ident("annotation kind")?;
        if kind != "experiment" {
            return Err(self.err(format!("unsupported annotation '{kind}'")));
        }
        self.expect(&Tok::LParen, "'(' after experiment")?;
        loop {
            let key = self.expect_ident("experiment attribute")?;
            self.expect(&Tok::Eq, "'=' in experiment attribute")?;
            let value = self.parse_expr()?;
            let num = const_eval(&value).ok_or_else(|| {
                self.err(format!("experiment attribute '{key}' must be constant"))
            })?;
            match key.as_str() {
                "StartTime" => ann.start_time = Some(num),
                "StopTime" => ann.stop_time = Some(num),
                "Tolerance" => ann.tolerance = Some(num),
                "Interval" => ann.interval = Some(num),
                other => {
                    return Err(self.err(format!("unknown experiment attribute '{other}'")));
                }
            }
            match self.peek() {
                Some(Tok::Comma) => {
                    self.pos += 1;
                }
                Some(Tok::RParen) => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or ')' in experiment annotation")),
            }
        }
        self.expect(&Tok::RParen, "')' closing annotation")?;
        self.expect(&Tok::Semi, "';' after annotation")?;
        Ok(ann)
    }

    // -- model --------------------------------------------------------------

    fn parse_model(&mut self) -> Result<ModelAst> {
        if !self.eat_keyword("model") {
            return Err(self.err("expected 'model'"));
        }
        let name = self.expect_ident("model name")?;
        // Optional model description string.
        if let Some(Tok::Str(_)) = self.peek() {
            self.pos += 1;
        }

        let mut components = Vec::new();
        while !self.peek_keyword("equation") {
            if self.peek().is_none() {
                return Err(self.err("unexpected end of input: missing 'equation' section"));
            }
            if self.peek_keyword("end") {
                return Err(self.err("model has no 'equation' section"));
            }
            self.parse_component(&mut components)?;
        }
        self.eat_keyword("equation");

        let mut equations = Vec::new();
        let mut experiment = ExperimentAnnotation::default();
        loop {
            if self.peek_keyword("end") {
                break;
            }
            if self.peek_keyword("annotation") {
                self.pos += 1;
                experiment = self.parse_annotation()?;
                continue;
            }
            if self.peek().is_none() {
                return Err(self.err("unexpected end of input: missing 'end'"));
            }
            equations.push(self.parse_equation()?);
        }
        self.eat_keyword("end");
        let end_name = self.expect_ident("model name after 'end'")?;
        if end_name != name {
            return Err(self.err(format!("'end {end_name}' does not match 'model {name}'")));
        }
        self.expect(&Tok::Semi, "';' after end")?;
        if self.peek().is_some() {
            return Err(self.err("trailing tokens after model"));
        }
        Ok(ModelAst {
            name,
            components,
            equations,
            experiment,
        })
    }
}

/// Constant-fold an expression containing only literals (used for
/// experiment annotations).
pub fn const_eval(e: &AstExpr) -> Option<f64> {
    match e {
        AstExpr::Number(v) => Some(*v),
        AstExpr::Bool(b) => Some(f64::from(*b)),
        AstExpr::Neg(a) => const_eval(a).map(|v| -v),
        AstExpr::Binary(op, a, b) => {
            let a = const_eval(a)?;
            let b = const_eval(b)?;
            Some(match op {
                AstBinOp::Add => a + b,
                AstBinOp::Sub => a - b,
                AstBinOp::Mul => a * b,
                AstBinOp::Div => a / b,
                AstBinOp::Pow => a.powf(b),
                _ => return None,
            })
        }
        _ => None,
    }
}

/// Parse a token stream into a model AST.
pub fn parse(tokens: &[Token]) -> Result<ModelAst> {
    Parser { tokens, pos: 0 }.parse_model()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<ModelAst> {
        parse(&lex(src).unwrap())
    }

    const MINIMAL: &str = "model m Real x(start=1); equation der(x) = -x; end m;";

    #[test]
    fn parses_minimal_model() {
        let m = parse_src(MINIMAL).unwrap();
        assert_eq!(m.name, "m");
        assert_eq!(m.components.len(), 1);
        assert_eq!(m.components[0].name, "x");
        assert_eq!(m.equations.len(), 1);
        assert!(matches!(&m.equations[0], Equation::Der { state, .. } if state == "x"));
    }

    #[test]
    fn parses_prefixes_and_attributes() {
        let m = parse_src(
            r#"model hp
                 parameter Real A(min = -10, max = 10) = 0 "state coeff";
                 input Real u(min = 0, max = 1, unit = "1");
                 output Real y;
                 Real x(start = 20.75, unit = "degC");
               equation
                 der(x) = A * x;
                 y = 7.8 * u;
               end hp;"#,
        )
        .unwrap();
        assert_eq!(m.components.len(), 4);
        let a = &m.components[0];
        assert_eq!(a.prefix, Prefix::Parameter);
        assert_eq!(a.attributes.len(), 2);
        assert_eq!(a.description.as_deref(), Some("state coeff"));
        let u = &m.components[1];
        assert_eq!(u.prefix, Prefix::Input);
        assert_eq!(u.unit.as_deref(), Some("1"));
        let x = &m.components[3];
        assert_eq!(x.prefix, Prefix::None);
        assert_eq!(x.unit.as_deref(), Some("degC"));
    }

    #[test]
    fn parses_multi_name_declaration() {
        let m =
            parse_src("model m Real a(start=0), b(start=1); equation der(a)=1; der(b)=1; end m;")
                .unwrap();
        assert_eq!(m.components.len(), 2);
        assert_eq!(m.components[0].name, "a");
        assert_eq!(m.components[1].name, "b");
    }

    #[test]
    fn binding_on_multi_name_rejected() {
        let err = parse_src("model m parameter Real a, b = 1; equation end m;");
        assert!(err.is_err());
    }

    #[test]
    fn parses_if_expression() {
        let m =
            parse_src("model m Real x(start=0); equation der(x) = if x > 21 then 0 else 1; end m;")
                .unwrap();
        match &m.equations[0] {
            Equation::Der { rhs, .. } => assert!(matches!(rhs, AstExpr::If(..))),
            _ => panic!("expected der equation"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let m = parse_src("model m Real x(start=0); equation der(x) = 1 + 2 * 3; end m;").unwrap();
        if let Equation::Der { rhs, .. } = &m.equations[0] {
            assert_eq!(const_eval(rhs), Some(7.0));
        } else {
            panic!();
        }
    }

    #[test]
    fn power_is_right_associative() {
        let m = parse_src("model m Real x(start=0); equation der(x) = 2 ^ 3 ^ 2; end m;").unwrap();
        if let Equation::Der { rhs, .. } = &m.equations[0] {
            assert_eq!(const_eval(rhs), Some(512.0));
        } else {
            panic!();
        }
    }

    #[test]
    fn parses_experiment_annotation() {
        let m = parse_src(
            "model m Real x(start=0); equation der(x) = 0; \
             annotation(experiment(StartTime = 0, StopTime = 672, Interval = 1)); end m;",
        )
        .unwrap();
        assert_eq!(m.experiment.start_time, Some(0.0));
        assert_eq!(m.experiment.stop_time, Some(672.0));
        assert_eq!(m.experiment.interval, Some(1.0));
        assert_eq!(m.experiment.tolerance, None);
    }

    #[test]
    fn mismatched_end_name_rejected() {
        let err = parse_src("model m Real x(start=0); equation der(x)=0; end other;");
        assert!(err.unwrap_err().message.contains("does not match"));
    }

    #[test]
    fn missing_equation_section_rejected() {
        let err = parse_src("model m Real x(start=0); end m;");
        assert!(err.unwrap_err().message.contains("equation"));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let err = parse_src(&format!("{MINIMAL} extra"));
        assert!(err.unwrap_err().message.contains("trailing"));
    }

    #[test]
    fn error_positions_point_at_problem() {
        let err =
            parse_src("model m\n  Real x(start=1)\nequation\n  der(x)=0;\nend m;").unwrap_err();
        // Missing ';' after the declaration: reported on the `equation` line.
        assert_eq!(err.line, 3);
    }

    #[test]
    fn call_parsing() {
        let m = parse_src(
            "model m Real x(start=0); equation der(x) = max(0, min(x, 1)) + sin(time); end m;",
        )
        .unwrap();
        if let Equation::Der { rhs, .. } = &m.equations[0] {
            assert!(matches!(rhs, AstExpr::Binary(AstBinOp::Add, _, _)));
        } else {
            panic!();
        }
    }
}
