//! Ready-to-compile Modelica sources for the paper's models.
//!
//! [`HP1_MO`] is the literal Figure-2 model of the paper; the others are
//! Modelica renderings of the builtin evaluation models so examples, tests
//! and the catalogue can exercise the `.mo` ingestion path of `fmu_create`.

/// The paper's Figure 2: LTI SISO heat pump in `.mo` format.
///
/// `A`, `B`, `E` carry physical bounds and are therefore tunable
/// (estimation targets); `C` and `D` are fixed output coefficients.
/// Truth values (paper §2): `A = −1/(R·Cp) ≈ −0.444`, `B = P·η/Cp = 13.78`,
/// `E = θa/(R·Cp) ≈ −4.444`.
pub const HP1_MO: &str = r#"
model heatpump "LTI SISO heat pump model (pgFMU paper, Figure 2)"
  parameter Real A(min = -10, max = 10) = 0 "state coefficient; truth -1/(R*Cp)";
  parameter Real B(min = -20, max = 20) = 0 "input gain; truth P*eta/Cp";
  parameter Real C = 0 "output state coefficient";
  parameter Real D = 7.8 "output feed-through (rated power P, kW)";
  parameter Real E(min = -20, max = 20) = 0 "offset; truth theta_a/(R*Cp)";
  discrete input Real u(min = 0, max = 1, unit = "1") "HP power rating setting [0..1]";
  output Real y(unit = "kW") "HP power consumption";
  Real x(start = 20.75, unit = "degC") "indoor temperature";
equation
  der(x) = A*x + B*u + E;
  y = C*x + D*u;
  annotation(experiment(StartTime = 0, StopTime = 24, Tolerance = 1e-6, Interval = 1));
end heatpump;
"#;

/// The Cp/R-parameterized running-example heat pump (Table 5, HP1),
/// with the parameter bindings demonstrating compile-time constant folding.
pub const HP1_CP_R_MO: &str = r#"
model HP1 "heat pump house model in the Cp/R parameterization"
  parameter Real Cp(min = 0.1, max = 10, unit = "kWh/degC") = 1.5 "thermal capacitance";
  parameter Real R(min = 0.1, max = 10, unit = "degC/kW") = 1.5 "thermal resistance";
  parameter Real P = 7.8 "rated electrical power, kW";
  parameter Real eta = 2.65 "coefficient of performance";
  parameter Real theta_a = -10 "outdoor temperature, degC";
  discrete input Real u(min = 0, max = 1, unit = "1") "HP power rating setting [0..1]";
  output Real y(unit = "kW") "HP power consumption";
  Real x(start = 20.75, unit = "degC") "indoor temperature";
equation
  der(x) = (theta_a - x) / (R * Cp) + P * eta * u / Cp;
  y = P * u;
  annotation(experiment(StartTime = 0, StopTime = 24, Tolerance = 1e-6, Interval = 1));
end HP1;
"#;

/// The classroom thermal-network model (Table 5, Classroom).
pub const CLASSROOM_MO: &str = r#"
model Classroom "classroom of the SDU Odense O44 building (thermal network)"
  parameter Real shgc(min = 0, max = 10) = 3.246 "solar heat gain coefficient";
  parameter Real tmass(min = 10, max = 100) = 50 "zone thermal mass factor";
  parameter Real RExt(min = 0.5, max = 10) = 4 "exterior wall thermal resistance";
  parameter Real occheff(min = 0, max = 5) = 1.478 "occupant heat gain effectiveness";
  parameter Real Pheat = 10 "radiator power at full valve, kW";
  parameter Real kvent = 0.15 "ventilation conductance at full damper, kW/degC";
  discrete input Real solrad(min = 0, max = 1500, unit = "W/m2") "solar radiation";
  discrete input Real tout(min = -40, max = 50, unit = "degC") "outdoor temperature";
  input Integer occ(min = 0, max = 100) "number of occupants";
  input Real dpos(min = 0, max = 100, unit = "%") "damper position";
  discrete input Real vpos(min = 0, max = 100, unit = "%") "radiator valve position";
  Real t(start = 21.0, unit = "degC") "indoor temperature";
equation
  der(t) = ((tout - t)/RExt + shgc*solrad/1000 + occheff*0.1*occ
            + (vpos/100)*Pheat - (dpos/100)*kvent*(t - tout)) / tmass;
  annotation(experiment(StartTime = 0, StopTime = 24, Tolerance = 1e-6, Interval = 0.5));
end Classroom;
"#;

/// A one-line exponential-decay model used by quickstart material.
pub const DECAY_MO: &str = r#"
model decay "first-order exponential decay"
  parameter Real k(min = 0, max = 10) = 0.5 "decay rate, 1/h";
  Real x(start = 8) "decaying quantity";
equation
  der(x) = -k * x;
end decay;
"#;

#[cfg(test)]
mod tests {
    use crate::compile_str;

    #[test]
    fn all_sample_sources_compile() {
        for (name, src) in [
            ("HP1_MO", super::HP1_MO),
            ("HP1_CP_R_MO", super::HP1_CP_R_MO),
            ("CLASSROOM_MO", super::CLASSROOM_MO),
            ("DECAY_MO", super::DECAY_MO),
        ] {
            compile_str(src).unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        }
    }

    #[test]
    fn cp_r_source_matches_builtin_physics() {
        use pgfmu_fmi::{builtin, InputSeries, InputSet, Interpolation, SimulationOptions};
        use std::sync::Arc;

        let compiled = Arc::new(compile_str(super::HP1_CP_R_MO).unwrap());
        let built_in = Arc::new(builtin::hp1());
        let series = InputSeries::new(
            "u",
            vec![0.0, 8.0, 16.0, 24.0],
            vec![0.3, 0.9, 0.1, 0.1],
            Interpolation::Hold,
        )
        .unwrap();
        let inputs = InputSet::bind(&["u"], vec![series]).unwrap();
        let opts = SimulationOptions::default();
        let a = compiled.instantiate().simulate(&inputs, &opts).unwrap();
        let b = built_in.instantiate().simulate(&inputs, &opts).unwrap();
        let xa = a.series("x").unwrap();
        let xb = b.series("x").unwrap();
        for (va, vb) in xa.iter().zip(xb) {
            assert!((va - vb).abs() < 1e-9, "{va} vs {vb}");
        }
    }

    #[test]
    fn classroom_source_matches_builtin_metadata() {
        use pgfmu_fmi::builtin;
        let compiled = compile_str(super::CLASSROOM_MO).unwrap();
        let built_in = builtin::classroom();
        assert_eq!(compiled.input_names(), built_in.input_names());
        assert_eq!(compiled.param_names(), built_in.param_names());
        assert_eq!(compiled.state_names(), built_in.state_names());
    }
}
