//! Property tests: the compiler front-end must never panic, and generated
//! well-formed models must compile and evaluate consistently.

use proptest::prelude::*;

use pgfmu_modelica::{compile_str, lexer, parser};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The lexer accepts or rejects arbitrary input without panicking.
    #[test]
    fn lexer_total_on_arbitrary_strings(s in ".{0,200}") {
        let _ = lexer::lex(&s);
    }

    /// The parser is total on arbitrary token streams derived from
    /// ASCII soup restricted to the token alphabet.
    #[test]
    fn parser_total_on_token_soup(s in "[a-z0-9=+\\-*/^(),;.< >]{0,120}") {
        if let Ok(tokens) = lexer::lex(&s) {
            let _ = parser::parse(&tokens);
        }
    }

    /// Well-formed LTI models compile, and the compiled derivative at a
    /// probe point equals a*x0 + b*u0 + c computed directly.
    #[test]
    fn generated_lti_models_compile_and_evaluate(
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
        c in -5.0f64..5.0,
        x0 in -30.0f64..30.0,
        u0 in -1.0f64..1.0,
    ) {
        let src = format!(
            "model g \
               parameter Real a(min=-10, max=10) = {a}; \
               parameter Real b(min=-10, max=10) = {b}; \
               parameter Real c(min=-10, max=10) = {c}; \
               input Real u; \
               output Real y; \
               Real x(start = {x0}); \
             equation \
               der(x) = a*x + b*u + c; \
               y = x + u; \
             end g;",
        );
        let fmu = compile_str(&src).unwrap();
        let mut dx = [0.0f64];
        let p = [a, b, c];
        fmu.system.derivatives(0.0, &[x0], &[u0], &p, &mut dx);
        let want = a * x0 + b * u0 + c;
        prop_assert!((dx[0] - want).abs() < 1e-9 * (1.0 + want.abs()));
    }

    /// Constant folding of parameter chains matches direct evaluation.
    #[test]
    fn parameter_folding_matches_direct_evaluation(
        r in 0.5f64..5.0,
        cp in 0.5f64..5.0,
    ) {
        let src = format!(
            "model f \
               parameter Real R = {r}; \
               parameter Real Cp = {cp}; \
               parameter Real A(min=-100, max=100) = -1/(R*Cp); \
               Real x(start=1); \
             equation der(x) = A*x; end f;",
        );
        let fmu = compile_str(&src).unwrap();
        let a = fmu.description.variable("A").unwrap().start.unwrap();
        prop_assert!((a - (-1.0 / (r * cp))).abs() < 1e-12);
    }
}
