//! Property tests: the compiler front-end must never panic, and generated
//! well-formed models must compile and evaluate consistently.

use proptest::prelude::*;

use pgfmu_modelica::{compile_str, lexer, parser, sources};

const CORPUS: [(&str, &str); 4] = [
    ("HP1_MO", sources::HP1_MO),
    ("HP1_CP_R_MO", sources::HP1_CP_R_MO),
    ("CLASSROOM_MO", sources::CLASSROOM_MO),
    ("DECAY_MO", sources::DECAY_MO),
];

/// Rewrite every space that sits *outside* a string literal with a
/// token-separator drawn from `picks` (whitespace runs and comments), so
/// lexing the result must produce the same token stream.
fn respace(source: &str, picks: &[u8]) -> String {
    const SEPARATORS: [&str; 5] = [" ", "\t", "\n   ", " /* re-spaced */ ", " // note\n "];
    let mut out = String::with_capacity(source.len() * 2);
    let mut in_string = false;
    let mut next = 0usize;
    for c in source.chars() {
        if c == '"' {
            in_string = !in_string;
        }
        if c == ' ' && !in_string {
            out.push_str(SEPARATORS[picks[next % picks.len()] as usize % SEPARATORS.len()]);
            next += 1;
        } else {
            out.push(c);
        }
    }
    out
}

/// Zero out source line numbers: re-spacing legitimately moves tokens to
/// different lines, and only the *structure* must be invariant.
fn strip_lines(mut ast: pgfmu_modelica::ast::ModelAst) -> pgfmu_modelica::ast::ModelAst {
    use pgfmu_modelica::ast::Equation;
    for c in &mut ast.components {
        c.line = 0;
    }
    for e in &mut ast.equations {
        match e {
            Equation::Der { line, .. } | Equation::Assign { line, .. } => *line = 0,
        }
    }
    ast
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The lexer accepts or rejects arbitrary input without panicking.
    #[test]
    fn lexer_total_on_arbitrary_strings(s in ".{0,200}") {
        let _ = lexer::lex(&s);
    }

    /// The parser is total on arbitrary token streams derived from
    /// ASCII soup restricted to the token alphabet.
    #[test]
    fn parser_total_on_token_soup(s in "[a-z0-9=+\\-*/^(),;.< >]{0,120}") {
        if let Ok(tokens) = lexer::lex(&s) {
            let _ = parser::parse(&tokens);
        }
    }

    /// Well-formed LTI models compile, and the compiled derivative at a
    /// probe point equals a*x0 + b*u0 + c computed directly.
    #[test]
    fn generated_lti_models_compile_and_evaluate(
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
        c in -5.0f64..5.0,
        x0 in -30.0f64..30.0,
        u0 in -1.0f64..1.0,
    ) {
        let src = format!(
            "model g \
               parameter Real a(min=-10, max=10) = {a}; \
               parameter Real b(min=-10, max=10) = {b}; \
               parameter Real c(min=-10, max=10) = {c}; \
               input Real u; \
               output Real y; \
               Real x(start = {x0}); \
             equation \
               der(x) = a*x + b*u + c; \
               y = x + u; \
             end g;",
        );
        let fmu = compile_str(&src).unwrap();
        let mut dx = [0.0f64];
        let p = [a, b, c];
        fmu.system.derivatives(0.0, &[x0], &[u0], &p, &mut dx);
        let want = a * x0 + b * u0 + c;
        prop_assert!((dx[0] - want).abs() < 1e-9 * (1.0 + want.abs()));
    }

    /// Constant folding of parameter chains matches direct evaluation.
    #[test]
    fn parameter_folding_matches_direct_evaluation(
        r in 0.5f64..5.0,
        cp in 0.5f64..5.0,
    ) {
        let src = format!(
            "model f \
               parameter Real R = {r}; \
               parameter Real Cp = {cp}; \
               parameter Real A(min=-100, max=100) = -1/(R*Cp); \
               Real x(start=1); \
             equation der(x) = A*x; end f;",
        );
        let fmu = compile_str(&src).unwrap();
        let a = fmu.description.variable("A").unwrap().start.unwrap();
        prop_assert!((a - (-1.0 / (r * cp))).abs() < 1e-12);
    }

    /// Lexer/parser round-trip on the shipped `sources::*_MO` corpus:
    /// re-spacing the source with arbitrary whitespace and comments
    /// between tokens must not change the parsed AST.
    #[test]
    fn corpus_ast_is_invariant_under_respacing(
        picks in proptest::collection::vec(0u8..5, 64),
    ) {
        for (name, src) in CORPUS {
            let reference = strip_lines(parser::parse(&lexer::lex(src).unwrap()).unwrap());
            let respaced = respace(src, &picks);
            let tokens = lexer::lex(&respaced)
                .unwrap_or_else(|e| panic!("{name} failed to re-lex: {e}"));
            let ast = parser::parse(&tokens)
                .unwrap_or_else(|e| panic!("{name} failed to re-parse: {e}"));
            prop_assert_eq!(
                strip_lines(ast),
                reference,
                "{} AST changed under re-spacing",
                name
            );
        }
    }
}

/// Compilation of the corpus is deterministic: two independent runs build
/// equal FMUs (equation IR, metadata, default experiment).
#[test]
fn corpus_compilation_is_deterministic() {
    for (name, src) in CORPUS {
        let a = compile_str(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let b = compile_str(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(a, b, "{name} compiled differently on a second run");
    }
}

/// The corpus exercises every declaration corner the compiler supports;
/// spot-check the classified shapes so a parser regression that silently
/// drops a section cannot pass the re-spacing property by accident.
#[test]
fn corpus_shapes_are_as_documented() {
    let hp1 = compile_str(sources::HP1_CP_R_MO).unwrap();
    assert_eq!(hp1.name(), "HP1");
    assert_eq!(hp1.state_names(), ["x"]);
    assert_eq!(hp1.input_names(), ["u"]);
    assert_eq!(hp1.output_names(), ["y"]);

    let classroom = compile_str(sources::CLASSROOM_MO).unwrap();
    assert_eq!(classroom.state_names(), ["t"]);
    assert_eq!(classroom.input_names().len(), 5);

    let decay = compile_str(sources::DECAY_MO).unwrap();
    assert_eq!(decay.param_names(), ["k"]);
    assert!(decay.input_names().is_empty());
}
