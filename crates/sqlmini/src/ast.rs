//! SQL abstract syntax tree.

use crate::value::{DataType, Value};

/// A SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `SELECT …`
    Select(SelectStmt),
    /// `INSERT INTO t [(cols)] VALUES … | SELECT …`
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Row source.
        source: InsertSource,
    },
    /// `UPDATE t SET c = e [, …] [WHERE …]`
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<(String, Expr)>,
        /// Optional predicate.
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM t [WHERE …]`
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate.
        where_clause: Option<Expr>,
    },
    /// `CREATE TABLE [IF NOT EXISTS] t (col type, …)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, DataType)>,
        /// `IF NOT EXISTS` given.
        if_not_exists: bool,
    },
    /// `DROP TABLE [IF EXISTS] t`
    DropTable {
        /// Table name.
        name: String,
        /// `IF EXISTS` given.
        if_exists: bool,
    },
    /// `CREATE [UNIQUE] INDEX name ON t (col)`
    CreateIndex {
        /// Index name (globally unique).
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column.
        column: String,
        /// `UNIQUE` given.
        unique: bool,
    },
    /// `DROP INDEX name`
    DropIndex {
        /// Index name.
        name: String,
    },
    /// `ANALYZE [t]` — collect planner statistics for one table or all.
    Analyze(Option<String>),
    /// `EXPLAIN stmt` — render the chosen physical plan as rows.
    Explain(Box<Stmt>),
    /// `BEGIN [TRANSACTION | WORK]` / `START TRANSACTION`
    Begin,
    /// `COMMIT [TRANSACTION | WORK]` / `END [TRANSACTION | WORK]`
    Commit,
    /// `ROLLBACK [TRANSACTION | WORK]` / `ABORT [TRANSACTION | WORK]`
    Rollback,
}

/// Row source of an INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `VALUES (…), (…)`
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO … SELECT …`
    Select(Box<SelectStmt>),
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT` — deduplicate output rows.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM items (comma-separated cross join; functions join laterally).
    pub from: Vec<FromItem>,
    /// `JOIN … ON` conditions (inner-join semantics: the planner ANDs
    /// them into the WHERE clause; equi-join keys may hash-join).
    pub join_on: Vec<Expr>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions (empty = no grouping). An integer literal is a
    /// 1-based select-list ordinal, as in PostgreSQL (`GROUP BY 1`).
    pub group_by: Vec<Expr>,
    /// HAVING predicate, evaluated once per group.
    pub having: Option<Expr>,
    /// ORDER BY expressions with descending flags.
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output name.
        alias: Option<String>,
    },
}

/// One FROM item.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// Base table scan with optional alias.
    Table {
        /// Table name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// Set-returning function call. Function FROM items are evaluated
    /// laterally: their arguments may reference columns of FROM items to
    /// their left (the `LATERAL` keyword is accepted and implied).
    Function {
        /// Function name.
        name: String,
        /// Call arguments.
        args: Vec<Expr>,
        /// Optional alias.
        alias: Option<String>,
    },
}

impl FromItem {
    /// The name other parts of the query use to qualify this item's columns.
    pub fn binding_name(&self) -> &str {
        match self {
            FromItem::Table { name, alias } => alias.as_deref().unwrap_or(name),
            FromItem::Function { name, alias, .. } => alias.as_deref().unwrap_or(name),
        }
    }
}

/// Scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// `$n` bind-parameter reference (1-based), bound at execution time.
    Param(usize),
    /// Column reference, optionally qualified.
    Column {
        /// Optional table/alias qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call (`count(*)` is encoded as zero arguments).
    Function {
        /// Function name (lower case).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// `DISTINCT` argument qualifier (`count(DISTINCT x)`); only
        /// meaningful on aggregate calls.
        distinct: bool,
    },
    /// `expr::type` cast.
    Cast {
        /// The operand.
        expr: Box<Expr>,
        /// Target type.
        ty: DataType,
    },
    /// `expr [NOT] IN (v, …)`
    InList {
        /// Probe expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// Negation flag.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        /// The operand.
        expr: Box<Expr>,
        /// Negation flag.
        negated: bool,
    },
    /// Resolved column reference: an index into the flattened joined row.
    /// Produced by the planner, never by the parser.
    Slot(usize),
    /// Reference to the i-th GROUP BY key value of the current group.
    /// Produced by the planner's grouped lowering, never by the parser.
    GroupKey(usize),
    /// Reference to the k-th memoized aggregate value of the current
    /// group. Produced by the planner's grouped lowering, never by the
    /// parser; the argument expressions live in the plan's aggregate list.
    Agg(usize),
    /// Scalar function call resolved to an index into the plan's function
    /// table — per-row evaluation skips the registry lookup entirely.
    /// Produced by the planner, never by the parser.
    ScalarCall {
        /// Index into the plan's resolved scalar-function table.
        f: usize,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean NOT.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (also timestamp + interval)
    Add,
    /// `-` (also timestamp - interval / timestamp - timestamp)
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `||` string concatenation
    Concat,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// Names of the aggregate functions the executor understands.
pub const AGGREGATE_FUNCTIONS: [&str; 5] = ["count", "sum", "avg", "min", "max"];

/// Does this expression contain an aggregate function call?
pub fn contains_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Function { name, args, .. } => {
            AGGREGATE_FUNCTIONS.contains(&name.as_str()) || args.iter().any(contains_aggregate)
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
            contains_aggregate(expr)
        }
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::ScalarCall { args, .. } => args.iter().any(contains_aggregate),
        Expr::Agg(_) => true,
        Expr::Literal(_)
        | Expr::Param(_)
        | Expr::Column { .. }
        | Expr::Slot(_)
        | Expr::GroupKey(_) => false,
    }
}

/// Visit every `Expr::Slot` index in an expression (planner helper for
/// column-usage analysis).
pub fn walk_slots(e: &Expr, f: &mut impl FnMut(usize)) {
    match e {
        Expr::Slot(i) => f(*i),
        Expr::Literal(_)
        | Expr::Param(_)
        | Expr::Column { .. }
        | Expr::GroupKey(_)
        | Expr::Agg(_) => {}
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
            walk_slots(expr, f)
        }
        Expr::Binary { left, right, .. } => {
            walk_slots(left, f);
            walk_slots(right, f);
        }
        Expr::Function { args, .. } | Expr::ScalarCall { args, .. } => {
            for a in args {
                walk_slots(a, f);
            }
        }
        Expr::InList { expr, list, .. } => {
            walk_slots(expr, f);
            for a in list {
                walk_slots(a, f);
            }
        }
    }
}

/// Rewrite every `Expr::Slot` index in place (planner helper for
/// re-addressing expressions after column pruning).
pub fn map_slots(e: &mut Expr, f: &mut impl FnMut(usize) -> usize) {
    match e {
        Expr::Slot(i) => *i = f(*i),
        Expr::Literal(_)
        | Expr::Param(_)
        | Expr::Column { .. }
        | Expr::GroupKey(_)
        | Expr::Agg(_) => {}
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
            map_slots(expr, f)
        }
        Expr::Binary { left, right, .. } => {
            map_slots(left, f);
            map_slots(right, f);
        }
        Expr::Function { args, .. } | Expr::ScalarCall { args, .. } => {
            for a in args {
                map_slots(a, f);
            }
        }
        Expr::InList { expr, list, .. } => {
            map_slots(expr, f);
            for a in list {
                map_slots(a, f);
            }
        }
    }
}

/// The highest `$n` parameter index in an expression (0 when none).
pub fn max_param_expr(e: &Expr) -> usize {
    match e {
        Expr::Param(n) => *n,
        Expr::Literal(_)
        | Expr::Column { .. }
        | Expr::Slot(_)
        | Expr::GroupKey(_)
        | Expr::Agg(_) => 0,
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
            max_param_expr(expr)
        }
        Expr::Binary { left, right, .. } => max_param_expr(left).max(max_param_expr(right)),
        Expr::Function { args, .. } | Expr::ScalarCall { args, .. } => {
            args.iter().map(max_param_expr).max().unwrap_or(0)
        }
        Expr::InList { expr, list, .. } => {
            max_param_expr(expr).max(list.iter().map(max_param_expr).max().unwrap_or(0))
        }
    }
}

fn max_param_select(sel: &SelectStmt) -> usize {
    let mut n = 0;
    for item in &sel.items {
        if let SelectItem::Expr { expr, .. } = item {
            n = n.max(max_param_expr(expr));
        }
    }
    for item in &sel.from {
        if let FromItem::Function { args, .. } = item {
            n = n.max(args.iter().map(max_param_expr).max().unwrap_or(0));
        }
    }
    for e in &sel.join_on {
        n = n.max(max_param_expr(e));
    }
    if let Some(w) = &sel.where_clause {
        n = n.max(max_param_expr(w));
    }
    for e in &sel.group_by {
        n = n.max(max_param_expr(e));
    }
    if let Some(h) = &sel.having {
        n = n.max(max_param_expr(h));
    }
    for (e, _) in &sel.order_by {
        n = n.max(max_param_expr(e));
    }
    n
}

/// The number of `$n` bind parameters a statement requires — the highest
/// placeholder index referenced anywhere in it.
pub fn max_param(stmt: &Stmt) -> usize {
    match stmt {
        Stmt::Select(sel) => max_param_select(sel),
        Stmt::Insert { source, .. } => match source {
            InsertSource::Values(rows) => {
                rows.iter().flatten().map(max_param_expr).max().unwrap_or(0)
            }
            InsertSource::Select(sel) => max_param_select(sel),
        },
        Stmt::Update {
            sets, where_clause, ..
        } => sets
            .iter()
            .map(|(_, e)| max_param_expr(e))
            .max()
            .unwrap_or(0)
            .max(where_clause.as_ref().map(max_param_expr).unwrap_or(0)),
        Stmt::Delete { where_clause, .. } => where_clause.as_ref().map(max_param_expr).unwrap_or(0),
        // EXPLAIN renders the inner plan without executing it, but the
        // bind surface is the inner statement's.
        Stmt::Explain(inner) => max_param(inner),
        Stmt::CreateTable { .. }
        | Stmt::DropTable { .. }
        | Stmt::CreateIndex { .. }
        | Stmt::DropIndex { .. }
        | Stmt::Analyze(_)
        | Stmt::Begin
        | Stmt::Commit
        | Stmt::Rollback => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_names() {
        let t = FromItem::Table {
            name: "measurements".into(),
            alias: None,
        };
        assert_eq!(t.binding_name(), "measurements");
        let f = FromItem::Function {
            name: "fmu_simulate".into(),
            args: vec![],
            alias: Some("f".into()),
        };
        assert_eq!(f.binding_name(), "f");
    }

    #[test]
    fn max_param_walks_every_clause() {
        let stmt = crate::parser::parse(
            "SELECT a + $2 FROM t, generate_series(1, $4) AS g \
             WHERE b > $1 ORDER BY c * $3",
        )
        .unwrap();
        assert_eq!(max_param(&stmt), 4);
        let stmt =
            crate::parser::parse("SELECT a FROM t GROUP BY a + $6 HAVING count(*) > $5 ORDER BY a")
                .unwrap();
        assert_eq!(max_param(&stmt), 6);
        let stmt = crate::parser::parse("INSERT INTO t VALUES ($1, $2), ($3, 4)").unwrap();
        assert_eq!(max_param(&stmt), 3);
        let stmt = crate::parser::parse("UPDATE t SET a = $2 WHERE b IN ($1, $5)").unwrap();
        assert_eq!(max_param(&stmt), 5);
        let stmt = crate::parser::parse("DELETE FROM t WHERE a = $1").unwrap();
        assert_eq!(max_param(&stmt), 1);
        let stmt = crate::parser::parse("SELECT 1").unwrap();
        assert_eq!(max_param(&stmt), 0);
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Function {
            name: "avg".into(),
            args: vec![Expr::Column {
                table: None,
                name: "x".into(),
            }],
            distinct: false,
        };
        assert!(contains_aggregate(&agg));
        let nested = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::Literal(Value::Int(1))),
            right: Box::new(agg),
        };
        assert!(contains_aggregate(&nested));
        let plain = Expr::Function {
            name: "abs".into(),
            args: vec![Expr::Literal(Value::Int(-1))],
            distinct: false,
        };
        assert!(!contains_aggregate(&plain));
    }
}
