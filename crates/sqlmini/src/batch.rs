//! Column-major execution batches and the vectorized kernels that run
//! over them.
//!
//! The zero-copy MVCC scan (see `exec.rs`) collects the visible rows of
//! one table under the read guard and [`Batch::fill`] transposes the
//! pruned columns into typed vectors — `f64` / `i64` / `bool` columns
//! plus text columns that *borrow* `&str` from the rows, so filling a
//! batch performs no string allocation. A validity bitmap tracks NULLs
//! per column.
//!
//! Every kernel returns [`VResult`]: `Err(Fallback)` means "this batch
//! cannot be reproduced byte-identically on the typed path" — an
//! unsupported value shape, a lane that would raise a runtime error
//! (NaN comparison, division by zero, integer overflow), or an operator
//! feature the kernels do not implement. The executor then re-runs the
//! tuple-at-a-time scalar path over the *same* visible-row view, so
//! results, error wording, and error ordering stay exactly the scalar
//! executor's. Kernels therefore never construct a user-facing error.
//!
//! Expression evaluation is selection-vector based: `eval` computes a
//! column of `sel.len()` lanes for the batch row ids listed in `sel`.
//! `AND`/`OR` evaluate their right side only over the lanes the left
//! side did not decide (a sub-selection), which reproduces the scalar
//! short-circuit contract — including how many times an intrinsic call
//! counter ticks and which lanes may raise errors.

use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering as AtomicOrdering;

use crate::ast::{BinOp, Expr, UnOp};
use crate::exec::KeyAtom;
use crate::plan::{AggOp, PlanFn};
use crate::table::{Row, Schema};
use crate::value::{DataType, Value};

/// "Re-run this statement on the scalar executor." Carries no payload:
/// the scalar re-run owns all user-facing results and errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Fallback;

/// Result type of every vectorized kernel.
pub(crate) type VResult<T> = std::result::Result<T, Fallback>;

// ---------------------------------------------------------------------------
// Validity bitmap
// ---------------------------------------------------------------------------

/// Per-column NULL bitmap: bit set = lane holds a valid value.
#[derive(Clone)]
pub(crate) struct Validity {
    bits: Vec<u64>,
    nulls: usize,
}

impl Validity {
    pub(crate) fn all_valid(len: usize) -> Validity {
        Validity {
            bits: vec![u64::MAX; len.div_ceil(64)],
            nulls: 0,
        }
    }

    pub(crate) fn set_null(&mut self, i: usize) {
        let (w, m) = (i / 64, 1u64 << (i % 64));
        if self.bits[w] & m != 0 {
            self.bits[w] &= !m;
            self.nulls += 1;
        }
    }

    #[inline]
    pub(crate) fn is_valid(&self, i: usize) -> bool {
        self.bits[i / 64] >> (i % 64) & 1 != 0
    }
}

// ---------------------------------------------------------------------------
// Typed column vectors
// ---------------------------------------------------------------------------

/// Which SQL type an `i64` column carries (they share one representation
/// but must not compare across kinds).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum IntKind {
    Int,
    Timestamp,
    Interval,
}

impl IntKind {
    fn value(self, v: i64) -> Value {
        match self {
            IntKind::Int => Value::Int(v),
            IntKind::Timestamp => Value::Timestamp(v),
            IntKind::Interval => Value::Interval(v),
        }
    }

    fn atom(self, v: i64) -> KeyAtom {
        match self {
            IntKind::Int => KeyAtom::Int(v),
            IntKind::Timestamp => KeyAtom::Timestamp(v),
            IntKind::Interval => KeyAtom::Interval(v),
        }
    }
}

/// One typed column of a batch. Text lanes borrow from the rows the
/// batch was filled from (they live under the table read guard).
pub(crate) enum ColVec<'a> {
    F64 {
        data: Vec<f64>,
        valid: Validity,
    },
    I64 {
        kind: IntKind,
        data: Vec<i64>,
        valid: Validity,
    },
    Bool {
        data: Vec<bool>,
        valid: Validity,
    },
    Text {
        data: Vec<&'a str>,
        valid: Validity,
    },
}

impl<'a> ColVec<'a> {
    pub(crate) fn len(&self) -> usize {
        match self {
            ColVec::F64 { data, .. } => data.len(),
            ColVec::I64 { data, .. } => data.len(),
            ColVec::Bool { data, .. } => data.len(),
            ColVec::Text { data, .. } => data.len(),
        }
    }

    pub(crate) fn validity(&self) -> &Validity {
        match self {
            ColVec::F64 { valid, .. }
            | ColVec::I64 { valid, .. }
            | ColVec::Bool { valid, .. }
            | ColVec::Text { valid, .. } => valid,
        }
    }

    /// Rebuild lane `i` as an owned [`Value`] (allocates for text).
    pub(crate) fn value_at(&self, i: usize) -> Value {
        if !self.validity().is_valid(i) {
            return Value::Null;
        }
        match self {
            ColVec::F64 { data, .. } => Value::Float(data[i]),
            ColVec::I64 { kind, data, .. } => kind.value(data[i]),
            ColVec::Bool { data, .. } => Value::Bool(data[i]),
            ColVec::Text { data, .. } => Value::Text(data[i].to_string()),
        }
    }

    /// Normalized grouping atom for lane `i` — must canonicalize floats
    /// exactly like [`KeyAtom::from_value`] (`-0.0` → `0.0`, NaN → one
    /// bit pattern) so vectorized and scalar grouping bucket identically.
    pub(crate) fn key_atom_at(&self, i: usize) -> KeyAtom {
        if !self.validity().is_valid(i) {
            return KeyAtom::Null;
        }
        match self {
            ColVec::F64 { data, .. } => {
                let f = if data[i] == 0.0 { 0.0 } else { data[i] };
                KeyAtom::Float(if f.is_nan() {
                    f64::NAN.to_bits()
                } else {
                    f.to_bits()
                })
            }
            ColVec::I64 { kind, data, .. } => kind.atom(data[i]),
            ColVec::Bool { data, .. } => KeyAtom::Bool(data[i]),
            ColVec::Text { data, .. } => KeyAtom::Text(data[i].to_string()),
        }
    }

    /// Copy the lanes listed in `sel` into a new column.
    fn gather(&self, sel: &[u32]) -> ColVec<'a> {
        fn pick<T: Copy>(data: &[T], valid: &Validity, sel: &[u32]) -> (Vec<T>, Validity) {
            let mut out = Vec::with_capacity(sel.len());
            let mut v = Validity::all_valid(sel.len());
            for (lane, &i) in sel.iter().enumerate() {
                out.push(data[i as usize]);
                if !valid.is_valid(i as usize) {
                    v.set_null(lane);
                }
            }
            (out, v)
        }
        match self {
            ColVec::F64 { data, valid } => {
                let (data, valid) = pick(data, valid, sel);
                ColVec::F64 { data, valid }
            }
            ColVec::I64 { kind, data, valid } => {
                let (data, valid) = pick(data, valid, sel);
                ColVec::I64 {
                    kind: *kind,
                    data,
                    valid,
                }
            }
            ColVec::Bool { data, valid } => {
                let (data, valid) = pick(data, valid, sel);
                ColVec::Bool { data, valid }
            }
            ColVec::Text { data, valid } => {
                let (data, valid) = pick(data, valid, sel);
                ColVec::Text { data, valid }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The batch
// ---------------------------------------------------------------------------

/// A column-major slice of one table's visible rows. `cols` is indexed
/// by the table's full-layout slot; only the slots the statement
/// references are filled (column pruning carries over from the
/// zero-copy scan).
pub(crate) struct Batch<'a> {
    cols: Vec<Option<ColVec<'a>>>,
    len: usize,
}

impl<'a> Batch<'a> {
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Transpose `slots` of the visible rows into typed columns. The
    /// column type is the *declared* schema type; a stored value of any
    /// other shape (possible through `variant` coercion paths) aborts to
    /// the scalar executor rather than guessing.
    pub(crate) fn fill(schema: &Schema, rows: &[&'a Row], slots: &[usize]) -> VResult<Batch<'a>> {
        let mut cols: Vec<Option<ColVec<'a>>> = Vec::with_capacity(schema.columns.len());
        cols.resize_with(schema.columns.len(), || None);
        for &slot in slots {
            if cols[slot].is_some() {
                continue;
            }
            let dtype = schema.columns.get(slot).ok_or(Fallback)?.dtype;
            cols[slot] = Some(fill_col(dtype, rows, slot)?);
        }
        Ok(Batch {
            cols,
            len: rows.len(),
        })
    }
}

fn fill_col<'a>(dtype: DataType, rows: &[&'a Row], slot: usize) -> VResult<ColVec<'a>> {
    let mut valid = Validity::all_valid(rows.len());
    macro_rules! typed {
        ($default:expr, $pat:pat => $lane:expr) => {{
            let mut data = Vec::with_capacity(rows.len());
            for (i, row) in rows.iter().enumerate() {
                match row.get(slot).ok_or(Fallback)? {
                    Value::Null => {
                        valid.set_null(i);
                        data.push($default);
                    }
                    $pat => data.push($lane),
                    _ => return Err(Fallback),
                }
            }
            data
        }};
    }
    Ok(match dtype {
        DataType::Float => ColVec::F64 {
            data: typed!(0.0, Value::Float(f) => *f),
            valid,
        },
        DataType::Int => ColVec::I64 {
            kind: IntKind::Int,
            data: typed!(0, Value::Int(v) => *v),
            valid,
        },
        DataType::Timestamp => ColVec::I64 {
            kind: IntKind::Timestamp,
            data: typed!(0, Value::Timestamp(v) => *v),
            valid,
        },
        DataType::Interval => ColVec::I64 {
            kind: IntKind::Interval,
            data: typed!(0, Value::Interval(v) => *v),
            valid,
        },
        DataType::Bool => ColVec::Bool {
            data: typed!(false, Value::Bool(b) => *b),
            valid,
        },
        DataType::Text => ColVec::Text {
            data: typed!("", Value::Text(s) => s.as_str()),
            valid,
        },
        DataType::Variant => return Err(Fallback),
    })
}

// ---------------------------------------------------------------------------
// Vectorized expression evaluation
// ---------------------------------------------------------------------------

/// Statement context the vectorized evaluator needs: bind parameters and
/// the plan's resolved scalar-function table.
pub(crate) struct VecCtx<'e> {
    pub(crate) params: &'e [Value],
    pub(crate) fns: &'e [PlanFn],
}

/// An evaluated expression over a selection: either a column of
/// `sel.len()` lanes or an unexpanded constant.
pub(crate) enum Evaled<'a> {
    Col(ColVec<'a>),
    Const(Value),
}

impl<'a> Evaled<'a> {
    /// Expand to a full column of `n` lanes (for key / sort columns that
    /// need per-lane access). Constant NULL and text stay scalar-only.
    pub(crate) fn materialize(self, n: usize) -> VResult<ColVec<'a>> {
        match self {
            Evaled::Col(c) => Ok(c),
            Evaled::Const(v) => {
                let valid = Validity::all_valid(n);
                Ok(match v {
                    Value::Int(x) => ColVec::I64 {
                        kind: IntKind::Int,
                        data: vec![x; n],
                        valid,
                    },
                    Value::Float(x) => ColVec::F64 {
                        data: vec![x; n],
                        valid,
                    },
                    Value::Bool(x) => ColVec::Bool {
                        data: vec![x; n],
                        valid,
                    },
                    Value::Timestamp(x) => ColVec::I64 {
                        kind: IntKind::Timestamp,
                        data: vec![x; n],
                        valid,
                    },
                    Value::Interval(x) => ColVec::I64 {
                        kind: IntKind::Interval,
                        data: vec![x; n],
                        valid,
                    },
                    Value::Null | Value::Text(_) => return Err(Fallback),
                })
            }
        }
    }
}

/// Evaluate `e` over the batch rows listed in `sel`, producing one lane
/// per selection entry.
pub(crate) fn eval<'a>(
    e: &Expr,
    b: &Batch<'a>,
    sel: &[u32],
    cx: &VecCtx<'_>,
) -> VResult<Evaled<'a>> {
    match e {
        Expr::Literal(v) => Ok(Evaled::Const(v.clone())),
        Expr::Param(i) => match cx.params.get(*i - 1) {
            Some(v) => Ok(Evaled::Const(v.clone())),
            None => Err(Fallback),
        },
        Expr::Slot(i) => {
            let col = b.cols.get(*i).and_then(|c| c.as_ref()).ok_or(Fallback)?;
            Ok(Evaled::Col(col.gather(sel)))
        }
        Expr::Unary { op, expr } => {
            let v = eval(expr, b, sel, cx)?;
            match op {
                UnOp::Neg => neg(v),
                UnOp::Not => not(v),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, b, sel, cx)?;
            Ok(match v {
                Evaled::Const(v) => Evaled::Const(Value::Bool(v.is_null() != *negated)),
                Evaled::Col(c) => {
                    let valid = c.validity();
                    let data: Vec<bool> = (0..c.len())
                        .map(|i| valid.is_valid(i) == *negated)
                        .collect();
                    Evaled::Col(ColVec::Bool {
                        valid: Validity::all_valid(data.len()),
                        data,
                    })
                }
            })
        }
        Expr::Cast { expr, ty } => {
            let v = eval(expr, b, sel, cx)?;
            cast(v, *ty)
        }
        Expr::Binary { op, left, right } => match op {
            BinOp::And | BinOp::Or => logical(matches!(op, BinOp::And), left, right, b, sel, cx),
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                let l = eval(left, b, sel, cx)?;
                let r = eval(right, b, sel, cx)?;
                arith(*op, &l, &r, sel.len())
            }
            BinOp::Concat => Err(Fallback),
            _ => {
                let l = eval(left, b, sel, cx)?;
                let r = eval(right, b, sel, cx)?;
                compare(*op, &l, &r, sel.len())
            }
        },
        Expr::ScalarCall { f, args } => scalar_call(*f, args, b, sel, cx),
        // Everything else (Concat, InList, unresolved columns, grouped
        // references, plain Function dispatch) is scalar-only.
        _ => Err(Fallback),
    }
}

fn neg(v: Evaled<'_>) -> VResult<Evaled<'_>> {
    match v {
        Evaled::Const(Value::Null) => Ok(Evaled::Const(Value::Null)),
        Evaled::Const(Value::Int(i)) => {
            Ok(Evaled::Const(Value::Int(i.checked_neg().ok_or(Fallback)?)))
        }
        Evaled::Const(Value::Float(f)) => Ok(Evaled::Const(Value::Float(-f))),
        Evaled::Const(Value::Interval(i)) => Ok(Evaled::Const(Value::Interval(
            i.checked_neg().ok_or(Fallback)?,
        ))),
        Evaled::Const(_) => Err(Fallback),
        Evaled::Col(ColVec::F64 { data, valid }) => Ok(Evaled::Col(ColVec::F64 {
            data: data.into_iter().map(|f| -f).collect(),
            valid,
        })),
        Evaled::Col(ColVec::I64 { kind, data, valid }) if kind != IntKind::Timestamp => {
            let mut out = Vec::with_capacity(data.len());
            for (i, x) in data.into_iter().enumerate() {
                if valid.is_valid(i) {
                    out.push(x.checked_neg().ok_or(Fallback)?);
                } else {
                    out.push(0);
                }
            }
            Ok(Evaled::Col(ColVec::I64 {
                kind,
                data: out,
                valid,
            }))
        }
        Evaled::Col(_) => Err(Fallback),
    }
}

fn not(v: Evaled<'_>) -> VResult<Evaled<'_>> {
    match v {
        Evaled::Const(Value::Null) => Ok(Evaled::Const(Value::Null)),
        Evaled::Const(Value::Bool(x)) => Ok(Evaled::Const(Value::Bool(!x))),
        Evaled::Const(_) => Err(Fallback),
        Evaled::Col(ColVec::Bool { data, valid }) => Ok(Evaled::Col(ColVec::Bool {
            data: data.into_iter().map(|x| !x).collect(),
            valid,
        })),
        Evaled::Col(_) => Err(Fallback),
    }
}

fn cast<'a>(v: Evaled<'a>, ty: DataType) -> VResult<Evaled<'a>> {
    match v {
        // `cast_to` owns the scalar semantics (including the rounding
        // float → int rule); a cast it rejects falls back for wording.
        Evaled::Const(v) => v.cast_to(ty).map(Evaled::Const).map_err(|_| Fallback),
        Evaled::Col(c) => match (ty, c) {
            (DataType::Int, ColVec::F64 { data, valid }) => Ok(Evaled::Col(ColVec::I64 {
                kind: IntKind::Int,
                data: data.into_iter().map(|f| f.round() as i64).collect(),
                valid,
            })),
            (
                DataType::Int,
                c @ ColVec::I64 {
                    kind: IntKind::Int, ..
                },
            ) => Ok(Evaled::Col(c)),
            (
                DataType::Float,
                ColVec::I64 {
                    kind: IntKind::Int,
                    data,
                    valid,
                },
            ) => Ok(Evaled::Col(ColVec::F64 {
                data: data.into_iter().map(|i| i as f64).collect(),
                valid,
            })),
            (DataType::Float, c @ ColVec::F64 { .. }) => Ok(Evaled::Col(c)),
            _ => Err(Fallback),
        },
    }
}

/// A normalized view of one side of a binary operator.
enum Side<'v, 'a> {
    FCol(&'v [f64], &'v Validity),
    FConst(f64),
    ICol(IntKind, &'v [i64], &'v Validity),
    IConst(IntKind, i64),
    BCol(&'v [bool], &'v Validity),
    BConst(bool),
    TCol(&'v [&'a str], &'v Validity),
    TConst(&'v str),
}

impl Side<'_, '_> {
    fn of<'v, 'a>(ev: &'v Evaled<'a>) -> VResult<Side<'v, 'a>> {
        Ok(match ev {
            Evaled::Col(ColVec::F64 { data, valid }) => Side::FCol(data, valid),
            Evaled::Col(ColVec::I64 { kind, data, valid }) => Side::ICol(*kind, data, valid),
            Evaled::Col(ColVec::Bool { data, valid }) => Side::BCol(data, valid),
            Evaled::Col(ColVec::Text { data, valid }) => Side::TCol(data, valid),
            Evaled::Const(Value::Int(x)) => Side::IConst(IntKind::Int, *x),
            Evaled::Const(Value::Float(x)) => Side::FConst(*x),
            Evaled::Const(Value::Bool(x)) => Side::BConst(*x),
            Evaled::Const(Value::Text(s)) => Side::TConst(s.as_str()),
            Evaled::Const(Value::Timestamp(x)) => Side::IConst(IntKind::Timestamp, *x),
            Evaled::Const(Value::Interval(x)) => Side::IConst(IntKind::Interval, *x),
            Evaled::Const(Value::Null) => return Err(Fallback),
        })
    }

    #[inline]
    fn valid(&self, i: usize) -> bool {
        match self {
            Side::FCol(_, v) | Side::ICol(_, _, v) | Side::BCol(_, v) | Side::TCol(_, v) => {
                v.is_valid(i)
            }
            _ => true,
        }
    }

    #[inline]
    fn f(&self, i: usize) -> f64 {
        match self {
            Side::FCol(d, _) => d[i],
            Side::FConst(x) => *x,
            Side::ICol(_, d, _) => d[i] as f64,
            Side::IConst(_, x) => *x as f64,
            Side::BCol(d, _) => d[i] as u8 as f64,
            Side::BConst(x) => *x as u8 as f64,
            _ => 0.0,
        }
    }

    #[inline]
    fn i(&self, i: usize) -> i64 {
        match self {
            Side::ICol(_, d, _) => d[i],
            Side::IConst(_, x) => *x,
            _ => 0,
        }
    }

    fn int_kind(&self) -> Option<IntKind> {
        match self {
            Side::ICol(k, _, _) => Some(*k),
            Side::IConst(k, _) => Some(*k),
            _ => None,
        }
    }

    /// Participates in the scalar float-promotion arm (`as_f64`)?
    fn numericish(&self) -> bool {
        matches!(
            self,
            Side::FCol(..) | Side::FConst(_) | Side::BCol(..) | Side::BConst(_)
        ) || self.int_kind() == Some(IntKind::Int)
    }
}

fn arith<'a>(op: BinOp, l: &Evaled<'a>, r: &Evaled<'a>, n: usize) -> VResult<Evaled<'a>> {
    if matches!(l, Evaled::Const(Value::Null)) || matches!(r, Evaled::Const(Value::Null)) {
        return Ok(Evaled::Const(Value::Null));
    }
    let a = Side::of(l)?;
    let b = Side::of(r)?;
    // Timestamp / interval arithmetic has bespoke scalar arms; bail.
    if !a.numericish() || !b.numericish() {
        return Err(Fallback);
    }
    let mut valid = Validity::all_valid(n);
    if a.int_kind() == Some(IntKind::Int) && b.int_kind() == Some(IntKind::Int) {
        // Integer arm, exactly like the scalar executor: division by
        // zero is a runtime error (→ re-run) and overflow matches the
        // scalar build profile's behaviour (→ re-run).
        let mut data = vec![0i64; n];
        for (lane, out) in data.iter_mut().enumerate() {
            if !(a.valid(lane) && b.valid(lane)) {
                valid.set_null(lane);
                continue;
            }
            let (x, y) = (a.i(lane), b.i(lane));
            *out = match op {
                BinOp::Add => x.checked_add(y),
                BinOp::Sub => x.checked_sub(y),
                BinOp::Mul => x.checked_mul(y),
                BinOp::Div => {
                    if y == 0 {
                        return Err(Fallback);
                    }
                    x.checked_div(y)
                }
                _ => unreachable!("arith takes + - * / only"),
            }
            .ok_or(Fallback)?;
        }
        return Ok(Evaled::Col(ColVec::I64 {
            kind: IntKind::Int,
            data,
            valid,
        }));
    }
    let mut data = vec![0.0f64; n];
    for (lane, out) in data.iter_mut().enumerate() {
        if !(a.valid(lane) && b.valid(lane)) {
            valid.set_null(lane);
            continue;
        }
        let (x, y) = (a.f(lane), b.f(lane));
        *out = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => {
                if y == 0.0 {
                    return Err(Fallback);
                }
                x / y
            }
            _ => unreachable!("arith takes + - * / only"),
        };
    }
    Ok(Evaled::Col(ColVec::F64 { data, valid }))
}

fn cmp_op(op: BinOp, o: Ordering) -> bool {
    match op {
        BinOp::Eq => o == Ordering::Equal,
        BinOp::Ne => o != Ordering::Equal,
        BinOp::Lt => o == Ordering::Less,
        BinOp::Le => o != Ordering::Greater,
        BinOp::Gt => o == Ordering::Greater,
        BinOp::Ge => o != Ordering::Less,
        _ => unreachable!("cmp_op takes comparison operators only"),
    }
}

fn compare<'a>(op: BinOp, l: &Evaled<'a>, r: &Evaled<'a>, n: usize) -> VResult<Evaled<'a>> {
    if matches!(l, Evaled::Const(Value::Null)) || matches!(r, Evaled::Const(Value::Null)) {
        return Ok(Evaled::Const(Value::Null));
    }
    let a = Side::of(l)?;
    let b = Side::of(r)?;
    let mut valid = Validity::all_valid(n);
    let mut data = vec![false; n];
    // Typed comparison lanes, mirroring the scalar `compare` arms. Any
    // pairing that scalar `compare` rejects (or parses, like timestamp
    // vs text) falls back; a NaN on a compared lane is a scalar runtime
    // error, so it falls back too.
    enum Kernel {
        I64,
        F64,
        Bool,
        Text,
    }
    let kernel = match (&a, &b) {
        (Side::TCol(..) | Side::TConst(_), Side::TCol(..) | Side::TConst(_)) => Kernel::Text,
        (Side::BCol(..) | Side::BConst(_), Side::BCol(..) | Side::BConst(_)) => Kernel::Bool,
        _ => match (a.int_kind(), b.int_kind()) {
            (Some(ka), Some(kb)) if ka == kb => Kernel::I64,
            _ if a.numericish()
                && b.numericish()
                && a.int_kind().is_none_or(|k| k == IntKind::Int)
                && b.int_kind().is_none_or(|k| k == IntKind::Int)
                && !matches!(a, Side::BCol(..) | Side::BConst(_))
                && !matches!(b, Side::BCol(..) | Side::BConst(_)) =>
            {
                Kernel::F64
            }
            _ => return Err(Fallback),
        },
    };
    for lane in 0..n {
        if !(a.valid(lane) && b.valid(lane)) {
            valid.set_null(lane);
            continue;
        }
        let o = match kernel {
            Kernel::I64 => a.i(lane).cmp(&b.i(lane)),
            Kernel::F64 => a.f(lane).partial_cmp(&b.f(lane)).ok_or(Fallback)?,
            Kernel::Bool => {
                let (x, y) = match (&a, &b) {
                    (Side::BCol(d, _), _) => (d[lane], bool_side(&b, lane)),
                    (Side::BConst(x), _) => (*x, bool_side(&b, lane)),
                    _ => unreachable!(),
                };
                x.cmp(&y)
            }
            Kernel::Text => {
                let x = text_side(&a, lane);
                let y = text_side(&b, lane);
                x.cmp(y)
            }
        };
        data[lane] = cmp_op(op, o);
    }
    Ok(Evaled::Col(ColVec::Bool { data, valid }))
}

fn bool_side(s: &Side<'_, '_>, i: usize) -> bool {
    match s {
        Side::BCol(d, _) => d[i],
        Side::BConst(x) => *x,
        _ => unreachable!(),
    }
}

fn text_side<'v, 'a>(s: &'v Side<'v, 'a>, i: usize) -> &'v str {
    match s {
        Side::TCol(d, _) => d[i],
        Side::TConst(x) => x,
        _ => unreachable!(),
    }
}

/// Kleene AND/OR with the scalar short-circuit contract: the right side
/// is evaluated only over lanes the left side did not decide (left
/// `false` decides AND; left `true` decides OR), so right-side errors,
/// fallbacks, and intrinsic-counter ticks land on exactly the lanes the
/// scalar executor would evaluate.
fn logical<'a>(
    and: bool,
    left: &Expr,
    right: &Expr,
    b: &Batch<'a>,
    sel: &[u32],
    cx: &VecCtx<'_>,
) -> VResult<Evaled<'a>> {
    let l = eval(left, b, sel, cx)?;
    let lanes: Vec<Option<bool>> = match &l {
        Evaled::Const(Value::Bool(x)) => {
            if *x != and {
                // Uniformly decided: `false AND …` / `true OR …`.
                return Ok(Evaled::Const(Value::Bool(*x)));
            }
            vec![Some(*x); sel.len()]
        }
        Evaled::Const(Value::Null) => vec![None; sel.len()],
        Evaled::Const(_) => return Err(Fallback),
        Evaled::Col(ColVec::Bool { data, valid }) => (0..data.len())
            .map(|i| valid.is_valid(i).then(|| data[i]))
            .collect(),
        Evaled::Col(_) => return Err(Fallback),
    };
    let undecided: Vec<usize> = (0..lanes.len())
        .filter(|&i| lanes[i] != Some(!and))
        .collect();
    let rhs = if undecided.is_empty() {
        None
    } else {
        let sub_sel: Vec<u32> = undecided.iter().map(|&i| sel[i]).collect();
        Some(eval(right, b, &sub_sel, cx)?)
    };
    let mut data = vec![false; lanes.len()];
    let mut valid = Validity::all_valid(lanes.len());
    let mut sub = 0usize;
    for (i, l) in lanes.iter().enumerate() {
        let out = if *l == Some(!and) {
            Some(!and)
        } else {
            let r = match rhs.as_ref().expect("undecided lanes imply a right side") {
                Evaled::Const(Value::Bool(x)) => Some(*x),
                Evaled::Const(Value::Null) => None,
                Evaled::Const(_) => return Err(Fallback),
                Evaled::Col(ColVec::Bool { data, valid }) => valid.is_valid(sub).then(|| data[sub]),
                Evaled::Col(_) => return Err(Fallback),
            };
            sub += 1;
            match (and, *l, r) {
                // AND: false dominates, then NULL, then true.
                (true, _, Some(false)) => Some(false),
                (true, None, _) | (true, _, None) => None,
                (true, Some(x), Some(y)) => Some(x && y),
                // OR: true dominates, then NULL, then false.
                (false, _, Some(true)) => Some(true),
                (false, None, _) | (false, _, None) => None,
                (false, Some(x), Some(y)) => Some(x || y),
            }
        };
        match out {
            Some(x) => data[i] = x,
            None => valid.set_null(i),
        }
    }
    Ok(Evaled::Col(ColVec::Bool { data, valid }))
}

/// Vectorized intrinsic call: the plan resolved `f` to a pure builtin.
/// The shared call counter ticks once per evaluated lane — exactly the
/// scalar per-row ticking, including NULL-argument lanes (intrinsics
/// are strict but still count the call).
fn scalar_call<'a>(
    f: usize,
    args: &[Expr],
    b: &Batch<'a>,
    sel: &[u32],
    cx: &VecCtx<'_>,
) -> VResult<Evaled<'a>> {
    use crate::functions::Intrinsic;
    let PlanFn::Intrinsic { op, counter, .. } = cx.fns.get(f).ok_or(Fallback)? else {
        return Err(Fallback);
    };
    let [arg] = args else { return Err(Fallback) };
    let arg = eval(arg, b, sel, cx)?;
    let out = match arg {
        Evaled::Const(v) => match crate::functions::eval_intrinsic(*op, &[v]) {
            Some(Ok(v)) => Evaled::Const(v),
            // Errors and natively-unhandled shapes go to the scalar
            // executor, which owns the wording.
            _ => return Err(Fallback),
        },
        Evaled::Col(col) => {
            let float_kernel = |g: fn(f64) -> f64, col: ColVec<'a>| -> VResult<ColVec<'a>> {
                match col {
                    ColVec::F64 { data, valid } => Ok(ColVec::F64 {
                        data: data.into_iter().map(g).collect(),
                        valid,
                    }),
                    ColVec::I64 {
                        kind: IntKind::Int,
                        data,
                        valid,
                    } => Ok(ColVec::F64 {
                        data: data.into_iter().map(|i| g(i as f64)).collect(),
                        valid,
                    }),
                    _ => Err(Fallback),
                }
            };
            Evaled::Col(match op {
                Intrinsic::Floor => float_kernel(f64::floor, col)?,
                Intrinsic::Ceil => float_kernel(f64::ceil, col)?,
                Intrinsic::Sqrt => float_kernel(f64::sqrt, col)?,
                Intrinsic::Exp => float_kernel(f64::exp, col)?,
                Intrinsic::Ln => float_kernel(f64::ln, col)?,
                Intrinsic::Abs => match col {
                    ColVec::F64 { data, valid } => ColVec::F64 {
                        data: data.into_iter().map(f64::abs).collect(),
                        valid,
                    },
                    ColVec::I64 {
                        kind: IntKind::Int,
                        data,
                        valid,
                    } => {
                        let mut out = Vec::with_capacity(data.len());
                        for (i, x) in data.into_iter().enumerate() {
                            if valid.is_valid(i) {
                                out.push(x.checked_abs().ok_or(Fallback)?);
                            } else {
                                out.push(0);
                            }
                        }
                        ColVec::I64 {
                            kind: IntKind::Int,
                            data: out,
                            valid,
                        }
                    }
                    _ => return Err(Fallback),
                },
                Intrinsic::ExtractEpoch => match col {
                    ColVec::I64 {
                        kind: IntKind::Timestamp | IntKind::Interval,
                        data,
                        valid,
                    } => ColVec::I64 {
                        kind: IntKind::Int,
                        data,
                        valid,
                    },
                    _ => return Err(Fallback),
                },
            })
        }
    };
    counter.fetch_add(sel.len() as u64, AtomicOrdering::Relaxed);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Kernels: filter, grouped fold, sort, top-K
// ---------------------------------------------------------------------------

/// Evaluate the WHERE clause over the whole batch and return the passing
/// batch row ids (ascending). NULL predicates drop the row, as in SQL.
pub(crate) fn filter(
    where_clause: Option<&Expr>,
    b: &Batch<'_>,
    cx: &VecCtx<'_>,
) -> VResult<Vec<u32>> {
    let all: Vec<u32> = (0..b.len() as u32).collect();
    let Some(w) = where_clause else {
        return Ok(all);
    };
    match eval(w, b, &all, cx)? {
        Evaled::Const(Value::Bool(true)) => Ok(all),
        Evaled::Const(Value::Bool(false)) | Evaled::Const(Value::Null) => Ok(Vec::new()),
        Evaled::Const(_) => Err(Fallback),
        Evaled::Col(ColVec::Bool { data, valid }) => Ok((0..data.len() as u32)
            .filter(|&i| valid.is_valid(i as usize) && data[i as usize])
            .collect()),
        Evaled::Col(_) => Err(Fallback),
    }
}

/// Grouped aggregation over materialized key and argument columns (all
/// of length `n`, already gathered through the selection). Returns
/// `(key values, aggregate values)` per group in first-seen order — the
/// same contract as the scalar grouping operator, including the "empty
/// GROUP BY yields one group even over empty input" rule.
pub(crate) fn grouped_fold(
    keys: &[ColVec<'_>],
    aggs: &[(AggOp, Option<ColVec<'_>>)],
    n: usize,
) -> VResult<Vec<(Vec<Value>, Vec<Value>)>> {
    let mut gids: Vec<u32> = Vec::with_capacity(n);
    let mut key_rows: Vec<Vec<Value>> = Vec::new();
    if keys.is_empty() {
        key_rows.push(Vec::new());
        gids.resize(n, 0);
    } else if keys.len() == 1 {
        // Single-key specialization: no per-lane Vec allocation.
        let k = &keys[0];
        let mut map: HashMap<KeyAtom, u32> = HashMap::new();
        for i in 0..n {
            let gid = *map.entry(k.key_atom_at(i)).or_insert_with(|| {
                let g = key_rows.len() as u32;
                key_rows.push(vec![k.value_at(i)]);
                g
            });
            gids.push(gid);
        }
    } else {
        let mut map: HashMap<Vec<KeyAtom>, u32> = HashMap::new();
        for i in 0..n {
            let atoms: Vec<KeyAtom> = keys.iter().map(|k| k.key_atom_at(i)).collect();
            let gid = *map.entry(atoms).or_insert_with(|| {
                let g = key_rows.len() as u32;
                key_rows.push(keys.iter().map(|k| k.value_at(i)).collect());
                g
            });
            gids.push(gid);
        }
    }
    let ng = key_rows.len();
    let mut agg_cols: Vec<Vec<Value>> = Vec::with_capacity(aggs.len());
    for (op, arg) in aggs {
        agg_cols.push(fold_one(*op, arg.as_ref(), &gids, ng)?);
    }
    Ok(key_rows
        .into_iter()
        .enumerate()
        .map(|(g, kr)| (kr, agg_cols.iter().map(|c| c[g].clone()).collect()))
        .collect())
}

/// Fold one aggregate over the whole input, slice-at-a-time per group.
fn fold_one(op: AggOp, arg: Option<&ColVec<'_>>, gids: &[u32], ng: usize) -> VResult<Vec<Value>> {
    match op {
        AggOp::CountStar => {
            let mut counts = vec![0i64; ng];
            for &g in gids {
                counts[g as usize] += 1;
            }
            Ok(counts.into_iter().map(Value::Int).collect())
        }
        AggOp::Count => {
            let col = arg.ok_or(Fallback)?;
            let mut counts = vec![0i64; ng];
            let valid = col.validity();
            for (i, &g) in gids.iter().enumerate() {
                counts[g as usize] += valid.is_valid(i) as i64;
            }
            Ok(counts.into_iter().map(Value::Int).collect())
        }
        AggOp::CountDistinct => {
            let col = arg.ok_or(Fallback)?;
            let mut sets: Vec<HashSet<KeyAtom>> = Vec::with_capacity(ng);
            sets.resize_with(ng, HashSet::new);
            let valid = col.validity();
            for (i, &g) in gids.iter().enumerate() {
                if valid.is_valid(i) {
                    sets[g as usize].insert(col.key_atom_at(i));
                }
            }
            Ok(sets
                .into_iter()
                .map(|s| Value::Int(s.len() as i64))
                .collect())
        }
        AggOp::Sum | AggOp::Avg => {
            let col = arg.ok_or(Fallback)?;
            let mut sums = vec![0.0f64; ng];
            let mut ns = vec![0i64; ng];
            // Mirror `as_f64`: floats, ints, and bools sum; everything
            // else is a scalar type error.
            macro_rules! accumulate {
                ($data:ident, $valid:ident, $as_f:expr) => {
                    for (i, &g) in gids.iter().enumerate() {
                        if $valid.is_valid(i) {
                            sums[g as usize] += $as_f($data[i]);
                            ns[g as usize] += 1;
                        }
                    }
                };
            }
            match col {
                ColVec::F64 { data, valid } => accumulate!(data, valid, |x: f64| x),
                ColVec::I64 {
                    kind: IntKind::Int,
                    data,
                    valid,
                } => accumulate!(data, valid, |x: i64| x as f64),
                ColVec::Bool { data, valid } => {
                    accumulate!(data, valid, |x: bool| x as u8 as f64)
                }
                _ => return Err(Fallback),
            }
            Ok(sums
                .into_iter()
                .zip(ns)
                .map(|(s, n)| {
                    if n == 0 {
                        Value::Null
                    } else if op == AggOp::Avg {
                        Value::Float(s / n as f64)
                    } else {
                        Value::Float(s)
                    }
                })
                .collect())
        }
        AggOp::Min | AggOp::Max => {
            let col = arg.ok_or(Fallback)?;
            let want = if op == AggOp::Min {
                Ordering::Less
            } else {
                Ordering::Greater
            };
            // Track the best lane per group; replace only on a strict
            // win so ties keep the first-seen value, like the scalar
            // accumulator. NaN would be a scalar comparison error.
            let mut best: Vec<Option<usize>> = vec![None; ng];
            let valid = col.validity();
            for (i, &g) in gids.iter().enumerate() {
                if !valid.is_valid(i) {
                    continue;
                }
                match best[g as usize] {
                    None => best[g as usize] = Some(i),
                    Some(cur) => {
                        let o = match col {
                            ColVec::F64 { data, .. } => {
                                data[i].partial_cmp(&data[cur]).ok_or(Fallback)?
                            }
                            ColVec::I64 { data, .. } => data[i].cmp(&data[cur]),
                            ColVec::Bool { data, .. } => data[i].cmp(&data[cur]),
                            ColVec::Text { data, .. } => data[i].cmp(data[cur]),
                        };
                        if o == want {
                            best[g as usize] = Some(i);
                        }
                    }
                }
            }
            if let ColVec::F64 { data, .. } = col {
                // A best-lane NaN never loses a comparison above when it
                // arrives first; scalar min/max errors on any NaN.
                for (i, &g) in gids.iter().enumerate() {
                    let _ = g;
                    if valid.is_valid(i) && data[i].is_nan() {
                        return Err(Fallback);
                    }
                }
            }
            Ok(best
                .into_iter()
                .map(|b| b.map(|i| col.value_at(i)).unwrap_or(Value::Null))
                .collect())
        }
    }
}

/// Ordering of two lanes of one key column, replicating the scalar
/// `order_cmp`: NULLs sort last (before DESC reversal), NaN sorts after
/// every other float. NaN must not compare `Equal` to non-NaN values —
/// that breaks the total order the standard sort requires.
fn lane_cmp(c: &ColVec<'_>, a: usize, b: usize) -> Ordering {
    let v = c.validity();
    match (v.is_valid(a), v.is_valid(b)) {
        (false, false) => Ordering::Equal,
        (false, true) => Ordering::Greater,
        (true, false) => Ordering::Less,
        (true, true) => match c {
            ColVec::F64 { data, .. } => match (data[a].is_nan(), data[b].is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => data[a].partial_cmp(&data[b]).unwrap_or(Ordering::Equal),
            },
            ColVec::I64 { data, .. } => data[a].cmp(&data[b]),
            ColVec::Bool { data, .. } => data[a].cmp(&data[b]),
            ColVec::Text { data, .. } => data[a].cmp(data[b]),
        },
    }
}

/// Stable index sort over one key column — the specialized single-key
/// sort: the comparator and stability match the scalar `sort_keyed`, so
/// the resulting permutation is identical, including NULL and NaN
/// placement.
pub(crate) fn sort_indices(key: &ColVec<'_>, desc: bool) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..key.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        let o = lane_cmp(key, a as usize, b as usize);
        if desc {
            o.reverse()
        } else {
            o
        }
    });
    idx
}

/// Bounded top-K over one key column: the first `k` lanes of the stable
/// sort, computed with an O(k)-memory binary heap. Ties break by lane
/// index (= input order), which is exactly what a stable sort produces,
/// so `top_k_indices(..) == sort_indices(..)[..k]` always — `lane_cmp`
/// plus the index tie-break is a total order, NaN and NULL included.
pub(crate) fn top_k_indices(key: &ColVec<'_>, desc: bool, k: usize) -> Vec<u32> {
    let n = key.len() as u32;
    if k == 0 {
        return Vec::new();
    }
    let eff = |a: u32, b: u32| -> Ordering {
        let o = lane_cmp(key, a as usize, b as usize);
        let o = if desc { o.reverse() } else { o };
        o.then(a.cmp(&b))
    };
    // Max-heap under `eff`: the root is the worst of the k kept lanes.
    let mut heap: Vec<u32> = Vec::with_capacity(k.min(key.len()));
    for i in 0..n {
        if heap.len() < k {
            heap.push(i);
            let mut c = heap.len() - 1;
            while c > 0 {
                let p = (c - 1) / 2;
                if eff(heap[c], heap[p]) == Ordering::Greater {
                    heap.swap(c, p);
                    c = p;
                } else {
                    break;
                }
            }
        } else if eff(i, heap[0]) == Ordering::Less {
            heap[0] = i;
            let mut p = 0usize;
            loop {
                let (l, r) = (2 * p + 1, 2 * p + 2);
                let mut m = p;
                if l < heap.len() && eff(heap[l], heap[m]) == Ordering::Greater {
                    m = l;
                }
                if r < heap.len() && eff(heap[r], heap[m]) == Ordering::Greater {
                    m = r;
                }
                if m == p {
                    break;
                }
                heap.swap(p, m);
                p = m;
            }
        }
    }
    heap.sort_by(|&a, &b| eff(a, b));
    heap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;

    fn f64_col(vals: &[Option<f64>]) -> ColVec<'static> {
        let mut valid = Validity::all_valid(vals.len());
        let mut data = Vec::with_capacity(vals.len());
        for (i, v) in vals.iter().enumerate() {
            match v {
                Some(f) => data.push(*f),
                None => {
                    valid.set_null(i);
                    data.push(0.0);
                }
            }
        }
        ColVec::F64 { data, valid }
    }

    #[test]
    fn validity_tracks_nulls() {
        let mut v = Validity::all_valid(130);
        assert!(v.is_valid(0) && v.is_valid(129));
        v.set_null(64);
        v.set_null(64); // idempotent
        assert!(!v.is_valid(64));
        assert!(v.is_valid(63) && v.is_valid(65));
        assert_eq!(v.nulls, 1);
    }

    #[test]
    fn fill_types_columns_and_rejects_mismatches() {
        let schema = Schema::new(vec![
            Column::new("x", DataType::Float),
            Column::new("t", DataType::Text),
        ])
        .unwrap();
        let rows: Vec<Row> = vec![
            vec![Value::Float(1.5), Value::Text("a".into())],
            vec![Value::Null, Value::Text("b".into())],
        ];
        let refs: Vec<&Row> = rows.iter().collect();
        let b = Batch::fill(&schema, &refs, &[0, 1]).unwrap();
        assert_eq!(b.len(), 2);
        let sel = [0u32, 1];
        let Evaled::Col(x) = eval(&Expr::Slot(0), &b, &sel, &no_ctx()).unwrap() else {
            panic!("slot gathers a column");
        };
        assert_eq!(x.value_at(0), Value::Float(1.5));
        assert_eq!(x.value_at(1), Value::Null);

        // A stored value that contradicts the declared type aborts.
        let bad: Vec<Row> = vec![vec![Value::Int(3), Value::Text("a".into())]];
        let refs: Vec<&Row> = bad.iter().collect();
        assert!(Batch::fill(&schema, &refs, &[0]).is_err());
    }

    fn no_ctx() -> VecCtx<'static> {
        VecCtx {
            params: &[],
            fns: &[],
        }
    }

    fn slot_gt(slot: usize, lit: f64) -> Expr {
        Expr::Binary {
            op: BinOp::Gt,
            left: Box::new(Expr::Slot(slot)),
            right: Box::new(Expr::Literal(Value::Float(lit))),
        }
    }

    #[test]
    fn filter_drops_false_and_null_lanes() {
        let schema = Schema::new(vec![Column::new("x", DataType::Float)]).unwrap();
        let rows: Vec<Row> = vec![
            vec![Value::Float(1.0)],
            vec![Value::Null],
            vec![Value::Float(3.0)],
            vec![Value::Float(0.5)],
        ];
        let refs: Vec<&Row> = rows.iter().collect();
        let b = Batch::fill(&schema, &refs, &[0]).unwrap();
        let sel = filter(Some(&slot_gt(0, 0.75)), &b, &no_ctx()).unwrap();
        assert_eq!(sel, vec![0, 2]);
        assert_eq!(filter(None, &b, &no_ctx()).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn logical_and_evaluates_right_only_on_undecided_lanes() {
        // x > 1 AND (10 / x) > 4 — lane x=0 fails the left side, so the
        // division by zero on its right side must never be evaluated
        // (the scalar executor short-circuits it the same way).
        let schema = Schema::new(vec![Column::new("x", DataType::Float)]).unwrap();
        let rows: Vec<Row> = vec![
            vec![Value::Float(0.0)],
            vec![Value::Float(2.0)],
            vec![Value::Float(4.0)],
        ];
        let refs: Vec<&Row> = rows.iter().collect();
        let b = Batch::fill(&schema, &refs, &[0]).unwrap();
        let pred = Expr::Binary {
            op: BinOp::And,
            left: Box::new(slot_gt(0, 1.0)),
            right: Box::new(Expr::Binary {
                op: BinOp::Gt,
                left: Box::new(Expr::Binary {
                    op: BinOp::Div,
                    left: Box::new(Expr::Literal(Value::Float(10.0))),
                    right: Box::new(Expr::Slot(0)),
                }),
                right: Box::new(Expr::Literal(Value::Float(4.0))),
            }),
        };
        assert_eq!(filter(Some(&pred), &b, &no_ctx()).unwrap(), vec![1]);
    }

    #[test]
    fn grouped_fold_first_seen_order_and_float_canonicalization() {
        // -0.0 and 0.0 must land in one bucket (first-seen value wins).
        let key = f64_col(&[Some(-0.0), Some(1.0), Some(0.0), None, None]);
        let arg = f64_col(&[Some(10.0), Some(20.0), Some(30.0), Some(40.0), None]);
        let groups = grouped_fold(
            std::slice::from_ref(&key),
            &[(AggOp::Sum, Some(arg)), (AggOp::CountStar, None)],
            5,
        )
        .unwrap();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, vec![Value::Float(-0.0)]);
        assert_eq!(groups[0].1, vec![Value::Float(40.0), Value::Int(2)]);
        assert_eq!(groups[1].0, vec![Value::Float(1.0)]);
        assert_eq!(groups[2].0, vec![Value::Null]);
        // sum over the NULL group's one non-NULL argument; count(*) = 2.
        assert_eq!(groups[2].1, vec![Value::Float(40.0), Value::Int(2)]);
    }

    #[test]
    fn grouped_fold_no_keys_yields_one_group_over_empty_input() {
        let groups = grouped_fold(&[], &[(AggOp::CountStar, None)], 0).unwrap();
        assert_eq!(groups, vec![(vec![], vec![Value::Int(0)])]);
    }

    #[test]
    fn min_max_keep_first_seen_on_ties_and_reject_nan() {
        let col = f64_col(&[Some(2.0), Some(-0.0), Some(0.0), None]);
        let gids = vec![0u32; 4];
        let mins = fold_one(AggOp::Min, Some(&col), &gids, 1).unwrap();
        // -0.0 arrives before the tying 0.0 and must be kept.
        assert!(matches!(mins[0], Value::Float(f) if f == 0.0 && f.is_sign_negative()));
        let nan = f64_col(&[Some(1.0), Some(f64::NAN)]);
        assert!(fold_one(AggOp::Min, Some(&nan), &[0, 0], 1).is_err());
    }

    #[test]
    fn sort_and_top_k_agree_including_ties_nulls_and_nan() {
        let key = f64_col(&[
            Some(3.0),
            None,
            Some(1.0),
            Some(3.0),
            Some(-1.0),
            None,
            Some(1.0),
            Some(f64::NAN),
        ]);
        for desc in [false, true] {
            let sorted = sort_indices(&key, desc);
            for k in 0..=key.len() {
                let topk = top_k_indices(&key, desc, k);
                assert_eq!(topk, sorted[..k], "desc={desc} k={k}");
            }
        }
        // ASC: values first, ties in input order, then NaN, then NULLs.
        assert_eq!(sort_indices(&key, false), vec![4, 2, 6, 0, 3, 7, 1, 5]);
        // DESC reverses everything, NULLs included (matches scalar sort_keyed).
        assert_eq!(sort_indices(&key, true), vec![1, 5, 7, 0, 3, 2, 6, 4]);
    }

    #[test]
    fn arith_int_columns_stay_integer_and_div_by_zero_falls_back() {
        let schema = Schema::new(vec![Column::new("n", DataType::Int)]).unwrap();
        let rows: Vec<Row> = vec![vec![Value::Int(7)], vec![Value::Int(-4)]];
        let refs: Vec<&Row> = rows.iter().collect();
        let b = Batch::fill(&schema, &refs, &[0]).unwrap();
        let sel = [0u32, 1];
        let double = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::Slot(0)),
            right: Box::new(Expr::Slot(0)),
        };
        let col = eval(&double, &b, &sel, &no_ctx())
            .unwrap()
            .materialize(2)
            .unwrap();
        assert_eq!(col.value_at(0), Value::Int(14));
        assert_eq!(col.value_at(1), Value::Int(-8));
        let div = Expr::Binary {
            op: BinOp::Div,
            left: Box::new(Expr::Literal(Value::Int(1))),
            right: Box::new(Expr::Binary {
                op: BinOp::Sub,
                left: Box::new(Expr::Slot(0)),
                right: Box::new(Expr::Slot(0)),
            }),
        };
        assert!(eval(&div, &b, &sel, &no_ctx()).is_err());
    }
}
