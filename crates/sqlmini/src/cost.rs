//! The cost model: given a statement's WHERE clause, the table's
//! secondary indexes and its [`TableStats`], pick the cheapest access
//! path (sequential scan vs index point/range scan) and decide when a
//! hash join should replace the nested-loop join.
//!
//! Costing is deliberately small — row counts, per-column NDV and
//! numeric min/max are the only inputs, as in the classic textbook
//! model: a sequential scan costs one unit per row; an index scan costs
//! a logarithmic descent plus a re-check unit per estimated candidate.

use crate::ast::{BinOp, Expr};
use crate::index::KeySpace;
use crate::stats::{Bound, TableStats};
use crate::table::Schema;

/// Per-candidate overhead of an index scan relative to one sequential
/// row visit: the probe result is re-checked against the snapshot and
/// the full WHERE clause, and candidates are visited out of cache order.
const RECHECK_FACTOR: f64 = 2.0;

/// A chosen index access path: the index to probe and the bound value
/// expressions (slot-free, evaluated once per execution). Equality sets
/// both bounds to the same expression; strict range predicates widen to
/// inclusive probes (the WHERE re-check restores exactness).
#[derive(Debug, Clone)]
pub(crate) struct IndexChoice {
    /// Name of the chosen index.
    pub(crate) index_name: String,
    /// Indexed column ordinal (full table layout).
    pub(crate) column: usize,
    /// The column's key space.
    pub(crate) space: KeySpace,
    /// Inclusive lower bound value expression.
    pub(crate) lo: Option<Expr>,
    /// Inclusive upper bound value expression.
    pub(crate) hi: Option<Expr>,
    /// The conjuncts backing the probe, rendered for EXPLAIN.
    pub(crate) conds: Vec<(usize, BinOp, Expr)>,
}

/// An expression the executor can evaluate without a row: no column
/// slots, no function calls (which may re-enter the database), no
/// aggregate references. Bound expressions must be const so the probe
/// can run once, before the scan.
pub(crate) fn const_expr(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) | Expr::Param(_) => true,
        Expr::Unary { expr, .. } => const_expr(expr),
        Expr::Binary { left, right, .. } => const_expr(left) && const_expr(right),
        Expr::Cast { expr, .. } => const_expr(expr),
        Expr::IsNull { expr, .. } => const_expr(expr),
        Expr::InList { expr, list, .. } => const_expr(expr) && list.iter().all(const_expr),
        Expr::Slot(_)
        | Expr::Column { .. }
        | Expr::Function { .. }
        | Expr::ScalarCall { .. }
        | Expr::GroupKey(_)
        | Expr::Agg(_) => false,
    }
}

/// Split a WHERE clause into its top-level AND conjuncts.
fn conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    match e {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            conjuncts(left, out);
            conjuncts(right, out);
        }
        other => out.push(other),
    }
}

/// Mirror a comparison so the slot reads on the left: `5 < k` ⇒ `k > 5`.
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// The sargable conjuncts of a WHERE clause: `(slot, op, value)` triples
/// where `op` compares a bare column slot against a const expression,
/// normalized with the slot on the left.
pub(crate) fn sargable_conjuncts(where_clause: &Expr) -> Vec<(usize, BinOp, Expr)> {
    let mut parts = Vec::new();
    conjuncts(where_clause, &mut parts);
    let mut out = Vec::new();
    for c in parts {
        let Expr::Binary { op, left, right } = c else {
            continue;
        };
        if !matches!(
            op,
            BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        ) {
            continue;
        }
        match (&**left, &**right) {
            (Expr::Slot(s), v) if const_expr(v) => out.push((*s, *op, v.clone())),
            (v, Expr::Slot(s)) if const_expr(v) => out.push((*s, flip(*op), v.clone())),
            _ => {}
        }
    }
    out
}

/// The `Slot(a) = Slot(b)` top-level conjuncts of a WHERE clause — hash
/// equi-join candidates when `a` and `b` land in different tables.
pub(crate) fn equi_slot_pairs(where_clause: &Expr) -> Vec<(usize, usize)> {
    let mut parts = Vec::new();
    conjuncts(where_clause, &mut parts);
    parts
        .iter()
        .filter_map(|c| match c {
            Expr::Binary {
                op: BinOp::Eq,
                left,
                right,
            } => match (&**left, &**right) {
                (Expr::Slot(a), Expr::Slot(b)) => Some((*a, *b)),
                _ => None,
            },
            _ => None,
        })
        .collect()
}

/// The numeric value of a literal bound, when known at plan time.
fn literal_f64(e: &Expr) -> Option<f64> {
    match e {
        Expr::Literal(v) => match v {
            crate::value::Value::Int(i) => Some(*i as f64),
            crate::value::Value::Float(f) if !f.is_nan() => Some(*f),
            crate::value::Value::Timestamp(t) | crate::value::Value::Interval(t) => Some(*t as f64),
            _ => None,
        },
        Expr::Unary {
            op: crate::ast::UnOp::Neg,
            expr,
        } => literal_f64(expr).map(|f| -f),
        _ => None,
    }
}

/// Pick the cheapest access path for a single-table scan: `None` keeps
/// the sequential scan, `Some` names the index to probe and its bounds.
/// `indexes` lists the table's indexes as `(name, column ordinal)`.
pub(crate) fn choose_access(
    where_clause: Option<&Expr>,
    schema: &Schema,
    indexes: &[(String, usize)],
    stats: &TableStats,
) -> Option<IndexChoice> {
    let sargs = sargable_conjuncts(where_clause?);
    if sargs.is_empty() || indexes.is_empty() {
        return None;
    }
    let seq_cost = stats.row_count as f64;
    let mut best: Option<(f64, IndexChoice)> = None;
    for (name, col) in indexes {
        let Some(space) = KeySpace::of(schema.columns[*col].dtype) else {
            continue;
        };
        let mut eq = None;
        let mut lo = None;
        let mut hi = None;
        let mut conds = Vec::new();
        for (s, op, v) in &sargs {
            if s != col {
                continue;
            }
            let slot = match op {
                BinOp::Eq => &mut eq,
                BinOp::Lt | BinOp::Le => &mut hi,
                BinOp::Gt | BinOp::Ge => &mut lo,
                _ => continue,
            };
            if slot.is_none() {
                *slot = Some(v.clone());
                conds.push((*s, *op, v.clone()));
            }
        }
        let est = if let Some(e) = &eq {
            // An equality bound overrides any range bounds on the same
            // column (the re-check keeps the result exact either way).
            lo = Some(e.clone());
            hi = Some(e.clone());
            conds.retain(|(_, op, _)| *op == BinOp::Eq);
            stats.est_eq_rows(*col)
        } else if lo.is_some() || hi.is_some() {
            let bound = |e: &Option<Expr>| match e {
                None => Bound::None,
                Some(e) => literal_f64(e).map_or(Bound::Unknown, Bound::Known),
            };
            stats.est_range_rows(*col, bound(&lo), bound(&hi))
        } else {
            continue; // no sargable conjunct on this index's column
        };
        let cost = (stats.row_count.max(2) as f64).log2() + est * RECHECK_FACTOR;
        let improves = match &best {
            None => true,
            Some((c, _)) => cost < *c,
        };
        if cost < seq_cost && improves {
            best = Some((
                cost,
                IndexChoice {
                    index_name: name.clone(),
                    column: *col,
                    space,
                    lo,
                    hi,
                    conds,
                },
            ));
        }
    }
    best.map(|(_, choice)| choice)
}

/// Should an equi-join build a hash table instead of nested-looping?
/// Nested cost is the cross product; hash cost is one pass over each
/// side plus build overhead.
pub(crate) fn hash_join_beats_nested(left_rows: u64, right_rows: u64) -> bool {
    let nested = left_rows as f64 * right_rows as f64;
    let hash = (left_rows + right_rows) as f64 * 2.0 + 16.0;
    nested > hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ColumnStats;
    use crate::table::Column;
    use crate::value::{DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("x", DataType::Float),
        ])
        .unwrap()
    }

    fn stats(n: u64, ndv: u64) -> TableStats {
        TableStats {
            row_count: n,
            columns: vec![
                ColumnStats {
                    ndv,
                    min: Some(0.0),
                    max: Some(n as f64),
                    null_count: 0,
                },
                ColumnStats::default(),
            ],
            mods_at_analyze: 0,
        }
    }

    fn eq_where(slot: usize, v: i64) -> Expr {
        Expr::Binary {
            op: BinOp::Eq,
            left: Box::new(Expr::Slot(slot)),
            right: Box::new(Expr::Literal(Value::Int(v))),
        }
    }

    #[test]
    fn selective_point_lookup_takes_the_index() {
        let w = eq_where(0, 7);
        let ix = vec![("t_k_idx".to_string(), 0usize)];
        let choice = choose_access(Some(&w), &schema(), &ix, &stats(100_000, 100_000)).unwrap();
        assert_eq!(choice.index_name, "t_k_idx");
        assert!(choice.lo.is_some() && choice.hi.is_some());
    }

    #[test]
    fn tiny_tables_and_unindexed_columns_stay_sequential() {
        let w = eq_where(0, 7);
        let ix = vec![("t_k_idx".to_string(), 0usize)];
        assert!(choose_access(Some(&w), &schema(), &ix, &stats(4, 4)).is_none());
        let w_other = eq_where(1, 7);
        assert!(choose_access(Some(&w_other), &schema(), &ix, &stats(100_000, 9)).is_none());
    }

    #[test]
    fn flipped_and_range_conjuncts_normalize() {
        // 5 < k AND k <= 9  (5 on the left flips to k > 5)
        let w = Expr::Binary {
            op: BinOp::And,
            left: Box::new(Expr::Binary {
                op: BinOp::Lt,
                left: Box::new(Expr::Literal(Value::Int(5))),
                right: Box::new(Expr::Slot(0)),
            }),
            right: Box::new(Expr::Binary {
                op: BinOp::Le,
                left: Box::new(Expr::Slot(0)),
                right: Box::new(Expr::Literal(Value::Int(9))),
            }),
        };
        let sargs = sargable_conjuncts(&w);
        assert_eq!(sargs.len(), 2);
        assert_eq!(sargs[0].1, BinOp::Gt);
        let ix = vec![("i".to_string(), 0usize)];
        let choice = choose_access(Some(&w), &schema(), &ix, &stats(100_000, 50_000)).unwrap();
        assert!(choice.lo.is_some() && choice.hi.is_some());
    }

    #[test]
    fn param_bounded_ranges_still_take_the_index() {
        // k >= $1 AND k < $2 — bound values unknown until execution must
        // not estimate as a full-table range.
        let w = Expr::Binary {
            op: BinOp::And,
            left: Box::new(Expr::Binary {
                op: BinOp::Ge,
                left: Box::new(Expr::Slot(0)),
                right: Box::new(Expr::Param(0)),
            }),
            right: Box::new(Expr::Binary {
                op: BinOp::Lt,
                left: Box::new(Expr::Slot(0)),
                right: Box::new(Expr::Param(1)),
            }),
        };
        let ix = vec![("i".to_string(), 0usize)];
        let choice = choose_access(Some(&w), &schema(), &ix, &stats(100_000, 50_000)).unwrap();
        assert!(choice.lo.is_some() && choice.hi.is_some());
    }

    #[test]
    fn non_const_bounds_are_not_sargable() {
        // k = x (another column): not a probe.
        let w = Expr::Binary {
            op: BinOp::Eq,
            left: Box::new(Expr::Slot(0)),
            right: Box::new(Expr::Slot(1)),
        };
        assert!(sargable_conjuncts(&w).is_empty());
    }

    #[test]
    fn hash_join_threshold() {
        assert!(hash_join_beats_nested(100, 100));
        assert!(!hash_join_beats_nested(2, 2));
        assert!(!hash_join_beats_nested(0, 1_000_000));
    }
}
