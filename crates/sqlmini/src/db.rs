//! The [`Database`]: table storage, function registries, statement cache.
//!
//! All methods take `&self`; interior mutability with per-table locks lets
//! UDFs re-enter the database (e.g. `fmu_parest` executing its `input_sql`)
//! without deadlocking, because the executor never holds a table lock while
//! a UDF runs — scans snapshot their input first.
//!
//! The statement cache implements the paper's "prepared SQL queries"
//! optimization (§7): repeated query texts skip the parser. It is keyed on
//! the query text only — `$n` bind values vary per call — and bounded by an
//! LRU policy (default 256 entries, see
//! [`Database::set_stmt_cache_capacity`]) so a workload of millions of
//! distinct texts cannot leak memory.
//!
//! Each cached statement also carries its compiled physical plan
//! (built lazily on first execution): repeated executions reuse the
//! shared `Arc<PhysicalPlan>` without re-resolving a single expression.
//! Plans are invalidated by DDL through a schema epoch that CREATE/DROP
//! TABLE bump; `plans_built` / `plan_cache_hits` / `agg_evals` counters
//! surface the planner's behaviour through `pgfmu_stats()`.
//!
//! The client surface follows the PostgreSQL extended protocol shape:
//! [`Database::prepare`] returns a [`Statement`] handle; binding values to
//! its `$1..$n` placeholders with [`Statement::query`] (or streaming them
//! with [`Statement::query_rows`]) skips both re-parsing and literal
//! quoting entirely.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;

use parking_lot::{Mutex, RwLock};

use crate::ast::{self, Stmt};
use crate::decode::FromRow;
use crate::error::{Result, SqlError};
use crate::exec::{self, Rows};
use crate::functions::{self, ScalarFn, TableFn};
use crate::parser;
use crate::plan::{self, PhysicalPlan};
use crate::stats::{self, TableStats};
use crate::table::{self, QueryResult, Row, Snapshot, Table, UNCOMMITTED};
use crate::value::Value;

/// Default bound on the number of cached prepared statements.
pub const DEFAULT_STMT_CACHE_CAPACITY: usize = 256;

/// One parsed statement plus its lazily compiled physical plan, shared by
/// every [`Statement`] handle with the same text.
pub(crate) struct Prepared {
    stmt: Arc<Stmt>,
    n_params: usize,
    /// `(schema epoch at compile time, compiled plan)`. Recompiled when
    /// the database's schema epoch has moved (DDL ran).
    plan: Mutex<Option<(u64, Arc<PhysicalPlan>)>>,
}

impl Prepared {
    fn new(stmt: Arc<Stmt>, n_params: usize) -> Self {
        Prepared {
            stmt,
            n_params,
            plan: Mutex::new(None),
        }
    }
}

struct CacheEntry {
    prepared: Arc<Prepared>,
    /// Last-use tick for LRU eviction.
    tick: u64,
}

/// Text-keyed LRU statement cache.
struct StmtCache {
    map: HashMap<String, CacheEntry>,
    tick: u64,
    capacity: usize,
}

impl StmtCache {
    fn new(capacity: usize) -> Self {
        StmtCache {
            map: HashMap::new(),
            tick: 0,
            capacity,
        }
    }

    fn get(&mut self, sql: &str) -> Option<Arc<Prepared>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(sql).map(|e| {
            e.tick = tick;
            Arc::clone(&e.prepared)
        })
    }

    fn insert(&mut self, sql: String, prepared: Arc<Prepared>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        self.map.insert(sql, CacheEntry { prepared, tick });
        self.shrink_to(self.capacity);
    }

    /// Evict least-recently-used entries until at most `cap` remain. The
    /// linear scan is fine at the default capacity of a few hundred.
    fn shrink_to(&mut self, cap: usize) {
        while self.map.len() > cap {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
            } else {
                break;
            }
        }
    }
}

/// A prepared statement: a parsed plan bound to its database, executable
/// any number of times with different `$n` parameter values.
///
/// ```
/// use pgfmu_sqlmini::{Database, Value};
///
/// let db = Database::new();
/// db.execute("CREATE TABLE m (ts timestamp, x float)").unwrap();
/// let insert = db.prepare("INSERT INTO m VALUES ($1, $2)").unwrap();
/// insert.query(&["2015-02-01 00:00".into(), 20.75.into()]).unwrap();
/// insert.query(&["2015-02-01 01:00".into(), 23.62.into()]).unwrap();
/// let hot = db.prepare("SELECT x FROM m WHERE x > $1").unwrap();
/// assert_eq!(hot.query(&[21.0.into()]).unwrap().len(), 1);
/// ```
///
/// Placeholders bind anywhere an expression is legal, including grouped
/// aggregation clauses — the plan is cached once, the HAVING threshold
/// varies per execution:
///
/// ```
/// use pgfmu_sqlmini::{params, Database};
///
/// let db = Database::new();
/// db.execute("CREATE TABLE m (site text, x float)").unwrap();
/// db.execute("INSERT INTO m VALUES ('a', 1.0), ('a', 2.0), ('b', 9.0)").unwrap();
/// let per_site = db
///     .prepare("SELECT site, sum(x) FROM m GROUP BY site HAVING sum(x) > $1 ORDER BY site")
///     .unwrap();
/// let rows: Vec<(String, f64)> = per_site.query_as(params![2.0]).unwrap();
/// assert_eq!(rows, vec![("a".into(), 3.0), ("b".into(), 9.0)]);
/// let rows: Vec<(String, f64)> = per_site.query_as(params![5.0]).unwrap();
/// assert_eq!(rows, vec![("b".into(), 9.0)]);
/// ```
pub struct Statement<'db> {
    db: &'db Database,
    prepared: Arc<Prepared>,
}

impl std::fmt::Debug for Statement<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Statement")
            .field("n_params", &self.prepared.n_params)
            .finish_non_exhaustive()
    }
}

impl<'db> Statement<'db> {
    /// The number of `$n` parameters this statement requires.
    pub fn n_params(&self) -> usize {
        self.prepared.n_params
    }

    fn check_binds(&self, params: &[Value]) -> Result<()> {
        if params.len() != self.prepared.n_params {
            return Err(SqlError::Execution(format!(
                "bind message supplies {} parameters, but prepared statement requires {}",
                params.len(),
                self.prepared.n_params
            )));
        }
        Ok(())
    }

    /// Execute with the given parameter values, materializing the result.
    pub fn query(&self, params: &[Value]) -> Result<QueryResult> {
        self.query_rows(params)?.into_result()
    }

    /// Execute with the given parameter values, streaming the result rows.
    /// Re-executions bind against the shared compiled plan — no re-parse,
    /// no re-planning, no expression clones.
    ///
    /// A plain single-table `SELECT` whose expressions cannot re-enter
    /// the database streams **zero-copy**: the cursor pins an MVCC
    /// snapshot of the scanned table and refills its row buffer in short
    /// batches under the table's read guard, holding no lock between
    /// batches. The table stays fully writable — even from the same
    /// thread, mid-stream — and the cursor keeps seeing the consistent
    /// snapshot it pinned; writes committed after the cursor opened are
    /// invisible to it. Dropping the cursor releases its snapshot pin
    /// immediately.
    pub fn query_rows(&self, params: &[Value]) -> Result<Rows<'db>> {
        // An aborted transaction rejects statements before they are even
        // planned (PostgreSQL wording), and any pre-execution failure —
        // bad bind count, plan-time error such as an unknown function —
        // aborts an open transaction exactly like an execution failure.
        if !matches!(*self.prepared.stmt, ast::Stmt::Commit | ast::Stmt::Rollback) {
            self.db.check_txn_ok()?;
        }
        let run = || {
            self.check_binds(params)?;
            let plan = self.db.plan_for(&self.prepared)?;
            exec::execute(self.db, &self.prepared.stmt, &plan, params)
        };
        run().inspect_err(|_| self.db.abort_txn())
    }

    /// Execute and decode each row into `T` (scalars, `Option`, tuples —
    /// see [`FromRow`]). The result is materialized through the bulk
    /// scan path (one guard acquisition) and decoded in place — the
    /// output is a `Vec` either way, so nothing is saved by streaming.
    pub fn query_as<T: FromRow>(&self, params: &[Value]) -> Result<Vec<T>> {
        let q = self.query(params)?;
        q.rows.iter().map(|row| T::from_row(row)).collect()
    }
}

/// One undo-log record of an open transaction, applied in reverse on
/// ROLLBACK. Each record maps onto one statement's worth of the existing
/// error-before-mutation DML, so replaying the log restores the exact
/// pre-transaction state.
pub(crate) enum UndoEntry {
    /// A DML statement: versions it created (to tombstone) and versions
    /// it end-stamped (to resurrect), by index into the table's heap.
    /// The indices stay valid because the transaction pins the table
    /// against compaction.
    Write {
        handle: Arc<RwLock<Table>>,
        created: Vec<usize>,
        ended: Vec<usize>,
    },
    /// `CREATE TABLE` ran: drop it again on rollback.
    CreateTable { name: String },
    /// `DROP TABLE` ran: the displaced handle, reinstated on rollback.
    DropTable {
        name: String,
        handle: Arc<RwLock<Table>>,
    },
    /// `CREATE INDEX` ran: drop it again on rollback.
    CreateIndex {
        table: Arc<RwLock<Table>>,
        name: String,
    },
    /// `DROP INDEX` ran: the index's shape, rebuilt on rollback.
    DropIndex {
        table: Arc<RwLock<Table>>,
        name: String,
        column: String,
        unique: bool,
    },
}

/// The state of one session's open transaction. Sessions are threads:
/// the [`Database`] keys open transactions by [`ThreadId`].
struct Txn {
    /// Transaction id, stamped as `UNCOMMITTED | txid` on pending writes.
    txid: u64,
    /// Snapshot pinned at BEGIN — every statement in the transaction
    /// reads at this timestamp (snapshot isolation).
    ts: u64,
    /// Set when a statement errored; everything but COMMIT/ROLLBACK is
    /// then rejected, and COMMIT rolls back.
    aborted: bool,
    /// Schema epoch at BEGIN plus the number of epoch bumps this
    /// transaction performed — used to restore the epoch exactly when a
    /// ROLLBACK undoes DDL.
    epoch0: u64,
    ddl_bumps: u64,
    /// Undo log, applied in reverse on rollback.
    undo: Vec<UndoEntry>,
    /// Tables pinned against compaction (once per recorded write).
    pinned: Vec<Arc<RwLock<Table>>>,
}

/// The write stamp a DML statement should put on the versions it creates
/// and ends: a freshly allocated commit timestamp when auto-committing,
/// or the owning transaction's `UNCOMMITTED | txid` mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WriteTxn {
    /// No open transaction: the statement commits by itself.
    Auto,
    /// Inside `BEGIN … COMMIT`: stamp with the transaction id and record
    /// an undo entry.
    Txn { txid: u64 },
}

/// One table's pending stamps: the touched table plus the rids the
/// transaction created and ended in it.
type PendingStamps = (Arc<RwLock<Table>>, Vec<usize>, Vec<usize>);

/// One transaction's stamp set, published to the group-commit queue: the
/// leader that drains the queue stamps every request under one guard
/// acquisition and hands each its commit timestamp through `done`.
struct CommitReq {
    /// Distinct touched tables (merged per table) with the rids the
    /// transaction created and ended.
    writes: Vec<PendingStamps>,
    /// The committing transaction's id (its pending-stamp mark).
    txid: u64,
    /// Set to the commit timestamp once a leader has stamped this
    /// request; the submitting thread waits on `cv` for it.
    done: std::sync::Mutex<Option<u64>>,
    cv: std::sync::Condvar,
}

/// An in-memory SQL database with UDF support.
pub struct Database {
    tables: RwLock<HashMap<String, Arc<RwLock<Table>>>>,
    scalars: RwLock<HashMap<String, ScalarFn>>,
    table_fns: RwLock<HashMap<String, TableFn>>,
    /// Builtin names the planner may evaluate natively; cleared for a
    /// name when it is re-registered as an ordinary UDF.
    intrinsics: RwLock<HashMap<String, functions::Intrinsic>>,
    stmt_cache: Mutex<StmtCache>,
    udf_counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
    parses: AtomicU64,
    cache_hits: AtomicU64,
    /// Bumped by CREATE/DROP TABLE; cached plans compiled under an older
    /// epoch are recompiled on their next execution.
    schema_epoch: AtomicU64,
    plans_built: AtomicU64,
    plan_cache_hits: AtomicU64,
    agg_evals: AtomicU64,
    rows_scanned: AtomicU64,
    scans_zero_copy: AtomicU64,
    scan_fallbacks: AtomicU64,
    /// The commit clock. A statement's snapshot is the clock value when
    /// it starts; each committing write advances the clock and stamps its
    /// versions with the new value, so writes are invisible to snapshots
    /// pinned before them.
    clock: AtomicU64,
    /// Transaction-id allocator (ids start at 1; 0 means "no txn").
    txid_gen: AtomicU64,
    /// Open transactions by session (= thread).
    txns: Mutex<HashMap<ThreadId, Txn>>,
    /// Fast-path count of open transactions: when 0, per-statement
    /// transaction lookups are skipped entirely.
    txn_count: AtomicU64,
    /// Snapshot timestamps pinned by open transactions (refcounted).
    /// The garbage collector's watermark is the oldest key.
    pinned_snapshots: Mutex<BTreeMap<u64, usize>>,
    txns_committed: AtomicU64,
    txns_rolled_back: AtomicU64,
    versions_gc: AtomicU64,
    /// Planner statistics per table (lower-case name), refreshed by
    /// `ANALYZE` / [`Database::analyze`] and automatically when a table's
    /// churn since the last pass crosses the staleness threshold.
    table_stats: RwLock<HashMap<String, TableStats>>,
    index_scans: AtomicU64,
    seq_scans: AtomicU64,
    hash_joins: AtomicU64,
    analyze_runs: AtomicU64,
    /// Fleet-execution counters (reported by the embedding layer): tasks
    /// retired on pooled workers, the high-water pool width, and the sum
    /// of per-task wall time in nanoseconds.
    fleet_tasks: AtomicU64,
    fleet_workers: AtomicU64,
    fleet_task_ns: AtomicU64,
    /// Planner toggles (all default on). Turning one off pins the
    /// pessimistic plan shape — sequential scans / nested loops /
    /// tuple-at-a-time execution — which the equivalence tests and
    /// benchmarks use as the baseline side.
    index_access: AtomicBool,
    hash_join: AtomicBool,
    vectorized: AtomicBool,
    /// Columnar-execution counters: batches materialized from the
    /// zero-copy scan, vectorized operator executions, and statements
    /// that were classified batch-eligible at plan time but fell back
    /// to the scalar executor.
    batches_filled: AtomicU64,
    vectorized_ops: AtomicU64,
    vectorized_fallbacks: AtomicU64,
    /// Version shards per table, fixed at database creation and applied
    /// to every table as it is registered. `1` reproduces the single-
    /// arena behaviour bit-for-bit (the `PGFMU_TABLE_SHARDS=1` escape
    /// hatch); larger values give disjoint-row writers independent
    /// shard locks.
    table_shards: usize,
    /// Times a writer's home shard was contended and it had to block
    /// (the fast path is an uncontended `try_write`).
    write_shard_waits: AtomicU64,
    /// Group-commit drain rounds, and how many requests rode along in a
    /// round someone else led (`batched += round_size - 1`).
    group_commits: AtomicU64,
    group_commit_batched: AtomicU64,
    /// Pending commit requests awaiting a leader, and the leader badge:
    /// whoever `try_lock`s it drains the queue for everyone.
    commit_queue: Mutex<Vec<Arc<CommitReq>>>,
    commit_leader: Mutex<()>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Create a database with the built-in function set registered.
    /// Tables are sharded `next_pow2(min(cores, 16))` ways, overridable
    /// with `PGFMU_TABLE_SHARDS` (clamped to a power of two in
    /// `[1, 64]`; `1` reproduces the unsharded behaviour exactly).
    pub fn new() -> Self {
        Self::with_table_shards(Self::default_table_shards())
    }

    /// Shard count for [`Database::new`]: the `PGFMU_TABLE_SHARDS`
    /// override when set, else `next_pow2(min(cores, 16))`.
    fn default_table_shards() -> usize {
        if let Ok(v) = std::env::var("PGFMU_TABLE_SHARDS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.clamp(1, 64).next_power_of_two();
            }
        }
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        cores.min(16).next_power_of_two()
    }

    /// Create a database whose tables are sharded `shards` ways
    /// (rounded up to a power of two, clamped to `[1, 64]`). Tests and
    /// benchmarks use this instead of the environment variable so
    /// parallel test binaries don't race on `set_var`.
    pub fn with_table_shards(shards: usize) -> Self {
        let db = Database {
            tables: RwLock::new(HashMap::new()),
            scalars: RwLock::new(HashMap::new()),
            table_fns: RwLock::new(HashMap::new()),
            intrinsics: RwLock::new(HashMap::new()),
            stmt_cache: Mutex::new(StmtCache::new(DEFAULT_STMT_CACHE_CAPACITY)),
            udf_counters: RwLock::new(HashMap::new()),
            parses: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            schema_epoch: AtomicU64::new(0),
            plans_built: AtomicU64::new(0),
            plan_cache_hits: AtomicU64::new(0),
            agg_evals: AtomicU64::new(0),
            rows_scanned: AtomicU64::new(0),
            scans_zero_copy: AtomicU64::new(0),
            scan_fallbacks: AtomicU64::new(0),
            clock: AtomicU64::new(1),
            txid_gen: AtomicU64::new(0),
            txns: Mutex::new(HashMap::new()),
            txn_count: AtomicU64::new(0),
            pinned_snapshots: Mutex::new(BTreeMap::new()),
            txns_committed: AtomicU64::new(0),
            txns_rolled_back: AtomicU64::new(0),
            versions_gc: AtomicU64::new(0),
            table_stats: RwLock::new(HashMap::new()),
            index_scans: AtomicU64::new(0),
            seq_scans: AtomicU64::new(0),
            hash_joins: AtomicU64::new(0),
            analyze_runs: AtomicU64::new(0),
            fleet_tasks: AtomicU64::new(0),
            fleet_workers: AtomicU64::new(0),
            fleet_task_ns: AtomicU64::new(0),
            index_access: AtomicBool::new(true),
            hash_join: AtomicBool::new(true),
            // Default on; `PGFMU_VECTORIZED=0` starts every database
            // scalar-only so CI can sweep the whole suite both ways
            // (mirrors the `PGFMU_FLEET_WORKERS` matrix convention).
            vectorized: AtomicBool::new(std::env::var("PGFMU_VECTORIZED").as_deref() != Ok("0")),
            batches_filled: AtomicU64::new(0),
            vectorized_ops: AtomicU64::new(0),
            vectorized_fallbacks: AtomicU64::new(0),
            table_shards: shards.clamp(1, 64).next_power_of_two(),
            write_shard_waits: AtomicU64::new(0),
            group_commits: AtomicU64::new(0),
            group_commit_batched: AtomicU64::new(0),
            commit_queue: Mutex::new(Vec::new()),
            commit_leader: Mutex::new(()),
        };
        functions::register_builtin_scalars(&db);
        functions::register_builtin_table_fns(&db);
        db
    }

    // ---- tables ------------------------------------------------------------

    /// Create a table; errors if the name is taken.
    pub fn create_table(&self, name: &str, table: Table) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut table = table;
        // Safe to resize here: the handle is not shared until inserted.
        table.set_shard_count(self.table_shards);
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(SqlError::Constraint(format!(
                "relation \"{key}\" already exists"
            )));
        }
        tables.insert(key, Arc::new(RwLock::new(table)));
        self.schema_epoch.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Drop a table; errors if missing. The table's secondary indexes go
    /// with it (they live inside the [`Table`]), as do its cached
    /// planner statistics.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let removed = self.tables.write().remove(&key);
        match removed {
            Some(_) => {
                self.table_stats.write().remove(&key);
                self.schema_epoch.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            None => Err(SqlError::UnknownTable(key)),
        }
    }

    /// Handle to a table for direct (non-SQL) access.
    pub fn get_table(&self, name: &str) -> Result<Arc<RwLock<Table>>> {
        let key = name.to_ascii_lowercase();
        self.tables
            .read()
            .get(&key)
            .cloned()
            .ok_or(SqlError::UnknownTable(key))
    }

    /// True when the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Sorted table names (for introspection and tests).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Bulk-insert rows through the coercion path (loader convenience).
    /// Atomic: every row is validated before any is stored. Honors an
    /// open transaction on the calling thread.
    pub fn insert_rows(&self, table: &str, rows: Vec<Row>) -> Result<usize> {
        let handle = self.get_table(table)?;
        let txn = self.write_txn();
        if let WriteTxn::Txn { .. } = txn {
            self.txn_pin(&handle);
        }
        if self.table_shards > 1 {
            // Concurrent append: coerce under the shared table guard,
            // then take only the calling thread's home-shard lock so
            // disjoint-row writers proceed in parallel. The auto-commit
            // stamp is allocated *while the shard lock is held*, so any
            // snapshot at or above it blocks on this shard until every
            // row of the statement is in — no torn statement.
            let guard = handle.read();
            let coerced: Result<Vec<Row>> = rows.into_iter().map(|r| guard.coerce_row(r)).collect();
            let coerced = coerced?;
            let n = coerced.len();
            let mut append = guard.begin_append();
            if append.waited() {
                self.write_shard_waits.fetch_add(1, Ordering::Relaxed);
            }
            let stamp = match txn {
                WriteTxn::Auto => self.commit_ts(),
                WriteTxn::Txn { txid } => UNCOMMITTED | txid,
            };
            let created: Vec<usize> = coerced.into_iter().map(|r| append.push(stamp, r)).collect();
            drop(append);
            drop(guard);
            if let WriteTxn::Txn { .. } = txn {
                self.txn_record_write(&handle, created, Vec::new());
            }
            return Ok(n);
        }
        let mut guard = handle.write();
        let coerced: Result<Vec<Row>> = rows.into_iter().map(|r| guard.coerce_row(r)).collect();
        let coerced = coerced?;
        let n = coerced.len();
        let stamp = match txn {
            WriteTxn::Auto => self.commit_ts(),
            WriteTxn::Txn { txid } => UNCOMMITTED | txid,
        };
        let created: Vec<usize> = coerced
            .into_iter()
            .map(|r| guard.push_version(stamp, r))
            .collect();
        if let WriteTxn::Txn { .. } = txn {
            self.txn_record_write(&handle, created, Vec::new());
        }
        Ok(n)
    }

    // ---- indexes and planner statistics -------------------------------------

    /// `CREATE [UNIQUE] INDEX name ON table (column)`. Index names are
    /// global, PostgreSQL-style: creation fails when any table already
    /// owns an index of that name. Returns the owning table's handle so
    /// transactional DDL can record its undo entry.
    pub(crate) fn create_index(
        &self,
        name: &str,
        table: &str,
        column: &str,
        unique: bool,
    ) -> Result<Arc<RwLock<Table>>> {
        let iname = name.to_ascii_lowercase();
        // Hold the catalog read lock across the name check *and* the
        // build so two racing CREATE INDEX calls cannot both pass the
        // check (catalog lock before table guard is the global order).
        let tables = self.tables.read();
        let handle = tables
            .get(&table.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| SqlError::UnknownTable(table.to_ascii_lowercase()))?;
        for h in tables.values() {
            if h.read().find_index(&iname).is_some() {
                return Err(SqlError::Constraint(format!(
                    "relation \"{iname}\" already exists"
                )));
            }
        }
        handle.write().create_index(&iname, column, unique)?;
        drop(tables);
        self.schema_epoch.fetch_add(1, Ordering::SeqCst);
        Ok(handle)
    }

    /// `DROP INDEX name`: the owning table is found by scanning the
    /// catalog. Returns `(table, index name, column name, unique)` — the
    /// shape a transactional undo entry needs to rebuild it.
    pub(crate) fn drop_index(
        &self,
        name: &str,
    ) -> Result<(Arc<RwLock<Table>>, String, String, bool)> {
        let iname = name.to_ascii_lowercase();
        let owner = {
            let tables = self.tables.read();
            tables
                .values()
                .find(|h| h.read().find_index(&iname).is_some())
                .cloned()
        };
        let Some(handle) = owner else {
            return Err(SqlError::Execution(format!(
                "index \"{iname}\" does not exist"
            )));
        };
        let dropped = {
            let mut guard = handle.write();
            let Some(ix) = guard.drop_index(&iname) else {
                // Raced with a concurrent DROP INDEX of the same name.
                return Err(SqlError::Execution(format!(
                    "index \"{iname}\" does not exist"
                )));
            };
            let column = guard.schema.columns[ix.column].name.clone();
            (iname, column, ix.unique)
        };
        self.schema_epoch.fetch_add(1, Ordering::SeqCst);
        Ok((handle, dropped.0, dropped.1, dropped.2))
    }

    /// Planner statistics for a table, recomputed when stale (churn since
    /// the last pass crossed the threshold — see [`TableStats::stale`]).
    /// Called at plan time; a cached plan keeps its access-path choice
    /// until the schema epoch moves, so an automatic refresh here only
    /// affects plans compiled afterwards. `ANALYZE` bumps the epoch to
    /// force the issue.
    pub(crate) fn stats_for(&self, table: &str) -> Option<TableStats> {
        let key = table.to_ascii_lowercase();
        let handle = self.get_table(&key).ok()?;
        let mod_count = handle.read().mod_count();
        if let Some(s) = self.table_stats.read().get(&key) {
            if !s.stale(mod_count) {
                return Some(s.clone());
            }
        }
        let s = {
            let guard = handle.read();
            let snap = self.current_snapshot();
            stats::analyze_table(&guard, snap, guard.mod_count())
        };
        self.analyze_runs.fetch_add(1, Ordering::Relaxed);
        self.table_stats.write().insert(key, s.clone());
        Some(s)
    }

    /// `ANALYZE [table]`: refresh planner statistics now, then bump the
    /// schema epoch so cached plans re-choose their access paths against
    /// the fresh numbers. Returns `(table, visible row count)` per table
    /// analyzed, sorted by name.
    pub fn analyze(&self, table: Option<&str>) -> Result<Vec<(String, u64)>> {
        let names: Vec<String> = match table {
            Some(t) => {
                let key = t.to_ascii_lowercase();
                if !self.has_table(&key) {
                    return Err(SqlError::UnknownTable(key));
                }
                vec![key]
            }
            None => self.table_names(),
        };
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            let Ok(handle) = self.get_table(&name) else {
                continue; // dropped concurrently
            };
            let s = {
                let guard = handle.read();
                let snap = self.current_snapshot();
                stats::analyze_table(&guard, snap, guard.mod_count())
            };
            self.analyze_runs.fetch_add(1, Ordering::Relaxed);
            out.push((name.clone(), s.row_count));
            self.table_stats.write().insert(name, s);
        }
        self.schema_epoch.fetch_add(1, Ordering::SeqCst);
        Ok(out)
    }

    /// Is the planner allowed to choose index scans?
    pub(crate) fn index_access_enabled(&self) -> bool {
        self.index_access.load(Ordering::Relaxed)
    }

    /// Enable/disable index access paths (plans fall back to sequential
    /// scans when off). Bumps the schema epoch so cached plans re-plan.
    pub fn set_index_access_enabled(&self, on: bool) {
        self.index_access.store(on, Ordering::SeqCst);
        self.schema_epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Is the planner allowed to choose hash joins?
    pub(crate) fn hash_join_enabled(&self) -> bool {
        self.hash_join.load(Ordering::Relaxed)
    }

    /// Enable/disable hash joins (plans fall back to nested loops when
    /// off). Bumps the schema epoch so cached plans re-plan.
    pub fn set_hash_join_enabled(&self, on: bool) {
        self.hash_join.store(on, Ordering::SeqCst);
        self.schema_epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Is the planner allowed to choose the vectorized batch executor?
    pub(crate) fn vectorized_enabled(&self) -> bool {
        self.vectorized.load(Ordering::Relaxed)
    }

    /// Enable/disable columnar batch execution (statements fall back to
    /// the tuple-at-a-time scalar executor when off). Bumps the schema
    /// epoch so cached plans re-plan.
    pub fn set_vectorized_enabled(&self, on: bool) {
        self.vectorized.store(on, Ordering::SeqCst);
        self.schema_epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Count one column batch materialized from a zero-copy scan.
    pub(crate) fn note_batch_filled(&self) {
        self.batches_filled.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one vectorized operator execution (a grouped/ungrouped
    /// aggregate fold, a single-key index sort, or a top-K heap run).
    pub(crate) fn note_vectorized_op(&self) {
        self.vectorized_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one statement that the planner classified batch-eligible
    /// but that executed on the scalar path anyway (toggle off at run
    /// time, or a shape the kernels decline).
    pub(crate) fn note_vectorized_fallback(&self) {
        self.vectorized_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// `(batches filled, vectorized ops, vectorized fallbacks)` since
    /// creation. The same numbers surface through `pgfmu_stats()`.
    pub fn vectorized_stats(&self) -> (u64, u64, u64) {
        (
            self.batches_filled.load(Ordering::Relaxed),
            self.vectorized_ops.load(Ordering::Relaxed),
            self.vectorized_fallbacks.load(Ordering::Relaxed),
        )
    }

    /// Count one single-table access-path execution.
    pub(crate) fn note_access(&self, indexed: bool) {
        if indexed {
            self.index_scans.fetch_add(1, Ordering::Relaxed);
        } else {
            self.seq_scans.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one hash-join execution.
    pub(crate) fn note_hash_join(&self) {
        self.hash_joins.fetch_add(1, Ordering::Relaxed);
    }

    /// `(index scans, sequential scans, hash joins, analyze passes)`
    /// since creation. Scan counts cover single-table SELECT access
    /// paths (one per base-table scan, indexed or not); analyze passes
    /// count both explicit `ANALYZE` and automatic staleness refreshes.
    /// The same numbers surface through `pgfmu_stats()`.
    pub fn access_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.index_scans.load(Ordering::Relaxed),
            self.seq_scans.load(Ordering::Relaxed),
            self.hash_joins.load(Ordering::Relaxed),
            self.analyze_runs.load(Ordering::Relaxed),
        )
    }

    // ---- functions ----------------------------------------------------------

    /// Register (or replace) a scalar UDF.
    ///
    /// This is the raw registration hook: the closure receives the
    /// unvalidated argument values. Prefer [`Database::udf`], which declares
    /// an argument signature and centralizes coercion and arity errors.
    pub fn register_scalar<F>(&self, name: &str, f: F)
    where
        F: Fn(&Database, &[Value]) -> Result<Value> + Send + Sync + 'static,
    {
        let key = name.to_ascii_lowercase();
        // A user registration shadows any intrinsic of the same name.
        self.intrinsics.write().remove(&key);
        self.scalars.write().insert(key, Arc::new(f));
        // Cached plans resolve scalar functions by reference; registering
        // (or replacing) one invalidates them like DDL does.
        self.schema_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Register (or replace) a set-returning UDF (see
    /// [`Database::register_scalar`] on the raw vs. typed surface).
    pub fn register_table_fn<F>(&self, name: &str, f: F)
    where
        F: Fn(&Database, &[Value]) -> Result<QueryResult> + Send + Sync + 'static,
    {
        self.table_fns
            .write()
            .insert(name.to_ascii_lowercase(), Arc::new(f));
        self.schema_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark a builtin as natively evaluable by the planner. Must run
    /// after the builtin's registration (which clears the mark).
    pub(crate) fn mark_intrinsic(&self, name: &str, op: functions::Intrinsic) {
        self.intrinsics
            .write()
            .insert(name.to_ascii_lowercase(), op);
    }

    /// The intrinsic for a function name, if still active.
    pub(crate) fn intrinsic_of(&self, name: &str) -> Option<functions::Intrinsic> {
        let map = self.intrinsics.read();
        if let Some(op) = map.get(name) {
            return Some(*op);
        }
        if name.bytes().any(|b| b.is_ascii_uppercase()) {
            return map.get(&name.to_ascii_lowercase()).copied();
        }
        None
    }

    /// Resolve a scalar function for the planner (case-insensitive; names
    /// from the parser are already lower-case, so the common path does
    /// not allocate).
    pub(crate) fn lookup_scalar(&self, name: &str) -> Option<ScalarFn> {
        let map = self.scalars.read();
        if let Some(f) = map.get(name) {
            return Some(Arc::clone(f));
        }
        if name.bytes().any(|b| b.is_ascii_uppercase()) {
            return map.get(&name.to_ascii_lowercase()).map(Arc::clone);
        }
        None
    }

    /// Start declaring a typed UDF: argument names and types are declared
    /// up front, and arity/type errors are produced centrally. See
    /// [`crate::udf::UdfBuilder`].
    pub fn udf(&self, name: &str) -> crate::udf::UdfBuilder<'_> {
        crate::udf::UdfBuilder::new(self, name)
    }

    /// The call counter for a (typed) UDF, creating it on first use.
    pub(crate) fn udf_counter(&self, name: &str) -> Arc<AtomicU64> {
        let key = name.to_ascii_lowercase();
        if let Some(c) = self.udf_counters.read().get(&key) {
            return Arc::clone(c);
        }
        let mut map = self.udf_counters.write();
        Arc::clone(
            map.entry(key)
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Per-UDF call counts since session start (typed UDFs only), sorted by
    /// function name. Surfaced through the `pgfmu_stats()` SRF.
    pub fn udf_call_counts(&self) -> Vec<(String, u64)> {
        let mut counts: Vec<(String, u64)> = self
            .udf_counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        counts.sort();
        counts
    }

    /// Invoke a scalar function by name.
    pub fn call_scalar(&self, name: &str, args: &[Value]) -> Result<Value> {
        match self.lookup_scalar(name) {
            Some(f) => f(self, args),
            None => Err(SqlError::UnknownFunction(format!("{name}(…)"))),
        }
    }

    /// Invoke a set-returning function by name; scalar functions degrade to
    /// a one-row, one-column table (PostgreSQL behaviour in FROM).
    pub fn call_table_fn(&self, name: &str, args: &[Value]) -> Result<QueryResult> {
        let key = name.to_ascii_lowercase();
        let f = self.table_fns.read().get(&key).cloned();
        if let Some(f) = f {
            return f(self, args);
        }
        let s = self.scalars.read().get(&key).cloned();
        match s {
            Some(f) => {
                let v = f(self, args)?;
                let mut q = QueryResult::new(vec![key]);
                q.rows.push(vec![v]);
                Ok(q)
            }
            None => Err(SqlError::UnknownFunction(format!("{name}(…)"))),
        }
    }

    /// Is a function with this name registered (scalar or set-returning)?
    pub fn has_function(&self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        self.scalars.read().contains_key(&key) || self.table_fns.read().contains_key(&key)
    }

    // ---- execution -----------------------------------------------------------

    /// Prepare one SQL statement, reusing the parsed statement (and its
    /// compiled physical plan) from the statement cache when the same
    /// text was seen before.
    pub fn prepare(&self, sql: &str) -> Result<Statement<'_>> {
        if let Some(prepared) = self.stmt_cache.lock().get(sql) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Statement { db: self, prepared });
        }
        self.parses.fetch_add(1, Ordering::Relaxed);
        // A syntax error aborts an open transaction (PostgreSQL reports
        // the parse error itself, but the transaction is done for).
        let parsed = Arc::new(parser::parse(sql).inspect_err(|_| self.abort_txn())?);
        let n_params = ast::max_param(&parsed);
        let prepared = Arc::new(Prepared::new(parsed, n_params));
        self.stmt_cache
            .lock()
            .insert(sql.to_string(), Arc::clone(&prepared));
        Ok(Statement { db: self, prepared })
    }

    /// The compiled plan for a prepared statement: reused while the
    /// schema epoch is unchanged, recompiled after DDL.
    pub(crate) fn plan_for(&self, prepared: &Prepared) -> Result<Arc<PhysicalPlan>> {
        let epoch = self.schema_epoch.load(Ordering::Relaxed);
        if let Some((e, plan)) = &*prepared.plan.lock() {
            if *e == epoch {
                self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(plan));
            }
        }
        let plan = Arc::new(plan::compile(self, &prepared.stmt)?);
        self.plans_built.fetch_add(1, Ordering::Relaxed);
        *prepared.plan.lock() = Some((epoch, Arc::clone(&plan)));
        Ok(plan)
    }

    /// Count one transient (non-cached) plan compilation.
    pub(crate) fn note_plan_built(&self) {
        self.plans_built.fetch_add(1, Ordering::Relaxed);
    }

    /// Count per-group aggregate evaluations.
    pub(crate) fn note_agg_evals(&self, n: u64) {
        self.agg_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one table scan: `rows` source rows examined, either
    /// zero-copy (under the table guard, no snapshot) or through a
    /// snapshot fallback. A guarded streaming cursor passes 0 here and
    /// reports its exact examined count through
    /// [`Database::note_scan_rows`] when it finishes.
    pub(crate) fn note_scan(&self, rows: u64, zero_copy: bool) {
        self.rows_scanned.fetch_add(rows, Ordering::Relaxed);
        if zero_copy {
            self.scans_zero_copy.fetch_add(1, Ordering::Relaxed);
        } else {
            self.scan_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Add rows examined by an already-recorded scan.
    pub(crate) fn note_scan_rows(&self, rows: u64) {
        self.rows_scanned.fetch_add(rows, Ordering::Relaxed);
    }

    // ---- transactions, snapshots and garbage collection ---------------------

    /// The snapshot the current statement should read at: the open
    /// transaction's pinned timestamp on this thread, or "now" (the
    /// current commit clock, no txid) outside a transaction.
    pub(crate) fn current_snapshot(&self) -> Snapshot {
        if self.txn_count.load(Ordering::SeqCst) > 0 {
            let txns = self.txns.lock();
            if let Some(t) = txns.get(&std::thread::current().id()) {
                return Snapshot {
                    ts: t.ts,
                    txid: t.txid,
                };
            }
        }
        Snapshot {
            ts: self.clock.load(Ordering::SeqCst),
            txid: 0,
        }
    }

    /// How the current statement's writes should be stamped: auto-commit,
    /// or marked with this thread's open transaction id.
    pub(crate) fn write_txn(&self) -> WriteTxn {
        if self.txn_count.load(Ordering::SeqCst) > 0 {
            let txns = self.txns.lock();
            if let Some(t) = txns.get(&std::thread::current().id()) {
                return WriteTxn::Txn { txid: t.txid };
            }
        }
        WriteTxn::Auto
    }

    /// Allocate a commit timestamp. Callers must hold the write guard of
    /// every table they are stamping *before* allocating, so that any
    /// snapshot new enough to see the timestamp blocks on those guards
    /// until the stamps are complete.
    pub(crate) fn commit_ts(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// True when nothing in the system can ever read below `cts`: no
    /// transaction has a snapshot pinned before it. Together with the
    /// written table being unpinned (no live cursors — checked by the
    /// caller under the table's *write* guard, which excludes new pins)
    /// this licenses the single-version fast path: an auto-commit
    /// UPDATE/DELETE may mutate the current version in place instead of
    /// versioning it, because every statement snapshot is loaded while
    /// holding the table's guard ([`Database::begin_txn`] closes the one
    /// unguarded load by registering under this same lock).
    pub(crate) fn overwrite_safe(&self, cts: u64) -> bool {
        self.pinned_snapshots
            .lock()
            .keys()
            .next()
            .is_none_or(|&oldest| oldest >= cts)
    }

    /// Allocate a transaction id. Auto-commit statements that stream
    /// their source rows use one too: the rows go in uncommitted (marked
    /// with the id) and are stamped — or tombstoned, on error — only when
    /// the stream finishes, which is what makes the statement atomic.
    pub(crate) fn next_txid(&self) -> u64 {
        self.txid_gen.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// True when the calling thread has an open transaction.
    pub fn in_transaction(&self) -> bool {
        self.txn_count.load(Ordering::SeqCst) > 0
            && self.txns.lock().contains_key(&std::thread::current().id())
    }

    /// Reject further statements in an aborted transaction (PostgreSQL
    /// behaviour and wording). COMMIT/ROLLBACK are exempt — the executor
    /// does not route them here.
    pub(crate) fn check_txn_ok(&self) -> Result<()> {
        if self.txn_count.load(Ordering::SeqCst) == 0 {
            return Ok(());
        }
        let txns = self.txns.lock();
        match txns.get(&std::thread::current().id()) {
            Some(t) if t.aborted => Err(SqlError::Execution(
                "current transaction is aborted, commands ignored until end of \
                 transaction block"
                    .into(),
            )),
            _ => Ok(()),
        }
    }

    /// Mark this thread's open transaction aborted after a failed
    /// statement (no-op outside a transaction).
    pub(crate) fn abort_txn(&self) {
        if self.txn_count.load(Ordering::SeqCst) == 0 {
            return;
        }
        if let Some(t) = self.txns.lock().get_mut(&std::thread::current().id()) {
            t.aborted = true;
        }
    }

    /// Pin a table against compaction for the rest of this thread's open
    /// transaction (undo entries hold version indices into it). Must be
    /// called *before* the statement takes the table's write guard.
    pub(crate) fn txn_pin(&self, handle: &Arc<RwLock<Table>>) {
        handle.read().pin();
        if let Some(t) = self.txns.lock().get_mut(&std::thread::current().id()) {
            t.pinned.push(Arc::clone(handle));
        } else {
            // No open transaction (raced with an external rollback):
            // release immediately rather than leak the pin.
            handle.read().unpin();
        }
    }

    /// Append one statement's worth of pending writes to this thread's
    /// undo log.
    pub(crate) fn txn_record_write(
        &self,
        handle: &Arc<RwLock<Table>>,
        created: Vec<usize>,
        ended: Vec<usize>,
    ) {
        if created.is_empty() && ended.is_empty() {
            return;
        }
        if let Some(t) = self.txns.lock().get_mut(&std::thread::current().id()) {
            t.undo.push(UndoEntry::Write {
                handle: Arc::clone(handle),
                created,
                ended,
            });
        }
    }

    /// Record a DDL undo entry (CREATE/DROP TABLE inside a transaction)
    /// and count the schema-epoch bump it caused, so ROLLBACK can restore
    /// the epoch exactly.
    pub(crate) fn txn_record_ddl(&self, entry: UndoEntry) {
        if let Some(t) = self.txns.lock().get_mut(&std::thread::current().id()) {
            t.ddl_bumps += 1;
            t.undo.push(entry);
        }
    }

    /// `BEGIN`: open a transaction on this thread. Returns `false` (with
    /// no other effect) when one is already open — the caller issues the
    /// PostgreSQL notice.
    pub(crate) fn begin_txn(&self) -> bool {
        let mut txns = self.txns.lock();
        let thread = std::thread::current().id();
        if txns.contains_key(&thread) {
            return false;
        }
        // Read the clock *inside* the registry lock: a writer probing
        // `overwrite_safe` after this either sees the registration, or
        // took the lock first — in which case this load happens after its
        // clock bump and the pinned timestamp lands at or above its cts.
        let ts = {
            let mut pins = self.pinned_snapshots.lock();
            let ts = self.clock.load(Ordering::SeqCst);
            *pins.entry(ts).or_insert(0) += 1;
            ts
        };
        txns.insert(
            thread,
            Txn {
                txid: self.next_txid(),
                ts,
                aborted: false,
                epoch0: self.schema_epoch.load(Ordering::SeqCst),
                ddl_bumps: 0,
                undo: Vec::new(),
                pinned: Vec::new(),
            },
        );
        self.txn_count.fetch_add(1, Ordering::SeqCst);
        true
    }

    /// `COMMIT`: publish this thread's pending writes atomically under
    /// one fresh commit timestamp. Returns `false` when no transaction is
    /// open; an aborted transaction rolls back instead (PostgreSQL
    /// behaviour).
    pub(crate) fn commit_txn(&self) -> Result<bool> {
        let txn = match self.take_txn() {
            Some(t) => t,
            None => return Ok(false),
        };
        if txn.aborted {
            self.apply_rollback(txn);
            return Ok(true);
        }
        // Merge per-statement write entries by table so each guard is
        // taken once, then hold *all* the guards while allocating the
        // commit timestamp and stamping (see `commit_ts`).
        let mut by_table: Vec<PendingStamps> = Vec::new();
        for entry in &txn.undo {
            if let UndoEntry::Write {
                handle,
                created,
                ended,
            } = entry
            {
                match by_table.iter_mut().find(|(h, _, _)| Arc::ptr_eq(h, handle)) {
                    Some((_, c, e)) => {
                        c.extend_from_slice(created);
                        e.extend_from_slice(ended);
                    }
                    None => by_table.push((Arc::clone(handle), created.clone(), ended.clone())),
                }
            }
        }
        // A deterministic lock order prevents deadlock between commits.
        by_table.sort_by_key(|(h, _, _)| Arc::as_ptr(h) as usize);
        if self.table_shards == 1 {
            // Unsharded escape hatch: take every touched table's write
            // guard and stamp directly, exactly the pre-sharding path.
            let mut guards: Vec<_> = by_table.iter().map(|(h, _, _)| h.write()).collect();
            let cts = self.commit_ts();
            for (guard, (_, created, ended)) in guards.iter_mut().zip(&by_table) {
                for &i in created {
                    guard.commit_begin(i, txn.txid, cts);
                }
                for &i in ended {
                    guard.commit_end(i, txn.txid, cts);
                }
            }
        } else if !by_table.is_empty() {
            let req = Arc::new(CommitReq {
                writes: by_table,
                txid: txn.txid,
                done: std::sync::Mutex::new(None),
                cv: std::sync::Condvar::new(),
            });
            self.group_commit(req);
        }
        self.finish_txn(&txn);
        self.txns_committed.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Publish a commit request to the group-commit queue and wait until
    /// a leader has stamped it. Whoever grabs the leader badge drains the
    /// whole queue; everyone else parks briefly and re-bids for
    /// leadership on timeout, so a leader exiting between our enqueue and
    /// its final empty-queue check cannot strand us.
    fn group_commit(&self, req: Arc<CommitReq>) {
        self.commit_queue.lock().push(Arc::clone(&req));
        loop {
            if let Some(_badge) = self.commit_leader.try_lock() {
                self.drain_commits();
            }
            let done = req.done.lock().unwrap_or_else(|p| p.into_inner());
            if done.is_some() {
                return;
            }
            let (done, _) = req
                .cv
                .wait_timeout(done, std::time::Duration::from_millis(1))
                .unwrap_or_else(|p| p.into_inner());
            if done.is_some() {
                return;
            }
        }
    }

    /// Leader side of group commit: repeatedly swap out the pending
    /// queue and stamp a whole round under one guard acquisition — outer
    /// read guards on the distinct tables (ptr-sorted), then the union
    /// of touched shards per table (ascending). Each request still gets
    /// its own commit timestamp (commit order = FIFO within the round);
    /// the guards are released only after the entire round is stamped,
    /// so no snapshot taken at or above a round's timestamps can see a
    /// torn commit.
    fn drain_commits(&self) {
        loop {
            let reqs = std::mem::take(&mut *self.commit_queue.lock());
            if reqs.is_empty() {
                return;
            }
            self.group_commits.fetch_add(1, Ordering::Relaxed);
            self.group_commit_batched
                .fetch_add(reqs.len() as u64 - 1, Ordering::Relaxed);
            let mut tables: Vec<Arc<RwLock<Table>>> = Vec::new();
            for r in &reqs {
                for (h, _, _) in &r.writes {
                    if !tables.iter().any(|t| Arc::ptr_eq(t, h)) {
                        tables.push(Arc::clone(h));
                    }
                }
            }
            tables.sort_by_key(|h| Arc::as_ptr(h) as usize);
            let table_of =
                |h: &Arc<RwLock<Table>>| tables.iter().position(|t| Arc::ptr_eq(t, h)).unwrap();
            let mut shard_sets: Vec<Vec<usize>> = vec![Vec::new(); tables.len()];
            for r in &reqs {
                for (h, created, ended) in &r.writes {
                    let set = &mut shard_sets[table_of(h)];
                    for &rid in created.iter().chain(ended) {
                        let s = table::rid_shard(rid);
                        if !set.contains(&s) {
                            set.push(s);
                        }
                    }
                }
            }
            for set in &mut shard_sets {
                set.sort_unstable();
            }
            let outer: Vec<_> = tables.iter().map(|h| h.read()).collect();
            let mut locks: Vec<_> = outer
                .iter()
                .zip(&shard_sets)
                .map(|(g, set)| g.lock_shards(set))
                .collect();
            for r in &reqs {
                let cts = self.commit_ts();
                for (h, created, ended) in &r.writes {
                    let locked = &mut locks[table_of(h)];
                    for &rid in created {
                        locked.commit_begin(rid, r.txid, cts);
                    }
                    for &rid in ended {
                        locked.commit_end(rid, r.txid, cts);
                    }
                }
                *r.done.lock().unwrap_or_else(|p| p.into_inner()) = Some(cts);
                r.cv.notify_all();
            }
        }
    }

    /// `ROLLBACK`: discard this thread's pending writes. Returns `false`
    /// when no transaction is open.
    pub(crate) fn rollback_txn(&self) -> bool {
        match self.take_txn() {
            Some(t) => {
                self.apply_rollback(t);
                true
            }
            None => false,
        }
    }

    /// Reset the calling thread's session state: roll back any
    /// transaction it left open, returning whether one was. Transaction
    /// sessions are keyed by thread, so pooled worker threads — reused
    /// across unrelated tasks — call this when picking up new work;
    /// otherwise a task that died between `BEGIN` and `COMMIT` would
    /// leak its open transaction (snapshot pin, table pins and abort
    /// flag included) into whatever task lands on the thread next.
    pub fn reset_session(&self) -> bool {
        self.rollback_txn()
    }

    /// Detach this thread's transaction from the session map.
    fn take_txn(&self) -> Option<Txn> {
        if self.txn_count.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let taken = self.txns.lock().remove(&std::thread::current().id());
        if taken.is_some() {
            self.txn_count.fetch_sub(1, Ordering::SeqCst);
        }
        taken
    }

    /// Replay the undo log in reverse, restoring tables, the catalog and
    /// the schema epoch to their pre-transaction state.
    fn apply_rollback(&self, mut txn: Txn) {
        while let Some(entry) = txn.undo.pop() {
            match entry {
                UndoEntry::Write {
                    handle,
                    created,
                    ended,
                } => {
                    let mut guard = handle.write();
                    for &i in &ended {
                        guard.revert_end(i, txn.txid);
                    }
                    for &i in &created {
                        guard.revert_insert(i, txn.txid);
                    }
                }
                UndoEntry::CreateTable { name } => {
                    self.tables.write().remove(&name);
                    self.schema_epoch.fetch_add(1, Ordering::SeqCst);
                    txn.ddl_bumps += 1;
                }
                UndoEntry::DropTable { name, handle } => {
                    self.tables.write().insert(name, handle);
                    self.schema_epoch.fetch_add(1, Ordering::SeqCst);
                    txn.ddl_bumps += 1;
                }
                UndoEntry::CreateIndex { table, name } => {
                    table.write().drop_index(&name);
                    self.schema_epoch.fetch_add(1, Ordering::SeqCst);
                    txn.ddl_bumps += 1;
                }
                UndoEntry::DropIndex {
                    table,
                    name,
                    column,
                    unique,
                } => {
                    // Later statements of the transaction have already
                    // been undone (reverse replay), so the heap matches
                    // the moment just after the DROP — the rebuild
                    // cannot find uniqueness violations the original
                    // index did not contain. Best-effort regardless:
                    // rollback must not fail.
                    let _ = table.write().create_index(&name, &column, unique);
                    self.schema_epoch.fetch_add(1, Ordering::SeqCst);
                    txn.ddl_bumps += 1;
                }
            }
        }
        // Undoing DDL bumped the epoch past where the transaction left
        // it. If no concurrent session moved it meanwhile, snap it back
        // to its pre-transaction value so statement-cache plans compiled
        // before BEGIN validate again; otherwise leave the bumps in
        // place (they only force replans, never stale reads).
        if txn.ddl_bumps > 0 {
            let _ = self.schema_epoch.compare_exchange(
                txn.epoch0 + txn.ddl_bumps,
                txn.epoch0,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
        self.finish_txn(&txn);
        self.txns_rolled_back.fetch_add(1, Ordering::Relaxed);
    }

    /// Release a finished transaction's table pins and snapshot pin.
    fn finish_txn(&self, txn: &Txn) {
        for handle in &txn.pinned {
            handle.read().unpin();
        }
        let mut pins = self.pinned_snapshots.lock();
        if let Some(n) = pins.get_mut(&txn.ts) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&txn.ts);
            }
        }
    }

    /// The GC watermark: no live snapshot reads below this timestamp, so
    /// versions dead at or before it are unreachable. Streaming cursors
    /// and snapshot DML don't register here — they pin their tables
    /// against compaction instead.
    pub(crate) fn gc_watermark(&self) -> u64 {
        let pinned = self.pinned_snapshots.lock();
        match pinned.keys().next() {
            Some(&oldest) => oldest,
            None => self.clock.load(Ordering::SeqCst),
        }
    }

    /// Opportunistic garbage collection, called by write paths while they
    /// already hold the table's write guard.
    pub(crate) fn maybe_gc(&self, table: &mut Table) {
        if table.needs_gc() {
            let freed = table.compact(self.gc_watermark());
            self.versions_gc.fetch_add(freed as u64, Ordering::Relaxed);
        }
    }

    /// Reclaim dead row versions in every table, regardless of the
    /// accumulation threshold the opportunistic collector uses. Tables
    /// pinned by live cursors or open transactions are skipped. Returns
    /// the number of versions reclaimed.
    pub fn vacuum(&self) -> usize {
        let handles: Vec<Arc<RwLock<Table>>> = self.tables.read().values().cloned().collect();
        let watermark = self.gc_watermark();
        let mut freed = 0;
        for handle in handles {
            // Outer *read* guard: each shard compacts under its own
            // write lock while readers and writers of other shards (and
            // other tables) proceed.
            freed += handle.read().compact_shards(watermark);
        }
        self.versions_gc.fetch_add(freed as u64, Ordering::Relaxed);
        freed
    }

    /// `(transactions committed, transactions rolled back)` since
    /// creation. Rolled-back counts include aborted transactions closed
    /// by COMMIT.
    pub fn txn_stats(&self) -> (u64, u64) {
        (
            self.txns_committed.load(Ordering::Relaxed),
            self.txns_rolled_back.load(Ordering::Relaxed),
        )
    }

    /// Number of dead row versions reclaimed by the garbage collector
    /// since creation.
    pub fn gc_stats(&self) -> u64 {
        self.versions_gc.load(Ordering::Relaxed)
    }

    /// Record a retired fleet batch: `tasks` pooled tasks run on a pool
    /// of `workers` threads, spending `task_ns` nanoseconds of summed
    /// per-task wall time. The engine never spawns threads itself; the
    /// embedding layer's fleet executor reports here so the counters are
    /// queryable next to the engine's own (`pgfmu_stats()`).
    pub fn note_fleet(&self, tasks: u64, workers: u64, task_ns: u64) {
        self.fleet_tasks.fetch_add(tasks, Ordering::Relaxed);
        self.fleet_workers.fetch_max(workers, Ordering::Relaxed);
        self.fleet_task_ns.fetch_add(task_ns, Ordering::Relaxed);
    }

    /// `(fleet tasks retired, high-water pool width, summed task
    /// nanoseconds)` since creation.
    pub fn fleet_stats(&self) -> (u64, u64, u64) {
        (
            self.fleet_tasks.load(Ordering::Relaxed),
            self.fleet_workers.load(Ordering::Relaxed),
            self.fleet_task_ns.load(Ordering::Relaxed),
        )
    }

    /// Version shards per table in this database.
    pub fn table_shards(&self) -> usize {
        self.table_shards
    }

    /// Bump the contended-home-shard counter (a concurrent appender had
    /// to block for its shard lock).
    pub(crate) fn note_shard_wait(&self) {
        self.write_shard_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// `(shard count, contended shard-lock acquisitions, group-commit
    /// rounds, requests that rode along in someone else's round)` since
    /// creation. Also queryable from SQL via `pgfmu_stats()`:
    ///
    /// ```
    /// use pgfmu_sqlmini::{Database, Value};
    ///
    /// let db = Database::with_table_shards(8);
    /// let q = db
    ///     .query(
    ///         "SELECT value FROM pgfmu_stats() WHERE stat = 'shard_count'",
    ///         &[],
    ///     )
    ///     .unwrap();
    /// assert_eq!(q.rows[0][0], Value::Int(8));
    /// assert_eq!(db.shard_stats().0, 8);
    /// ```
    pub fn shard_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.table_shards as u64,
            self.write_shard_waits.load(Ordering::Relaxed),
            self.group_commits.load(Ordering::Relaxed),
            self.group_commit_batched.load(Ordering::Relaxed),
        )
    }

    /// `(rows scanned, zero-copy scans, snapshot scans)` since creation.
    ///
    /// A *zero-copy* scan ran directly over the table's rows under its
    /// guard, materializing only the statement's surviving output — the
    /// executor picks it per plan whenever a single-table statement's
    /// scan-side expressions cannot re-enter the database. Everything
    /// else (multi-table joins, re-entrant expressions, dynamic FROM
    /// items) counts as a snapshot scan. The same numbers are queryable
    /// from SQL via `pgfmu_stats()`:
    ///
    /// ```
    /// use pgfmu_sqlmini::{Database, Value};
    ///
    /// let db = Database::new();
    /// db.execute("CREATE TABLE m (x float, note text)").unwrap();
    /// db.execute("INSERT INTO m VALUES (1.0, 'a'), (2.0, 'b'), (3.0, 'c')").unwrap();
    /// db.execute("SELECT x FROM m WHERE x > 1.5").unwrap(); // zero-copy
    /// db.execute("SELECT a.x FROM m a, m b").unwrap(); // join: snapshot scans
    /// let q = db
    ///     .execute("SELECT value FROM pgfmu_stats() WHERE stat = 'scans_zero_copy'")
    ///     .unwrap();
    /// assert!(q.rows[0][0].as_i64().unwrap() >= 1);
    /// let q = db
    ///     .execute("SELECT value FROM pgfmu_stats() WHERE stat = 'rows_scanned'")
    ///     .unwrap();
    /// assert!(q.rows[0][0].as_i64().unwrap() >= 9);
    /// let (rows, zero, fallback) = db.scan_stats();
    /// assert!(rows >= 9 && zero >= 1 && fallback >= 2);
    /// ```
    pub fn scan_stats(&self) -> (u64, u64, u64) {
        (
            self.rows_scanned.load(Ordering::Relaxed),
            self.scans_zero_copy.load(Ordering::Relaxed),
            self.scan_fallbacks.load(Ordering::Relaxed),
        )
    }

    /// Prepare (with cache reuse) and execute one statement with `$n` bind
    /// values.
    pub fn query(&self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        self.prepare(sql)?.query(params)
    }

    /// Prepare and execute, streaming result rows instead of materializing.
    pub fn query_rows(&self, sql: &str, params: &[Value]) -> Result<Rows<'_>> {
        self.prepare(sql)?.query_rows(params)
    }

    /// Prepare, execute and decode each row into `T` (see [`FromRow`]).
    pub fn query_as<T: FromRow>(&self, sql: &str, params: &[Value]) -> Result<Vec<T>> {
        self.prepare(sql)?.query_as(params)
    }

    /// Parse (with statement-cache reuse) and execute one parameterless SQL
    /// statement.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.query(sql, &[])
    }

    /// Execute without consulting or filling the statement cache (used by
    /// benchmarks to isolate the prepared-statement effect).
    pub fn execute_uncached(&self, sql: &str) -> Result<QueryResult> {
        self.parses.fetch_add(1, Ordering::Relaxed);
        let stmt = parser::parse(sql).inspect_err(|_| self.abort_txn())?;
        exec::execute_stmt(self, &stmt, &[])
    }

    /// `(parse count, statement cache hits)` since creation.
    pub fn statement_stats(&self) -> (u64, u64) {
        (
            self.parses.load(Ordering::Relaxed),
            self.cache_hits.load(Ordering::Relaxed),
        )
    }

    /// `(physical plans compiled, plan-cache hits)` since creation. A
    /// re-executed prepared statement hits; DDL (CREATE/DROP TABLE) bumps
    /// the schema epoch and forces a recompile on next execution.
    pub fn plan_stats(&self) -> (u64, u64) {
        (
            self.plans_built.load(Ordering::Relaxed),
            self.plan_cache_hits.load(Ordering::Relaxed),
        )
    }

    /// Number of per-group aggregate evaluations performed by the
    /// grouping operator since creation. Each *distinct* aggregate call
    /// of a statement counts once per group, however many times it
    /// appears across the select list, HAVING and ORDER BY.
    pub fn agg_eval_count(&self) -> u64 {
        self.agg_evals.load(Ordering::Relaxed)
    }

    /// Number of statements currently cached.
    pub fn stmt_cache_len(&self) -> usize {
        self.stmt_cache.lock().map.len()
    }

    /// The statement cache's eviction bound.
    pub fn stmt_cache_capacity(&self) -> usize {
        self.stmt_cache.lock().capacity
    }

    /// Rebound the statement cache, evicting least-recently-used entries if
    /// the new capacity is smaller than the current population.
    pub fn set_stmt_cache_capacity(&self, capacity: usize) {
        let mut cache = self.stmt_cache.lock();
        cache.capacity = capacity;
        cache.shrink_to(capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn setup() -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE m (ts timestamp, x float, y float, u float)")
            .unwrap();
        db.execute(
            "INSERT INTO m VALUES \
             ('2015-02-01 00:00', 20.7507, 0.0, 0.0), \
             ('2015-02-01 01:00', 23.6231, 0.1381, 0.0177), \
             ('2015-02-01 02:00', 21.5, 0.3, 0.05)",
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_select_round_trip() {
        let db = setup();
        let q = db.execute("SELECT * FROM m ORDER BY ts").unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.columns, vec!["ts", "x", "y", "u"]);
        assert_eq!(q.rows[0][1], Value::Float(20.7507));
    }

    #[test]
    fn where_filtering_and_projection() {
        let db = setup();
        let q = db
            .execute("SELECT x AS temp FROM m WHERE u > 0.01 ORDER BY x DESC")
            .unwrap();
        assert_eq!(q.columns, vec!["temp"]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.rows[0][0], Value::Float(23.6231));
    }

    #[test]
    fn aggregates() {
        let db = setup();
        let q = db
            .execute("SELECT count(*), avg(x), min(x), max(x), sum(u) FROM m")
            .unwrap();
        assert_eq!(q.rows[0][0], Value::Int(3));
        let avg = q.rows[0][1].as_f64().unwrap();
        assert!((avg - (20.7507 + 23.6231 + 21.5) / 3.0).abs() < 1e-9);
        assert_eq!(q.rows[0][2], Value::Float(20.7507));
        assert_eq!(q.rows[0][3], Value::Float(23.6231));
        let sum = q.rows[0][4].as_f64().unwrap();
        assert!((sum - 0.0677).abs() < 1e-9);
    }

    #[test]
    fn aggregate_with_arithmetic() {
        let db = setup();
        let q = db
            .execute("SELECT sqrt(avg(x * x)) AS rms FROM m WHERE x IS NOT NULL")
            .unwrap();
        assert!(q.rows[0][0].as_f64().unwrap() > 20.0);
    }

    #[test]
    fn bare_column_in_aggregate_query_errors() {
        let db = setup();
        let err = db.execute("SELECT x, count(*) FROM m");
        assert!(err.is_err());
    }

    #[test]
    fn group_by_having_through_prepare_and_query_as() {
        let db = setup();
        // The acceptance-criterion shape: key + aggregate, HAVING threshold
        // bound as $1, decoded through the typed row surface.
        let stmt = db
            .prepare(
                "SELECT u, count(*) FROM m GROUP BY u \
                 HAVING count(*) >= $1 ORDER BY u",
            )
            .unwrap();
        let all: Vec<(f64, i64)> = stmt.query_as(&[Value::Int(1)]).unwrap();
        assert_eq!(all.len(), 3, "three distinct u values");
        let none: Vec<(f64, i64)> = stmt.query_as(&[Value::Int(2)]).unwrap();
        assert!(none.is_empty());
        // Re-executing the handle reuses the cached plan — no re-parse.
        let (p0, _) = db.statement_stats();
        stmt.query(&[Value::Int(1)]).unwrap();
        assert_eq!(db.statement_stats().0, p0);
    }

    #[test]
    fn update_and_delete() {
        let db = setup();
        let q = db.execute("UPDATE m SET u = u * 2 WHERE u > 0").unwrap();
        assert_eq!(q.rows[0][0], Value::Int(2));
        let q = db.execute("SELECT sum(u) FROM m").unwrap();
        assert!((q.rows[0][0].as_f64().unwrap() - 0.1354).abs() < 1e-9);
        let q = db.execute("DELETE FROM m WHERE x > 22").unwrap();
        assert_eq!(q.rows[0][0], Value::Int(1));
        assert_eq!(db.execute("SELECT * FROM m").unwrap().len(), 2);
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let db = setup();
        db.execute("INSERT INTO m (ts, x) VALUES ('2015-02-01 03:00', 19.0)")
            .unwrap();
        let q = db
            .execute("SELECT y FROM m WHERE ts = '2015-02-01 03:00'")
            .unwrap();
        assert_eq!(q.rows[0][0], Value::Null);
    }

    #[test]
    fn insert_select() {
        let db = setup();
        db.execute("CREATE TABLE copy (ts timestamp, x float, y float, u float)")
            .unwrap();
        db.execute("INSERT INTO copy SELECT * FROM m WHERE x < 22")
            .unwrap();
        assert_eq!(db.execute("SELECT * FROM copy").unwrap().len(), 2);
    }

    #[test]
    fn cross_join_and_qualifiers() {
        let db = setup();
        db.execute("CREATE TABLE tags (name text)").unwrap();
        db.execute("INSERT INTO tags VALUES ('a'), ('b')").unwrap();
        let q = db
            .execute("SELECT t.name, m.x FROM tags t, m WHERE m.u = 0.0 ORDER BY t.name")
            .unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.rows[0][0], Value::Text("a".into()));
    }

    #[test]
    fn lateral_function_referencing_earlier_item() {
        let db = Database::new();
        let q = db
            .execute(
                "SELECT id, s FROM generate_series(1, 3) AS id, \
                 LATERAL generate_series(1, id) AS s ORDER BY id, s",
            )
            .unwrap();
        // 1 + 2 + 3 rows
        assert_eq!(q.len(), 6);
        assert_eq!(q.rows[5][0], Value::Int(3));
        assert_eq!(q.rows[5][1], Value::Int(3));
    }

    #[test]
    fn scalar_udf_registration_and_concat() {
        let db = Database::new();
        db.register_scalar("double_it", |_db, args| {
            Ok(Value::Float(args[0].as_f64()? * 2.0))
        });
        let q = db.execute("SELECT double_it(21)").unwrap();
        assert_eq!(q.rows[0][0], Value::Float(42.0));
        let q = db
            .execute("SELECT 'HP1Instance' || 7::text AS name")
            .unwrap();
        assert_eq!(q.rows[0][0], Value::Text("HP1Instance7".into()));
    }

    #[test]
    fn table_udf_can_query_database_reentrantly() {
        let db = setup();
        db.register_table_fn("summarize", |db, args| {
            let sql = args[0].as_str()?;
            let inner = db.execute(sql)?;
            let mut q = QueryResult::new(vec!["n".into()]);
            q.rows.push(vec![Value::Int(inner.len() as i64)]);
            Ok(q)
        });
        let q = db
            .execute("SELECT * FROM summarize('SELECT * FROM m')")
            .unwrap();
        assert_eq!(q.rows[0][0], Value::Int(3));
    }

    #[test]
    fn statement_cache_counts() {
        let db = setup();
        let (p0, _h0) = db.statement_stats();
        db.execute("SELECT * FROM m").unwrap();
        db.execute("SELECT * FROM m").unwrap();
        db.execute("SELECT * FROM m").unwrap();
        let (p1, h1) = db.statement_stats();
        assert_eq!(p1 - p0, 1, "only the first execution parses");
        assert!(h1 >= 2);
        db.execute_uncached("SELECT * FROM m").unwrap();
        let (p2, _) = db.statement_stats();
        assert_eq!(p2 - p1, 1);
    }

    #[test]
    fn prepared_statement_binds_parameters() {
        let db = setup();
        let stmt = db
            .prepare("SELECT x FROM m WHERE u > $1 AND x > $2 ORDER BY x DESC")
            .unwrap();
        assert_eq!(stmt.n_params(), 2);
        let q = stmt
            .query(&[Value::Float(0.01), Value::Float(22.0)])
            .unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.rows[0][0], Value::Float(23.6231));
        // Same handle, different binds: no re-parse.
        let (p0, _) = db.statement_stats();
        let q = stmt
            .query(&[Value::Float(-1.0), Value::Float(0.0)])
            .unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(db.statement_stats().0, p0);
    }

    #[test]
    fn prepared_statement_rejects_wrong_bind_count() {
        let db = setup();
        let stmt = db
            .prepare("SELECT x FROM m WHERE u > $1 AND x < $2")
            .unwrap();
        let err = stmt.query(&[Value::Float(0.0)]).unwrap_err();
        assert!(
            err.to_string().contains("supplies 1 parameters")
                && err.to_string().contains("requires 2"),
            "{err}"
        );
        // Executing a parameterized statement with no binds fails the same
        // check.
        assert!(db.execute("SELECT x FROM m WHERE u > $1").is_err());
    }

    #[test]
    fn prepared_insert_round_trips_values() {
        let db = Database::new();
        db.execute("CREATE TABLE t (a int, b text, c float)")
            .unwrap();
        let ins = db.prepare("INSERT INTO t VALUES ($1, $2, $3)").unwrap();
        ins.query(&[Value::Int(1), Value::Text("it's".into()), Value::Float(0.5)])
            .unwrap();
        ins.query(&[Value::Int(2), Value::Null, Value::Float(-1.5)])
            .unwrap();
        let q = db.execute("SELECT * FROM t ORDER BY a").unwrap();
        assert_eq!(q.rows[0][1], Value::Text("it's".into()));
        assert_eq!(q.rows[1][1], Value::Null);
    }

    #[test]
    fn query_rows_streams_lazily() {
        let db = setup();
        let mut rows = db
            .query_rows("SELECT x FROM m WHERE u >= $1", &[Value::Float(0.0)])
            .unwrap();
        assert_eq!(rows.columns(), ["x"]);
        assert_eq!(rows.next().unwrap().unwrap(), vec![Value::Float(20.7507)]);
        // Stopping early is fine; remaining rows are never projected.
        drop(rows);
        // Ordered queries still stream correct, sorted output.
        let rows = db
            .query_rows("SELECT x FROM m ORDER BY x DESC", &[])
            .unwrap();
        let xs: Vec<Row> = rows.collect::<Result<_>>().unwrap();
        assert_eq!(xs[0][0], Value::Float(23.6231));
    }

    #[test]
    fn lru_statement_cache_evicts_oldest() {
        let db = Database::new();
        db.set_stmt_cache_capacity(4);
        assert_eq!(db.stmt_cache_capacity(), 4);
        for i in 0..10 {
            db.execute(&format!("SELECT {i}")).unwrap();
        }
        assert!(db.stmt_cache_len() <= 4);
        // The most recent text is still a cache hit…
        let (_, h0) = db.statement_stats();
        db.execute("SELECT 9").unwrap();
        assert_eq!(db.statement_stats().1, h0 + 1);
        // …while the oldest was evicted and must re-parse.
        let (p0, _) = db.statement_stats();
        db.execute("SELECT 0").unwrap();
        assert_eq!(db.statement_stats().0, p0 + 1);
        // Shrinking the capacity evicts immediately.
        db.set_stmt_cache_capacity(1);
        assert!(db.stmt_cache_len() <= 1);
    }

    #[test]
    fn lru_cache_refreshes_on_use() {
        let db = Database::new();
        db.set_stmt_cache_capacity(2);
        db.execute("SELECT 1").unwrap();
        db.execute("SELECT 2").unwrap();
        db.execute("SELECT 1").unwrap(); // refresh 1 → 2 becomes LRU
        db.execute("SELECT 3").unwrap(); // evicts 2
        let (p0, _) = db.statement_stats();
        db.execute("SELECT 1").unwrap();
        assert_eq!(db.statement_stats().0, p0, "SELECT 1 must still be cached");
        db.execute("SELECT 2").unwrap();
        assert_eq!(db.statement_stats().0, p0 + 1, "SELECT 2 was evicted");
    }

    #[test]
    fn error_paths() {
        let db = Database::new();
        assert!(matches!(
            db.execute("SELECT * FROM missing"),
            Err(SqlError::UnknownTable(_))
        ));
        assert!(matches!(
            db.execute("SELECT nope(1)"),
            Err(SqlError::UnknownFunction(_))
        ));
        db.execute("CREATE TABLE t (a int)").unwrap();
        assert!(matches!(
            db.execute("CREATE TABLE t (a int)"),
            Err(SqlError::Constraint(_))
        ));
        db.execute("CREATE TABLE IF NOT EXISTS t (a int)").unwrap();
        db.execute("DROP TABLE t").unwrap();
        assert!(db.execute("DROP TABLE t").is_err());
        db.execute("DROP TABLE IF EXISTS t").unwrap();
        assert!(matches!(
            db.execute("SELECT b FROM generate_series(1,2) AS g"),
            Err(SqlError::UnknownColumn(_))
        ));
        // Preparing invalid SQL fails at prepare time, not execution time.
        assert!(matches!(
            db.prepare("SELEKT 1").map(|_| ()),
            Err(SqlError::Parse(_))
        ));
    }

    #[test]
    fn division_semantics() {
        let db = Database::new();
        let one = |sql: &str| db.execute(sql).unwrap().scalar().unwrap().clone();
        assert_eq!(one("SELECT 7 / 2"), Value::Int(3));
        assert_eq!(one("SELECT 7.0 / 2"), Value::Float(3.5));
        assert!(db.execute("SELECT 1 / 0").is_err());
        assert!(db.execute("SELECT 1.0 / 0.0").is_err());
    }

    #[test]
    fn timestamp_interval_arithmetic() {
        let db = Database::new();
        let one = |sql: &str| db.execute(sql).unwrap().scalar().unwrap().clone();
        assert_eq!(
            one("SELECT timestamp '2015-02-01 00:00' + interval '90 minutes'"),
            Value::Timestamp(crate::value::parse_timestamp("2015-02-01 01:30").unwrap())
        );
        assert_eq!(
            one("SELECT timestamp '2015-02-02' - timestamp '2015-02-01'"),
            Value::Interval(86_400)
        );
    }

    #[test]
    fn three_valued_logic() {
        let db = Database::new();
        let one = |sql: &str| db.execute(sql).unwrap().scalar().unwrap().clone();
        assert_eq!(one("SELECT NULL AND false"), Value::Bool(false));
        assert_eq!(one("SELECT NULL AND true"), Value::Null);
        assert_eq!(one("SELECT NULL OR true"), Value::Bool(true));
        assert_eq!(one("SELECT NOT NULL"), Value::Null);
        assert_eq!(one("SELECT 1 = NULL"), Value::Null);
    }

    #[test]
    fn in_list_null_semantics() {
        let db = Database::new();
        let one = |sql: &str| db.execute(sql).unwrap().scalar().unwrap().clone();
        assert_eq!(one("SELECT 1 IN (1, 2)"), Value::Bool(true));
        assert_eq!(one("SELECT 3 IN (1, 2)"), Value::Bool(false));
        assert_eq!(one("SELECT 3 IN (1, NULL)"), Value::Null);
        assert_eq!(one("SELECT 1 NOT IN (2, 3)"), Value::Bool(true));
    }

    #[test]
    fn order_by_nulls_last_and_limit() {
        let db = Database::new();
        db.execute("CREATE TABLE t (v float)").unwrap();
        db.execute("INSERT INTO t VALUES (2.0), (NULL), (1.0)")
            .unwrap();
        let q = db.execute("SELECT v FROM t ORDER BY v").unwrap();
        assert_eq!(q.rows[0][0], Value::Float(1.0));
        assert_eq!(q.rows[2][0], Value::Null);
        let q = db.execute("SELECT v FROM t ORDER BY v LIMIT 1").unwrap();
        assert_eq!(q.len(), 1);
    }

    /// Read one engine counter through the SQL stats surface.
    fn stat(stats: &Statement<'_>, name: &str) -> i64 {
        let q = stats.query(&[Value::Text(name.into())]).unwrap();
        q.rows[0][0].as_i64().unwrap()
    }

    #[test]
    fn plan_cache_reuses_plans_across_executions() {
        let db = setup();
        let stats = db
            .prepare("SELECT value FROM pgfmu_stats() WHERE stat = $1")
            .unwrap();
        let target = db.prepare("SELECT x FROM m WHERE u > $1").unwrap();
        target.query(&[Value::Float(0.0)]).unwrap(); // compiles the plan
        stats.query(&[Value::Text("plans_built".into())]).unwrap(); // compiles the stats plan
        let built0 = stat(&stats, "plans_built");
        let hits0 = stat(&stats, "plan_cache_hits");
        // Re-executions (same handle and re-prepared text) perform no
        // re-planning — only plan-cache hits move.
        target.query(&[Value::Float(0.1)]).unwrap();
        target.query_rows(&[Value::Float(0.2)]).unwrap().count();
        db.query("SELECT x FROM m WHERE u > $1", &[Value::Float(0.3)])
            .unwrap();
        assert_eq!(stat(&stats, "plans_built"), built0, "no plan rebuilds");
        assert!(stat(&stats, "plan_cache_hits") >= hits0 + 3);
        // The uncached path compiles a transient plan every time.
        let (b, _) = db.plan_stats();
        db.execute_uncached("SELECT x FROM m").unwrap();
        assert_eq!(db.plan_stats().0, b + 1);
    }

    #[test]
    fn ddl_bumps_the_schema_epoch_and_replans() {
        let db = setup();
        let target = db.prepare("SELECT x FROM m").unwrap();
        target.query(&[]).unwrap();
        let (built0, _) = db.plan_stats();
        target.query(&[]).unwrap();
        assert_eq!(db.plan_stats().0, built0, "stable schema reuses the plan");
        db.execute("CREATE TABLE other (a int)").unwrap();
        target.query(&[]).unwrap();
        assert_eq!(
            db.plan_stats().0,
            built0 + 2,
            "DDL invalidates cached plans"
        );
        // Dropping and recreating the scanned table re-resolves correctly.
        db.execute("DROP TABLE m").unwrap();
        assert!(target.query(&[]).is_err(), "missing table fails at replan");
        db.execute("CREATE TABLE m (x float)").unwrap();
        db.execute("INSERT INTO m VALUES (1.5)").unwrap();
        let q = target.query(&[]).unwrap();
        assert_eq!(q.rows[0][0], Value::Float(1.5));
    }

    #[test]
    fn grouped_aggregates_memoize_per_group() {
        let db = Database::new();
        db.execute("CREATE TABLE t (k int, v float)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 1.0), (1, 2.0), (2, 3.0), (2, 4.0), (3, 5.0)")
            .unwrap();
        let a0 = db.agg_eval_count();
        // sum(v) appears four times (twice in the select list, in HAVING,
        // in ORDER BY) but is one distinct aggregate call — it must fold
        // exactly once per group.
        db.execute(
            "SELECT k, sum(v), sum(v) * 2 FROM t GROUP BY k \
             HAVING sum(v) > 0 ORDER BY sum(v) DESC",
        )
        .unwrap();
        assert_eq!(db.agg_eval_count() - a0, 3, "one fold per group");
        // Distinct aggregate calls each count: sum(v) and count(*) over
        // three groups = 6 evaluations.
        let a1 = db.agg_eval_count();
        db.execute("SELECT k, sum(v), count(*) FROM t GROUP BY k")
            .unwrap();
        assert_eq!(db.agg_eval_count() - a1, 6);
    }

    #[test]
    fn statement_query_reexecution_is_clone_free_end_to_end() {
        // The acceptance shape: a prepared grouped statement re-executes
        // with different binds against the same shared plan — verified
        // through the SQL stats surface.
        let db = setup();
        let stats = db
            .prepare("SELECT value FROM pgfmu_stats() WHERE stat = $1")
            .unwrap();
        let rollup = db
            .prepare(
                "SELECT u, count(*), sum(x) FROM m GROUP BY u \
                 HAVING sum(x) > $1 ORDER BY sum(x) DESC",
            )
            .unwrap();
        rollup.query(&[Value::Float(0.0)]).unwrap();
        stats.query(&[Value::Text("plans_built".into())]).unwrap();
        let built0 = stat(&stats, "plans_built");
        for i in 0..5 {
            rollup.query(&[Value::Float(i as f64)]).unwrap();
        }
        assert_eq!(stat(&stats, "plans_built"), built0);
        assert!(stat(&stats, "agg_evals") > 0);
    }

    #[test]
    fn insert_select_from_the_same_table_takes_no_guard() {
        // The INSERT source must not hold the scanned table's read guard
        // while the insert takes its write guard — same-table
        // INSERT … SELECT would deadlock otherwise.
        let db = setup();
        let q = db
            .execute("INSERT INTO m SELECT ts, x + 100.0, y, u FROM m WHERE x < 22")
            .unwrap();
        assert_eq!(q.rows[0][0], Value::Int(2));
        assert_eq!(db.execute("SELECT * FROM m").unwrap().len(), 5);
    }

    #[test]
    fn guarded_cursor_releases_the_table_on_drop() {
        let db = setup();
        let mut rows = db.query_rows("SELECT x FROM m", &[]).unwrap();
        assert!(rows.next().is_some());
        // Partially consumed: the zero-copy cursor still holds the read
        // guard here. Dropping it must release the table for writers.
        drop(rows);
        db.execute("UPDATE m SET u = 1.0").unwrap();
        assert_eq!(
            db.execute("SELECT sum(u) FROM m").unwrap().rows[0][0],
            Value::Float(3.0)
        );
        // A fully drained cursor releases the guard too.
        let n = db.query_rows("SELECT x FROM m", &[]).unwrap().count();
        assert_eq!(n, 3);
        db.execute("DELETE FROM m WHERE x > 23").unwrap();
        assert_eq!(db.execute("SELECT * FROM m").unwrap().len(), 2);
    }

    #[test]
    fn writing_the_streamed_table_succeeds_mid_stream() {
        // The PR-5 regression this MVCC design exists to fix: a
        // half-consumed streaming SELECT no longer locks its table
        // against same-thread writers — and the stream keeps reading its
        // pinned snapshot, blind to the interleaved writes.
        let db = setup();
        let mut rows = db.query_rows("SELECT x FROM m", &[]).unwrap();
        assert!(rows.next().is_some());
        db.execute("INSERT INTO m VALUES ('2015-03-01', 99, 1, 1)")
            .unwrap();
        db.execute("UPDATE m SET x = x + 1000").unwrap();
        db.execute("DELETE FROM m WHERE x > 1050").unwrap();
        // The open cursor still sees the pre-write snapshot: the
        // original x values, unshifted, without the new row.
        let rest: Vec<Value> = rows.map(|r| r.unwrap().remove(0)).collect();
        assert_eq!(rest, vec![Value::Float(23.6231), Value::Float(21.5)]);
        // A fresh statement sees the writes' outcome: three surviving
        // rows, all shifted by 1000.
        assert_eq!(
            db.execute("SELECT count(*) FROM m WHERE x > 1000")
                .unwrap()
                .rows[0][0],
            Value::Int(3)
        );
    }

    #[test]
    fn guarded_cursor_applies_distinct_and_limit_lazily() {
        let db = Database::new();
        db.execute("CREATE TABLE t (v int)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2), (1), (3), (2), (4)")
            .unwrap();
        let mut rows = db
            .query_rows("SELECT DISTINCT v FROM t LIMIT 3", &[])
            .unwrap();
        let got: Vec<Value> = (&mut rows).map(|r| r.unwrap().remove(0)).collect();
        assert_eq!(got, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn in_place_update_is_atomic_on_error() {
        // Pass 1 (evaluation) fails before pass 2 (mutation) starts: a
        // division by zero on the *last* matching row must leave every
        // row untouched.
        let db = Database::new();
        db.execute("CREATE TABLE t (k int, v float)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 0.0)")
            .unwrap();
        let err = db.execute("UPDATE t SET v = 10.0 / v").unwrap_err();
        assert!(err.to_string().contains("division by zero"), "{err}");
        let q = db.execute("SELECT v FROM t ORDER BY k").unwrap();
        assert_eq!(
            q.rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![Value::Float(1.0), Value::Float(2.0), Value::Float(0.0)],
            "no partial update applied"
        );
    }

    #[test]
    fn scan_counters_track_strategy_per_statement() {
        let db = setup();
        let (r0, z0, f0) = db.scan_stats();
        db.execute("SELECT x FROM m WHERE u >= 0.0").unwrap(); // zero-copy (guarded)
        db.execute("SELECT x FROM m ORDER BY x LIMIT 2").unwrap(); // zero-copy (eager)
        db.execute("SELECT count(*), avg(x) FROM m").unwrap(); // zero-copy (grouped)
        db.execute("UPDATE m SET y = x * 2.0 WHERE u > 0.0")
            .unwrap(); // in place
        db.execute("DELETE FROM m WHERE x > 1e9").unwrap(); // in place
        let (r1, z1, f1) = db.scan_stats();
        assert_eq!(z1 - z0, 5);
        assert_eq!(f1, f0, "no snapshot taken by any of the above");
        assert_eq!(r1 - r0, 15, "3 rows examined per statement");
        // A join and a re-entrant predicate both fall back to snapshots.
        db.register_scalar("opaque", |_db, args| Ok(args[0].clone()));
        db.execute("SELECT a.x FROM m a, m b").unwrap();
        db.execute("SELECT x FROM m WHERE opaque(u) >= 0.0")
            .unwrap();
        let (_, z2, f2) = db.scan_stats();
        assert_eq!(z2, z1);
        assert_eq!(f2 - f1, 3, "two join scans + one fallback scan");
    }

    #[test]
    fn join_snapshots_are_column_pruned() {
        // A two-table join projecting one column per side still joins
        // correctly (pruned slot remapping) and leaves wide columns
        // behind in the snapshot.
        let db = Database::new();
        db.execute("CREATE TABLE wide (a int, blob text, b int)")
            .unwrap();
        db.execute("CREATE TABLE tags (t text, n int)").unwrap();
        db.execute("INSERT INTO wide VALUES (1, 'xxxxxxxxxxxxxxxx', 10), (2, 'y', 20)")
            .unwrap();
        db.execute("INSERT INTO tags VALUES ('p', 1), ('q', 2)")
            .unwrap();
        let q = db
            .execute(
                "SELECT tags.t, wide.b FROM wide, tags \
                 WHERE wide.a = tags.n ORDER BY tags.t",
            )
            .unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.rows[0], vec![Value::Text("p".into()), Value::Int(10)]);
        assert_eq!(q.rows[1], vec![Value::Text("q".into()), Value::Int(20)]);
    }

    #[test]
    fn insert_rows_coerces_via_schema() {
        let db = Database::new();
        db.execute("CREATE TABLE t (a float, b variant)").unwrap();
        db.insert_rows("t", vec![vec![Value::Int(1), Value::Bool(true)]])
            .unwrap();
        let handle = db.get_table("t").unwrap();
        let rows = handle.read().latest_rows();
        assert_eq!(rows[0][0], Value::Float(1.0));
        assert_eq!(rows[0][1].data_type(), DataType::Bool);
    }

    #[test]
    fn begin_commit_publishes_atomically() {
        let db = setup();
        db.execute("BEGIN").unwrap();
        assert!(db.in_transaction());
        db.execute("INSERT INTO m VALUES ('2015-03-01', 1.0, 0, 0)")
            .unwrap();
        db.execute("UPDATE m SET u = 9.0 WHERE x = 21.5").unwrap();
        // The transaction's own statements see its pending writes.
        assert_eq!(
            db.execute("SELECT count(*) FROM m").unwrap().rows[0][0],
            Value::Int(4)
        );
        db.execute("COMMIT").unwrap();
        assert!(!db.in_transaction());
        assert_eq!(
            db.execute("SELECT count(*) FROM m").unwrap().rows[0][0],
            Value::Int(4)
        );
        assert_eq!(
            db.execute("SELECT u FROM m WHERE x = 21.5").unwrap().rows[0][0],
            Value::Float(9.0)
        );
        assert_eq!(db.txn_stats(), (1, 0));
    }

    #[test]
    fn uncommitted_writes_are_invisible_to_other_threads() {
        let db = setup();
        db.execute("BEGIN").unwrap();
        db.execute("DELETE FROM m").unwrap();
        assert_eq!(
            db.execute("SELECT count(*) FROM m").unwrap().rows[0][0],
            Value::Int(0),
            "own session sees its pending delete"
        );
        std::thread::scope(|s| {
            let db = &db;
            s.spawn(move || {
                assert_eq!(
                    db.execute("SELECT count(*) FROM m").unwrap().rows[0][0],
                    Value::Int(3),
                    "another session must not see uncommitted writes"
                );
            });
        });
        db.execute("ROLLBACK").unwrap();
        assert_eq!(
            db.execute("SELECT count(*) FROM m").unwrap().rows[0][0],
            Value::Int(3)
        );
    }

    #[test]
    fn rollback_restores_contents_and_schema_epoch() {
        let db = setup();
        let before = db.execute("SELECT * FROM m ORDER BY ts").unwrap();
        let epoch0 = db.schema_epoch.load(Ordering::SeqCst);
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO m VALUES ('2015-03-01', 1, 1, 1)")
            .unwrap();
        db.execute("UPDATE m SET u = 100.0").unwrap();
        db.execute("DELETE FROM m WHERE x > 23").unwrap();
        db.execute("CREATE TABLE scratch (a int)").unwrap();
        db.execute("DROP TABLE scratch").unwrap();
        db.execute("ROLLBACK").unwrap();
        let after = db.execute("SELECT * FROM m ORDER BY ts").unwrap();
        assert_eq!(before.rows, after.rows, "contents identical after ROLLBACK");
        assert!(!db.has_table("scratch"));
        assert_eq!(
            db.schema_epoch.load(Ordering::SeqCst),
            epoch0,
            "epoch restored so pre-BEGIN cached plans revalidate"
        );
        assert_eq!(db.txn_stats(), (0, 1));
    }

    #[test]
    fn rollback_reinstates_a_dropped_table() {
        let db = setup();
        db.execute("BEGIN").unwrap();
        db.execute("DROP TABLE m").unwrap();
        assert!(!db.has_table("m"));
        db.execute("ROLLBACK").unwrap();
        assert!(db.has_table("m"));
        assert_eq!(
            db.execute("SELECT count(*) FROM m").unwrap().rows[0][0],
            Value::Int(3),
            "the displaced table came back with its rows"
        );
    }

    #[test]
    fn transaction_notices_match_postgres_wording() {
        let db = Database::new();
        let q = db.execute("COMMIT").unwrap();
        assert_eq!(q.columns, vec!["notice".to_string()]);
        assert_eq!(
            q.rows[0][0],
            Value::Text("there is no transaction in progress".into())
        );
        let q = db.execute("ROLLBACK").unwrap();
        assert_eq!(
            q.rows[0][0],
            Value::Text("there is no transaction in progress".into())
        );
        db.execute("BEGIN").unwrap();
        let q = db.execute("BEGIN").unwrap();
        assert_eq!(
            q.rows[0][0],
            Value::Text("there is already a transaction in progress".into())
        );
        // The duplicate BEGIN left the original transaction open.
        assert!(db.in_transaction());
        db.execute("COMMIT").unwrap();
        assert!(!db.in_transaction());
    }

    #[test]
    fn transaction_statement_aliases_parse() {
        let db = Database::new();
        db.execute("START TRANSACTION").unwrap();
        db.execute("COMMIT WORK").unwrap();
        db.execute("BEGIN TRANSACTION").unwrap();
        db.execute("END").unwrap();
        db.execute("BEGIN WORK").unwrap();
        db.execute("ABORT").unwrap();
        assert_eq!(db.txn_stats(), (2, 1));
    }

    #[test]
    fn failed_statement_aborts_the_transaction() {
        let db = setup();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO m VALUES ('2015-03-01', 1, 1, 1)")
            .unwrap();
        // u = 0.0 on the first row: a runtime evaluation error.
        assert!(db.execute("UPDATE m SET y = x / u").is_err());
        let err = db.execute("SELECT count(*) FROM m").unwrap_err();
        assert!(
            err.to_string().contains(
                "current transaction is aborted, commands ignored until end of \
                 transaction block"
            ),
            "unexpected error: {err}"
        );
        // COMMIT of an aborted transaction rolls it back.
        db.execute("COMMIT").unwrap();
        assert_eq!(
            db.execute("SELECT count(*) FROM m").unwrap().rows[0][0],
            Value::Int(3)
        );
        assert_eq!(db.txn_stats(), (0, 1));
    }

    #[test]
    fn pre_execution_failures_abort_the_transaction() {
        // Plan-time errors (unknown function) and parse errors abort an
        // open transaction just like execution failures — PostgreSQL
        // aborts on *any* failed statement inside a transaction block.
        let db = setup();
        db.execute("BEGIN").unwrap();
        assert!(db.execute("SELECT no_such_function(x) FROM m").is_err());
        let err = db.execute("SELECT 1").unwrap_err();
        assert!(
            err.to_string().contains("current transaction is aborted"),
            "plan-time failure should abort: {err}"
        );
        db.execute("ROLLBACK").unwrap();

        db.execute("BEGIN").unwrap();
        assert!(db.execute("SELEKT garbage").is_err());
        let err = db.execute("SELECT 1").unwrap_err();
        assert!(
            err.to_string().contains("current transaction is aborted"),
            "parse failure should abort: {err}"
        );
        // Inside the aborted transaction, a statement that itself fails
        // to plan is still rejected with the aborted wording: rejection
        // happens before planning.
        let err = db.execute("SELECT no_such_function(1)").unwrap_err();
        assert!(
            err.to_string().contains("current transaction is aborted"),
            "aborted check should precede planning: {err}"
        );
        db.execute("ROLLBACK").unwrap();
        assert_eq!(db.txn_stats(), (0, 2));
    }

    #[test]
    fn concurrent_update_is_a_serialization_failure() {
        let db = setup();
        db.execute("BEGIN").unwrap();
        db.execute("UPDATE m SET u = 1.0 WHERE x = 21.5").unwrap();
        std::thread::scope(|s| {
            let db = &db;
            s.spawn(move || {
                // First updater wins: the other session's auto-commit
                // UPDATE of the same row fails rather than clobbering.
                let err = db
                    .execute("UPDATE m SET u = 2.0 WHERE x = 21.5")
                    .unwrap_err();
                assert!(
                    err.to_string().contains("could not serialize access"),
                    "unexpected error: {err}"
                );
            });
        });
        db.execute("COMMIT").unwrap();
        assert_eq!(
            db.execute("SELECT u FROM m WHERE x = 21.5").unwrap().rows[0][0],
            Value::Float(1.0)
        );
    }

    #[test]
    fn streamed_insert_select_is_atomic_on_error() {
        // A lazy INSERT … SELECT source errors mid-stream: the rows
        // already appended are tombstoned, not left behind.
        let db = Database::new();
        db.execute("CREATE TABLE t (v int)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        db.register_scalar("boom_on_two", |_db, args| match args[0] {
            Value::Int(2) => Err(SqlError::Execution("boom".into())),
            ref v => Ok(v.clone()),
        });
        let err = db
            .execute("INSERT INTO t SELECT boom_on_two(v) FROM t")
            .unwrap_err();
        assert!(err.to_string().contains("boom"), "{err}");
        assert_eq!(
            db.execute("SELECT count(*) FROM t").unwrap().rows[0][0],
            Value::Int(3),
            "no partial insert survives the failed statement"
        );
    }

    #[test]
    fn vacuum_reclaims_dead_versions() {
        let db = Database::new();
        db.execute("CREATE TABLE t (v int)").unwrap();
        db.execute("INSERT INTO t VALUES (0)").unwrap();
        // Transactional updates always append versions (the in-place
        // overwrite fast path only applies to auto-commit statements),
        // so each round leaves one dead version for vacuum.
        for i in 1..=10 {
            db.execute("BEGIN").unwrap();
            db.execute(&format!("UPDATE t SET v = {i}")).unwrap();
            db.execute("COMMIT").unwrap();
        }
        let freed = db.vacuum();
        assert!(freed >= 9, "freed only {freed} versions");
        assert!(db.gc_stats() >= 9);
        assert_eq!(
            db.execute("SELECT v FROM t").unwrap().rows[0][0],
            Value::Int(10),
            "the live version survives compaction"
        );
    }

    #[test]
    fn write_paths_collect_garbage_opportunistically() {
        // Pinned to one shard: this asserts the legacy whole-table pin
        // contract. With S > 1 a drained shard unpins early and in-line
        // GC may run sooner (covered in tests/shards.rs).
        let db = Database::with_table_shards(1);
        db.execute("CREATE TABLE t (v int)").unwrap();
        db.execute("INSERT INTO t VALUES (0)").unwrap();
        // A half-open cursor pins the table: every UPDATE must append a
        // version (no in-place overwrite), and compaction is deferred.
        // Enough rounds to cross the opportunistic GC threshold.
        let mut rows = db.query_rows("SELECT v FROM t", &[]).unwrap();
        assert!(rows.next().is_some());
        for i in 1..=200 {
            db.execute(&format!("UPDATE t SET v = {i}")).unwrap();
        }
        assert_eq!(db.gc_stats(), 0, "pinned table must not compact");
        drop(rows);
        // The next write-path visit notices the backlog and compacts
        // in-line — no explicit vacuum.
        db.execute("UPDATE t SET v = 201").unwrap();
        assert!(
            db.gc_stats() > 0,
            "UPDATE-heavy workload should trigger in-line compaction"
        );
        assert_eq!(
            db.execute("SELECT v FROM t").unwrap().rows[0][0],
            Value::Int(201)
        );
    }

    #[test]
    fn open_cursors_block_compaction() {
        // Pinned to one shard: with S > 1 the cursor pins only the shard
        // it is draining, so vacuum may reclaim shards it has passed
        // (covered in tests/shards.rs).
        let db = Database::with_table_shards(1);
        db.execute("CREATE TABLE t (v int)").unwrap();
        db.execute("INSERT INTO t VALUES (0), (1)").unwrap();
        let mut rows = db.query_rows("SELECT v FROM t", &[]).unwrap();
        assert!(rows.next().is_some());
        // Writes land while the cursor is open — and must append
        // versions, because the cursor's snapshot still reads the old
        // ones.
        for i in 1..=5 {
            db.execute(&format!("UPDATE t SET v = v + {i}")).unwrap();
        }
        // The half-consumed cursor pins the table: its saved version
        // index must stay valid, so compaction skips the table.
        assert_eq!(db.vacuum(), 0);
        drop(rows);
        assert!(db.vacuum() > 0, "dropping the cursor re-enables GC");
    }

    #[test]
    fn gc_watermark_respects_old_snapshots() {
        let db = Database::new();
        db.execute("CREATE TABLE t (v int)").unwrap();
        db.execute("INSERT INTO t VALUES (0)").unwrap();
        db.execute("BEGIN").unwrap(); // pins this snapshot timestamp
        std::thread::scope(|s| {
            let db2 = &db;
            s.spawn(move || {
                for i in 1..=10 {
                    db2.execute(&format!("UPDATE t SET v = {i}")).unwrap();
                }
                assert_eq!(
                    db2.vacuum(),
                    0,
                    "versions the pinned snapshot can still read must survive"
                );
            });
        });
        // The open transaction still reads its pinned snapshot.
        assert_eq!(
            db.execute("SELECT v FROM t").unwrap().rows[0][0],
            Value::Int(0)
        );
        db.execute("COMMIT").unwrap();
        assert!(db.vacuum() >= 9, "watermark advanced after COMMIT");
    }

    #[test]
    fn reset_session_rolls_back_a_leaked_transaction() {
        let db = Database::new();
        db.execute("CREATE TABLE t (v int)").unwrap();
        // A task dies between BEGIN and COMMIT on this thread…
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        assert!(db.in_transaction());
        // …so the next task to land on the thread resets the session.
        assert!(db.reset_session(), "an open transaction was reclaimed");
        assert!(!db.in_transaction());
        assert_eq!(
            db.execute("SELECT count(*) FROM t").unwrap().rows[0][0],
            Value::Int(0),
            "the uncommitted insert must be gone"
        );
        // The reset counts as a rollback and is idempotent.
        assert_eq!(db.txn_stats().1, 1);
        assert!(!db.reset_session());
        assert_eq!(db.txn_stats().1, 1);
        // The snapshot pin went with it: the GC watermark is released.
        db.execute("INSERT INTO t VALUES (2)").unwrap();
        db.execute("UPDATE t SET v = 3").unwrap();
        assert!(db.vacuum() >= 1, "no leaked pin may hold back the GC");
    }

    #[test]
    fn fleet_counters_accumulate_and_report() {
        let db = Database::new();
        assert_eq!(db.fleet_stats(), (0, 0, 0));
        db.note_fleet(100, 4, 5_000);
        db.note_fleet(10, 2, 1_000);
        // Tasks and task time accumulate; the pool width is a high-water mark.
        assert_eq!(db.fleet_stats(), (110, 4, 6_000));
        for (stat, expect) in [
            ("fleet_tasks", 110),
            ("fleet_workers", 4),
            ("fleet_task_ns", 6_000),
        ] {
            let q = db
                .execute(&format!(
                    "SELECT value FROM pgfmu_stats() WHERE stat = '{stat}'"
                ))
                .unwrap();
            assert_eq!(q.rows[0][0], Value::Int(expect), "{stat}");
        }
    }
}
