//! The [`Database`]: table storage, function registries, statement cache.
//!
//! All methods take `&self`; interior mutability with per-table locks lets
//! UDFs re-enter the database (e.g. `fmu_parest` executing its `input_sql`)
//! without deadlocking, because the executor never holds a table lock while
//! a UDF runs — scans snapshot their input first.
//!
//! The statement cache implements the paper's "prepared SQL queries"
//! optimization (§7): repeated query texts skip the parser.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::ast::Stmt;
use crate::error::{Result, SqlError};
use crate::exec;
use crate::functions::{self, ScalarFn, TableFn};
use crate::parser;
use crate::table::{QueryResult, Row, Table};
use crate::value::Value;

/// An in-memory SQL database with UDF support.
pub struct Database {
    tables: RwLock<HashMap<String, Arc<RwLock<Table>>>>,
    scalars: RwLock<HashMap<String, ScalarFn>>,
    table_fns: RwLock<HashMap<String, TableFn>>,
    stmt_cache: Mutex<HashMap<String, Arc<Stmt>>>,
    parses: AtomicU64,
    cache_hits: AtomicU64,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Create a database with the built-in function set registered.
    pub fn new() -> Self {
        let db = Database {
            tables: RwLock::new(HashMap::new()),
            scalars: RwLock::new(HashMap::new()),
            table_fns: RwLock::new(HashMap::new()),
            stmt_cache: Mutex::new(HashMap::new()),
            parses: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        };
        functions::register_builtin_scalars(&db);
        functions::register_builtin_table_fns(&db);
        db
    }

    // ---- tables ------------------------------------------------------------

    /// Create a table; errors if the name is taken.
    pub fn create_table(&self, name: &str, table: Table) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(SqlError::Constraint(format!(
                "relation \"{key}\" already exists"
            )));
        }
        tables.insert(key, Arc::new(RwLock::new(table)));
        Ok(())
    }

    /// Drop a table; errors if missing.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        self.tables
            .write()
            .remove(&key)
            .map(|_| ())
            .ok_or(SqlError::UnknownTable(key))
    }

    /// Handle to a table for direct (non-SQL) access.
    pub fn get_table(&self, name: &str) -> Result<Arc<RwLock<Table>>> {
        let key = name.to_ascii_lowercase();
        self.tables
            .read()
            .get(&key)
            .cloned()
            .ok_or(SqlError::UnknownTable(key))
    }

    /// True when the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Sorted table names (for introspection and tests).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Bulk-insert rows through the coercion path (loader convenience).
    pub fn insert_rows(&self, table: &str, rows: Vec<Row>) -> Result<usize> {
        let handle = self.get_table(table)?;
        let mut guard = handle.write();
        let n = rows.len();
        for r in rows {
            guard.insert(r)?;
        }
        Ok(n)
    }

    // ---- functions ----------------------------------------------------------

    /// Register (or replace) a scalar UDF.
    pub fn register_scalar<F>(&self, name: &str, f: F)
    where
        F: Fn(&Database, &[Value]) -> Result<Value> + Send + Sync + 'static,
    {
        self.scalars
            .write()
            .insert(name.to_ascii_lowercase(), Arc::new(f));
    }

    /// Register (or replace) a set-returning UDF.
    pub fn register_table_fn<F>(&self, name: &str, f: F)
    where
        F: Fn(&Database, &[Value]) -> Result<QueryResult> + Send + Sync + 'static,
    {
        self.table_fns
            .write()
            .insert(name.to_ascii_lowercase(), Arc::new(f));
    }

    /// Invoke a scalar function by name.
    pub fn call_scalar(&self, name: &str, args: &[Value]) -> Result<Value> {
        let f = self.scalars.read().get(&name.to_ascii_lowercase()).cloned();
        match f {
            Some(f) => f(self, args),
            None => Err(SqlError::UnknownFunction(format!("{name}(…)"))),
        }
    }

    /// Invoke a set-returning function by name; scalar functions degrade to
    /// a one-row, one-column table (PostgreSQL behaviour in FROM).
    pub fn call_table_fn(&self, name: &str, args: &[Value]) -> Result<QueryResult> {
        let key = name.to_ascii_lowercase();
        let f = self.table_fns.read().get(&key).cloned();
        if let Some(f) = f {
            return f(self, args);
        }
        let s = self.scalars.read().get(&key).cloned();
        match s {
            Some(f) => {
                let v = f(self, args)?;
                let mut q = QueryResult::new(vec![key]);
                q.rows.push(vec![v]);
                Ok(q)
            }
            None => Err(SqlError::UnknownFunction(format!("{name}(…)"))),
        }
    }

    /// Is a function with this name registered (scalar or set-returning)?
    pub fn has_function(&self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        self.scalars.read().contains_key(&key) || self.table_fns.read().contains_key(&key)
    }

    // ---- execution -----------------------------------------------------------

    /// Parse (with statement-cache reuse) and execute one SQL statement.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        let stmt = {
            let cached = self.stmt_cache.lock().get(sql).cloned();
            match cached {
                Some(s) => {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    s
                }
                None => {
                    self.parses.fetch_add(1, Ordering::Relaxed);
                    let parsed = Arc::new(parser::parse(sql)?);
                    self.stmt_cache
                        .lock()
                        .insert(sql.to_string(), Arc::clone(&parsed));
                    parsed
                }
            }
        };
        exec::execute_stmt(self, &stmt)
    }

    /// Execute without consulting or filling the statement cache (used by
    /// benchmarks to isolate the prepared-statement effect).
    pub fn execute_uncached(&self, sql: &str) -> Result<QueryResult> {
        self.parses.fetch_add(1, Ordering::Relaxed);
        let stmt = parser::parse(sql)?;
        exec::execute_stmt(self, &stmt)
    }

    /// `(parse count, statement cache hits)` since creation.
    pub fn statement_stats(&self) -> (u64, u64) {
        (
            self.parses.load(Ordering::Relaxed),
            self.cache_hits.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn setup() -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE m (ts timestamp, x float, y float, u float)")
            .unwrap();
        db.execute(
            "INSERT INTO m VALUES \
             ('2015-02-01 00:00', 20.7507, 0.0, 0.0), \
             ('2015-02-01 01:00', 23.6231, 0.1381, 0.0177), \
             ('2015-02-01 02:00', 21.5, 0.3, 0.05)",
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_select_round_trip() {
        let db = setup();
        let q = db.execute("SELECT * FROM m ORDER BY ts").unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.columns, vec!["ts", "x", "y", "u"]);
        assert_eq!(q.rows[0][1], Value::Float(20.7507));
    }

    #[test]
    fn where_filtering_and_projection() {
        let db = setup();
        let q = db
            .execute("SELECT x AS temp FROM m WHERE u > 0.01 ORDER BY x DESC")
            .unwrap();
        assert_eq!(q.columns, vec!["temp"]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.rows[0][0], Value::Float(23.6231));
    }

    #[test]
    fn aggregates() {
        let db = setup();
        let q = db
            .execute("SELECT count(*), avg(x), min(x), max(x), sum(u) FROM m")
            .unwrap();
        assert_eq!(q.rows[0][0], Value::Int(3));
        let avg = q.rows[0][1].as_f64().unwrap();
        assert!((avg - (20.7507 + 23.6231 + 21.5) / 3.0).abs() < 1e-9);
        assert_eq!(q.rows[0][2], Value::Float(20.7507));
        assert_eq!(q.rows[0][3], Value::Float(23.6231));
        let sum = q.rows[0][4].as_f64().unwrap();
        assert!((sum - 0.0677).abs() < 1e-9);
    }

    #[test]
    fn aggregate_with_arithmetic() {
        let db = setup();
        let q = db
            .execute("SELECT sqrt(avg(x * x)) AS rms FROM m WHERE x IS NOT NULL")
            .unwrap();
        assert!(q.rows[0][0].as_f64().unwrap() > 20.0);
    }

    #[test]
    fn bare_column_in_aggregate_query_errors() {
        let db = setup();
        let err = db.execute("SELECT x, count(*) FROM m");
        assert!(err.is_err());
    }

    #[test]
    fn update_and_delete() {
        let db = setup();
        let q = db.execute("UPDATE m SET u = u * 2 WHERE u > 0").unwrap();
        assert_eq!(q.rows[0][0], Value::Int(2));
        let q = db.execute("SELECT sum(u) FROM m").unwrap();
        assert!((q.rows[0][0].as_f64().unwrap() - 0.1354).abs() < 1e-9);
        let q = db.execute("DELETE FROM m WHERE x > 22").unwrap();
        assert_eq!(q.rows[0][0], Value::Int(1));
        assert_eq!(db.execute("SELECT * FROM m").unwrap().len(), 2);
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let db = setup();
        db.execute("INSERT INTO m (ts, x) VALUES ('2015-02-01 03:00', 19.0)")
            .unwrap();
        let q = db
            .execute("SELECT y FROM m WHERE ts = '2015-02-01 03:00'")
            .unwrap();
        assert_eq!(q.rows[0][0], Value::Null);
    }

    #[test]
    fn insert_select() {
        let db = setup();
        db.execute("CREATE TABLE copy (ts timestamp, x float, y float, u float)")
            .unwrap();
        db.execute("INSERT INTO copy SELECT * FROM m WHERE x < 22")
            .unwrap();
        assert_eq!(db.execute("SELECT * FROM copy").unwrap().len(), 2);
    }

    #[test]
    fn cross_join_and_qualifiers() {
        let db = setup();
        db.execute("CREATE TABLE tags (name text)").unwrap();
        db.execute("INSERT INTO tags VALUES ('a'), ('b')").unwrap();
        let q = db
            .execute("SELECT t.name, m.x FROM tags t, m WHERE m.u = 0.0 ORDER BY t.name")
            .unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.rows[0][0], Value::Text("a".into()));
    }

    #[test]
    fn lateral_function_referencing_earlier_item() {
        let db = Database::new();
        let q = db
            .execute(
                "SELECT id, s FROM generate_series(1, 3) AS id, \
                 LATERAL generate_series(1, id) AS s ORDER BY id, s",
            )
            .unwrap();
        // 1 + 2 + 3 rows
        assert_eq!(q.len(), 6);
        assert_eq!(q.rows[5][0], Value::Int(3));
        assert_eq!(q.rows[5][1], Value::Int(3));
    }

    #[test]
    fn scalar_udf_registration_and_concat() {
        let db = Database::new();
        db.register_scalar("double_it", |_db, args| {
            Ok(Value::Float(args[0].as_f64()? * 2.0))
        });
        let q = db.execute("SELECT double_it(21)").unwrap();
        assert_eq!(q.rows[0][0], Value::Float(42.0));
        let q = db
            .execute("SELECT 'HP1Instance' || 7::text AS name")
            .unwrap();
        assert_eq!(q.rows[0][0], Value::Text("HP1Instance7".into()));
    }

    #[test]
    fn table_udf_can_query_database_reentrantly() {
        let db = setup();
        db.register_table_fn("summarize", |db, args| {
            let sql = args[0].as_str()?;
            let inner = db.execute(sql)?;
            let mut q = QueryResult::new(vec!["n".into()]);
            q.rows.push(vec![Value::Int(inner.len() as i64)]);
            Ok(q)
        });
        let q = db
            .execute("SELECT * FROM summarize('SELECT * FROM m')")
            .unwrap();
        assert_eq!(q.rows[0][0], Value::Int(3));
    }

    #[test]
    fn statement_cache_counts() {
        let db = setup();
        let (p0, _h0) = db.statement_stats();
        db.execute("SELECT * FROM m").unwrap();
        db.execute("SELECT * FROM m").unwrap();
        db.execute("SELECT * FROM m").unwrap();
        let (p1, h1) = db.statement_stats();
        assert_eq!(p1 - p0, 1, "only the first execution parses");
        assert!(h1 >= 2);
        db.execute_uncached("SELECT * FROM m").unwrap();
        let (p2, _) = db.statement_stats();
        assert_eq!(p2 - p1, 1);
    }

    #[test]
    fn error_paths() {
        let db = Database::new();
        assert!(matches!(
            db.execute("SELECT * FROM missing"),
            Err(SqlError::UnknownTable(_))
        ));
        assert!(matches!(
            db.execute("SELECT nope(1)"),
            Err(SqlError::UnknownFunction(_))
        ));
        db.execute("CREATE TABLE t (a int)").unwrap();
        assert!(matches!(
            db.execute("CREATE TABLE t (a int)"),
            Err(SqlError::Constraint(_))
        ));
        db.execute("CREATE TABLE IF NOT EXISTS t (a int)").unwrap();
        db.execute("DROP TABLE t").unwrap();
        assert!(db.execute("DROP TABLE t").is_err());
        db.execute("DROP TABLE IF EXISTS t").unwrap();
        assert!(matches!(
            db.execute("SELECT b FROM generate_series(1,2) AS g"),
            Err(SqlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn division_semantics() {
        let db = Database::new();
        let one = |sql: &str| db.execute(sql).unwrap().scalar().unwrap().clone();
        assert_eq!(one("SELECT 7 / 2"), Value::Int(3));
        assert_eq!(one("SELECT 7.0 / 2"), Value::Float(3.5));
        assert!(db.execute("SELECT 1 / 0").is_err());
        assert!(db.execute("SELECT 1.0 / 0.0").is_err());
    }

    #[test]
    fn timestamp_interval_arithmetic() {
        let db = Database::new();
        let one = |sql: &str| db.execute(sql).unwrap().scalar().unwrap().clone();
        assert_eq!(
            one("SELECT timestamp '2015-02-01 00:00' + interval '90 minutes'"),
            Value::Timestamp(crate::value::parse_timestamp("2015-02-01 01:30").unwrap())
        );
        assert_eq!(
            one("SELECT timestamp '2015-02-02' - timestamp '2015-02-01'"),
            Value::Interval(86_400)
        );
    }

    #[test]
    fn three_valued_logic() {
        let db = Database::new();
        let one = |sql: &str| db.execute(sql).unwrap().scalar().unwrap().clone();
        assert_eq!(one("SELECT NULL AND false"), Value::Bool(false));
        assert_eq!(one("SELECT NULL AND true"), Value::Null);
        assert_eq!(one("SELECT NULL OR true"), Value::Bool(true));
        assert_eq!(one("SELECT NOT NULL"), Value::Null);
        assert_eq!(one("SELECT 1 = NULL"), Value::Null);
    }

    #[test]
    fn in_list_null_semantics() {
        let db = Database::new();
        let one = |sql: &str| db.execute(sql).unwrap().scalar().unwrap().clone();
        assert_eq!(one("SELECT 1 IN (1, 2)"), Value::Bool(true));
        assert_eq!(one("SELECT 3 IN (1, 2)"), Value::Bool(false));
        assert_eq!(one("SELECT 3 IN (1, NULL)"), Value::Null);
        assert_eq!(one("SELECT 1 NOT IN (2, 3)"), Value::Bool(true));
    }

    #[test]
    fn order_by_nulls_last_and_limit() {
        let db = Database::new();
        db.execute("CREATE TABLE t (v float)").unwrap();
        db.execute("INSERT INTO t VALUES (2.0), (NULL), (1.0)")
            .unwrap();
        let q = db.execute("SELECT v FROM t ORDER BY v").unwrap();
        assert_eq!(q.rows[0][0], Value::Float(1.0));
        assert_eq!(q.rows[2][0], Value::Null);
        let q = db.execute("SELECT v FROM t ORDER BY v LIMIT 1").unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn insert_rows_coerces_via_schema() {
        let db = Database::new();
        db.execute("CREATE TABLE t (a float, b variant)").unwrap();
        db.insert_rows("t", vec![vec![Value::Int(1), Value::Bool(true)]])
            .unwrap();
        let handle = db.get_table("t").unwrap();
        let guard = handle.read();
        assert_eq!(guard.rows[0][0], Value::Float(1.0));
        assert_eq!(guard.rows[0][1].data_type(), DataType::Bool);
    }
}
