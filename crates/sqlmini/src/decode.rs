//! Typed row decoding: the [`FromValue`] / [`FromRow`] trait family, plus
//! by-name column access through [`NamedRow`].
//!
//! `FromValue` converts one SQL [`Value`] into a Rust type; `FromRow`
//! converts a whole row. Implementations cover the scalars (`f64`, `i64`,
//! `i32`, `bool`, `String`, and [`Value`] itself as the catch-all),
//! `Option<T>` for nullable columns, and tuples up to eight columns, so
//! query results decode positionally:
//!
//! ```
//! use pgfmu_sqlmini::Database;
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE m (name text, x float)").unwrap();
//! db.execute("INSERT INTO m VALUES ('a', 1.5), ('b', NULL)").unwrap();
//! let rows: Vec<(String, Option<f64>)> =
//!     db.query_as("SELECT name, x FROM m ORDER BY name", &[]).unwrap();
//! assert_eq!(rows, vec![("a".into(), Some(1.5)), ("b".into(), None)]);
//! let n: Vec<i64> = db.query_as("SELECT count(*) FROM m", &[]).unwrap();
//! assert_eq!(n, vec![2]);
//! ```

use crate::error::{Result, SqlError};
use crate::value::Value;

/// Decode one SQL value into a Rust type.
pub trait FromValue: Sized {
    /// Convert `v`, erroring on a type mismatch (including unexpected
    /// NULLs — decode nullable columns as `Option<T>`).
    fn from_value(v: &Value) -> Result<Self>;
}

impl FromValue for Value {
    fn from_value(v: &Value) -> Result<Self> {
        Ok(v.clone())
    }
}

impl FromValue for f64 {
    fn from_value(v: &Value) -> Result<Self> {
        v.as_f64()
    }
}

impl FromValue for i64 {
    fn from_value(v: &Value) -> Result<Self> {
        v.as_i64()
    }
}

impl FromValue for i32 {
    fn from_value(v: &Value) -> Result<Self> {
        let n = v.as_i64()?;
        i32::try_from(n)
            .map_err(|_| SqlError::Type(format!("value {n} is out of range for an i32")))
    }
}

impl FromValue for bool {
    fn from_value(v: &Value) -> Result<Self> {
        v.as_bool()
    }
}

impl FromValue for String {
    fn from_value(v: &Value) -> Result<Self> {
        v.as_str().map(str::to_string)
    }
}

impl<T: FromValue> FromValue for Option<T> {
    fn from_value(v: &Value) -> Result<Self> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

/// Decode one result row into a Rust type, positionally.
pub trait FromRow: Sized {
    /// Convert a row, erroring when the column count or any column type
    /// does not match.
    fn from_row(row: &[Value]) -> Result<Self>;
}

fn check_width(row: &[Value], want: usize) -> Result<()> {
    if row.len() == want {
        Ok(())
    } else {
        Err(SqlError::Type(format!(
            "cannot decode a {}-column row into a {}-column type",
            row.len(),
            want
        )))
    }
}

macro_rules! scalar_from_row {
    ($($t:ty),+ $(,)?) => {$(
        impl FromRow for $t {
            fn from_row(row: &[Value]) -> Result<Self> {
                check_width(row, 1)?;
                <$t as FromValue>::from_value(&row[0])
            }
        }
    )+};
}

scalar_from_row!(f64, i64, i32, bool, String, Value);

impl<T: FromValue> FromRow for Option<T> {
    fn from_row(row: &[Value]) -> Result<Self> {
        check_width(row, 1)?;
        <Option<T> as FromValue>::from_value(&row[0])
    }
}

macro_rules! tuple_from_row {
    ($n:expr; $($t:ident @ $i:tt),+) => {
        impl<$($t: FromValue),+> FromRow for ($($t,)+) {
            fn from_row(row: &[Value]) -> Result<Self> {
                check_width(row, $n)?;
                Ok(($($t::from_value(&row[$i])?,)+))
            }
        }
    };
}

// ---------------------------------------------------------------------------
// By-name column access
// ---------------------------------------------------------------------------

/// A borrowed view of one result row with by-name column access — the
/// less brittle way to decode wide pgFMU result rows, where positional
/// tuples would silently shift when a projection changes:
///
/// ```
/// use pgfmu_sqlmini::{Database, NamedRow};
///
/// let db = Database::new();
/// db.execute("CREATE TABLE m (ts timestamp, x float, y float)").unwrap();
/// db.execute("INSERT INTO m VALUES ('2015-02-01 00:00', 20.75, NULL)").unwrap();
/// let q = db.execute("SELECT * FROM m").unwrap();
/// let row = q.named_rows().next().unwrap();
/// assert_eq!(row.get::<f64>("x").unwrap(), 20.75);
/// assert_eq!(row.get::<Option<f64>>("Y").unwrap(), None); // case-insensitive
/// assert!(row.get::<f64>("missing").is_err());
/// ```
#[derive(Clone, Copy)]
pub struct NamedRow<'a> {
    columns: &'a [String],
    values: &'a [Value],
}

impl<'a> NamedRow<'a> {
    /// View a row against its column names.
    pub fn new(columns: &'a [String], values: &'a [Value]) -> NamedRow<'a> {
        NamedRow { columns, values }
    }

    /// The column names.
    pub fn columns(&self) -> &'a [String] {
        self.columns
    }

    /// The raw row values.
    pub fn values(&self) -> &'a [Value] {
        self.values
    }

    /// The raw value of a column, by (case-insensitive) name.
    pub fn raw(&self, name: &str) -> Result<&'a Value> {
        let i = self
            .columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
            .ok_or_else(|| SqlError::UnknownColumn(name.to_ascii_lowercase()))?;
        Ok(&self.values[i])
    }

    /// Decode a column by (case-insensitive) name (see [`FromValue`]).
    pub fn get<T: FromValue>(&self, name: &str) -> Result<T> {
        T::from_value(self.raw(name)?)
    }
}

/// An owned row paired with its (shared) column names, produced by
/// streaming cursors via [`crate::Rows::into_named`].
pub struct OwnedNamedRow {
    columns: std::sync::Arc<[String]>,
    values: crate::table::Row,
}

impl OwnedNamedRow {
    /// Borrow as a [`NamedRow`] view.
    pub fn as_named(&self) -> NamedRow<'_> {
        NamedRow::new(&self.columns, &self.values)
    }

    /// Decode a column by (case-insensitive) name.
    pub fn get<T: FromValue>(&self, name: &str) -> Result<T> {
        self.as_named().get(name)
    }

    /// The raw value of a column, by (case-insensitive) name.
    pub fn raw(&self, name: &str) -> Result<&Value> {
        self.as_named().raw(name)
    }

    /// Take the row values.
    pub fn into_values(self) -> crate::table::Row {
        self.values
    }
}

/// Streaming by-name rows: wraps a [`crate::Rows`] cursor, sharing the
/// column names across items.
///
/// ```
/// use pgfmu_sqlmini::Database;
///
/// let db = Database::new();
/// db.execute("CREATE TABLE m (name text, v float)").unwrap();
/// db.execute("INSERT INTO m VALUES ('a', 1.5), ('b', 2.5)").unwrap();
/// let mut total = 0.0;
/// for row in db.query_rows("SELECT * FROM m", &[]).unwrap().into_named() {
///     total += row.unwrap().get::<f64>("v").unwrap();
/// }
/// assert_eq!(total, 4.0);
/// ```
pub struct NamedRows<'db> {
    columns: std::sync::Arc<[String]>,
    inner: crate::exec::Rows<'db>,
}

impl<'db> NamedRows<'db> {
    pub(crate) fn new(inner: crate::exec::Rows<'db>) -> NamedRows<'db> {
        NamedRows {
            columns: inner.columns().into(),
            inner,
        }
    }

    /// The column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }
}

impl Iterator for NamedRows<'_> {
    type Item = Result<OwnedNamedRow>;

    fn next(&mut self) -> Option<Self::Item> {
        let row = self.inner.next()?;
        Some(row.map(|values| OwnedNamedRow {
            columns: std::sync::Arc::clone(&self.columns),
            values,
        }))
    }
}

tuple_from_row!(1; A @ 0);
tuple_from_row!(2; A @ 0, B @ 1);
tuple_from_row!(3; A @ 0, B @ 1, C @ 2);
tuple_from_row!(4; A @ 0, B @ 1, C @ 2, D @ 3);
tuple_from_row!(5; A @ 0, B @ 1, C @ 2, D @ 3, E @ 4);
tuple_from_row!(6; A @ 0, B @ 1, C @ 2, D @ 3, E @ 4, F @ 5);
tuple_from_row!(7; A @ 0, B @ 1, C @ 2, D @ 3, E @ 4, F @ 5, G @ 6);
tuple_from_row!(8; A @ 0, B @ 1, C @ 2, D @ 3, E @ 4, F @ 5, G @ 6, H @ 7);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;

    #[test]
    fn scalar_decoding() {
        assert_eq!(f64::from_value(&Value::Int(2)).unwrap(), 2.0);
        assert_eq!(i64::from_value(&Value::Float(3.0)).unwrap(), 3);
        assert_eq!(i32::from_value(&Value::Int(7)).unwrap(), 7);
        assert!(i32::from_value(&Value::Int(1 << 40)).is_err());
        assert_eq!(String::from_value(&Value::Text("x".into())).unwrap(), "x");
        assert!(String::from_value(&Value::Int(1)).is_err());
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert!(f64::from_value(&Value::Null).is_err());
    }

    #[test]
    fn row_width_is_checked() {
        let row = vec![Value::Int(1), Value::Int(2)];
        assert!(f64::from_row(&row).is_err());
        assert!(<(i64, i64, i64)>::from_row(&row).is_err());
        assert_eq!(<(i64, f64)>::from_row(&row).unwrap(), (1, 2.0));
    }

    #[test]
    fn query_as_decodes_tuples_and_scalars() {
        let db = Database::new();
        db.execute("CREATE TABLE t (id int, name text, v float)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 'a', 0.5), (2, 'b', NULL)")
            .unwrap();
        let rows: Vec<(i64, String, Option<f64>)> =
            db.query_as("SELECT * FROM t ORDER BY id", &[]).unwrap();
        assert_eq!(rows[1], (2, "b".into(), None));
        let names: Vec<String> = db
            .query_as("SELECT name FROM t WHERE id = $1", &[Value::Int(1)])
            .unwrap();
        assert_eq!(names, vec!["a".to_string()]);
        // A type mismatch is an error, not a panic.
        let bad: Result<Vec<f64>> = db.query_as("SELECT name FROM t", &[]);
        assert!(bad.is_err());
    }
}
