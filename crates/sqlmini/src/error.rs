//! Error type for the SQL engine.

use std::fmt;

/// Convenient alias used across the crate.
pub type Result<T> = std::result::Result<T, SqlError>;

/// Errors raised while lexing, parsing, planning or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Syntax error with a byte-offset-free human description.
    Parse(String),
    /// Referenced table does not exist.
    UnknownTable(String),
    /// Referenced column does not exist (or is ambiguous).
    UnknownColumn(String),
    /// Referenced function does not exist.
    UnknownFunction(String),
    /// Value/type mismatch (bad cast, bad operand types, arity).
    Type(String),
    /// Grouping rule violation (ungrouped column next to an aggregate,
    /// aggregate in WHERE/GROUP BY, nested aggregates). The message carries
    /// PostgreSQL's wording verbatim, so it is displayed as-is.
    Grouping(String),
    /// Constraint violation (duplicate table, wrong column count, …).
    Constraint(String),
    /// Any runtime failure raised by UDFs or the executor.
    Execution(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "syntax error: {m}"),
            SqlError::UnknownTable(t) => write!(f, "relation \"{t}\" does not exist"),
            SqlError::UnknownColumn(c) => write!(f, "column \"{c}\" does not exist"),
            SqlError::UnknownFunction(x) => write!(f, "function {x} does not exist"),
            SqlError::Type(m) => write!(f, "type error: {m}"),
            SqlError::Grouping(m) => write!(f, "{m}"),
            SqlError::Constraint(m) => write!(f, "constraint violation: {m}"),
            SqlError::Execution(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_match_postgres_flavour() {
        assert_eq!(
            SqlError::UnknownTable("measurements".into()).to_string(),
            "relation \"measurements\" does not exist"
        );
        assert_eq!(
            SqlError::UnknownColumn("varname".into()).to_string(),
            "column \"varname\" does not exist"
        );
        assert!(SqlError::Parse("bad".into()).to_string().contains("syntax"));
        // Grouping errors carry PostgreSQL's wording verbatim, no prefix.
        assert_eq!(
            SqlError::Grouping("aggregate functions are not allowed in WHERE".into()).to_string(),
            "aggregate functions are not allowed in WHERE"
        );
    }
}
